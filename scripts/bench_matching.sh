#!/usr/bin/env bash
# Run the matching benches and write BENCH_matching.json at the repo root.
#
#   scripts/bench_matching.sh
#
# The mini-criterion harness (vendor/criterion) appends one JSON line per
# bench to $SMX_BENCH_JSON; this script collects them into a single JSON
# document with the engine speedup (direct / matrix-backed exhaustive)
# called out, so the perf trajectory is tracked across PRs.
set -euo pipefail
cd "$(dirname "$0")/.."

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
SMX_BENCH_JSON="$raw" cargo bench -p smx-bench --bench matching

python3 - "$raw" <<'EOF'
import json, sys

entries = {}
with open(sys.argv[1]) as f:
    for line in f:
        line = line.strip()
        if line:
            e = json.loads(line)
            entries[e["bench"]] = e["ns_per_iter"]

direct = entries.get("matchers/s1_exhaustive_direct")
matrix = entries.get("matchers/s1_exhaustive")
cold = entries.get("matchers/s1_exhaustive_cold")
doc = {
    "bench": "benches/matching.rs",
    "unit": "ns_per_iter",
    "results": entries,
    "exhaustive_speedup": {
        "before_direct_ns": direct,
        # Steady state: the problem's CostMatrix is already built (every
        # run after the first against a MatchProblem).
        "after_cost_matrix_warm_ns": matrix,
        "warm_speedup_x": round(direct / matrix, 2) if direct and matrix else None,
        # Cold: fresh MatchProblem, so the fill is paid inside the loop.
        "after_cost_matrix_cold_ns": cold,
        "cold_speedup_x": round(direct / cold, 2) if direct and cold else None,
    },
}
with open("BENCH_matching.json", "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print("wrote BENCH_matching.json")
print(json.dumps(doc["exhaustive_speedup"], indent=2))
EOF

#!/usr/bin/env bash
# Run the matching benches and write BENCH_matching.json at the repo root
# (or to $SMX_BENCH_OUT, so CI guards can compare without clobbering).
#
#   scripts/bench_matching.sh
#   SMX_BENCH_OUT=/tmp/fresh.json scripts/bench_matching.sh
#
# The mini-criterion harness (vendor/criterion) appends one JSON line per
# bench to $SMX_BENCH_JSON; this script collects them into a single JSON
# document with the engine speedup (direct / matrix-backed exhaustive)
# and the cost-matrix fill split (cold sweep / warm cached-row refill /
# full repeat-query run) called out, so the perf trajectory is tracked
# across PRs.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${SMX_BENCH_OUT:-BENCH_matching.json}"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
SMX_BENCH_JSON="$raw" cargo bench -p smx-bench --bench matching

python3 - "$raw" "$out" <<'EOF'
import json, sys

entries = {}
with open(sys.argv[1]) as f:
    for line in f:
        line = line.strip()
        if line:
            e = json.loads(line)
            # Timing lines carry ns_per_iter; the candidate-tier bench
            # also appends dimensionless "value" lines (certified
            # recall, active-schema counts) — collected under the same
            # key space, documented in the candidate_tier section.
            entries[e["bench"]] = e.get("ns_per_iter", e.get("value"))

def ratio(a, b):
    return round(a / b, 2) if a and b else None

direct = entries.get("matchers/s1_exhaustive_direct")
matrix = entries.get("matchers/s1_exhaustive")
cold = entries.get("matchers/s1_exhaustive_cold")
fill_cold = entries.get("matrix_fill/cold")
fill_warm = entries.get("matrix_fill/warm")
repeat = entries.get("matrix_fill/repeat_query")
batch_fill = entries.get("matrix_fill/batch")
seq_fill = entries.get("matrix_fill/sequential32")
seq_fill_shared = entries.get("matrix_fill/sequential32_shared")
batch_match = entries.get("s1_batch_vs_sequential/batch")
seq_match = entries.get("s1_batch_vs_sequential/sequential")
restart_cold = entries.get("restart/cold_rebuild")
restart_load = entries.get("restart/snapshot_load")
restart_salvage = entries.get("restart/salvage_load")
kernel_ref = entries.get("row_kernel/reference")
kernel_scalar = entries.get("row_kernel/scalar")
kernel_active = entries.get("row_kernel/active")
tier_sizes = [64, 256, 1024]
tier = {
    str(n): {
        "exhaustive_ns": entries.get(f"candidate_tier/exhaustive_{n}"),
        "candidate_ns": entries.get(f"candidate_tier/candidate_{n}"),
        "speedup_x": ratio(
            entries.get(f"candidate_tier/exhaustive_{n}"),
            entries.get(f"candidate_tier/candidate_{n}"),
        ),
        "certified_recall": entries.get(f"candidate_tier/certified_recall_{n}"),
        "active_schemas": entries.get(f"candidate_tier/active_schemas_{n}"),
    }
    for n in tier_sizes
}
doc = {
    "bench": "benches/matching.rs",
    "unit": "ns_per_iter",
    "results": entries,
    "exhaustive_speedup": {
        "before_direct_ns": direct,
        # Steady state: the problem's CostMatrix is already built (every
        # run after the first against a MatchProblem).
        "after_cost_matrix_warm_ns": matrix,
        "warm_speedup_x": ratio(direct, matrix),
        # Fresh MatchProblem, so the fill is paid inside the loop.
        "after_cost_matrix_cold_ns": cold,
        "cold_speedup_x": ratio(direct, cold),
        # Semantics changed in PR 2: the cloned repository shares its
        # score store across iterations, so "cold" now measures the
        # repeat-query shape (fill from cached rows), not the row-kernel
        # sweep — matrix_fill/cold isolates that. Pre-PR-2 cold numbers
        # are not directly comparable.
        "cold_note": "fresh problem against a warm repository score "
                     "store; see matrix_fill.cold_sweep_ns for the "
                     "genuinely cold fill",
    },
    # The fill split: how much of a fresh problem is matrix fill, and
    # what the repository score store saves on repeated queries.
    "matrix_fill": {
        "cold_sweep_ns": fill_cold,
        "warm_cached_rows_ns": fill_warm,
        "row_cache_speedup_x": ratio(fill_cold, fill_warm),
        "repeat_query_ns": repeat,
    },
    # The bulk path: 32 personal schemas against one repository. "batch"
    # dedups distinct labels across the whole batch and sweeps them in
    # one tiled (optionally threaded) pass; "sequential" is the solo
    # serving loop with per-query-cold fills (no shared warm rows — the
    # regime an LRU-bounded row cache degrades to under pressure);
    # "sequential_shared_fill_ns" is the sequential best case where all
    # 32 solo fills share one warm cache (batch tracks it closely on one
    # core and beats it with the threaded sweep on multicore).
    # Acceptance: batch_fill_ns measurably below sequential_fill_ns.
    "batch32": {
        "batch_fill_ns": batch_fill,
        "sequential_fill_ns": seq_fill,
        "fill_speedup_x": ratio(seq_fill, batch_fill),
        "sequential_shared_fill_ns": seq_fill_shared,
        "shared_fill_speedup_x": ratio(seq_fill_shared, batch_fill),
        "batch_match_ns": batch_match,
        "sequential_match_ns": seq_match,
        "match_speedup_x": ratio(seq_match, batch_match),
    },
    # Warm restart: rebuilding the bench repository from scratch (schema
    # replay + re-sweeping the 32-schema batch vocabulary) vs loading
    # the smx-persist snapshot of the same warm state. Acceptance:
    # snapshot_load at least 3x faster than cold_rebuild.
    # salvage_load is the degraded restart: the snapshot's ROWS section
    # is deliberately rotten, so the Salvage policy drops the cached
    # rows and rebuilds the rest. It must stay well below cold_rebuild
    # (that is the whole point of graceful degradation) — the guarded
    # floor is relative.salvage_cold_over_load.
    "restart": {
        "cold_rebuild_ns": restart_cold,
        "snapshot_load_ns": restart_load,
        "snapshot_speedup_x": ratio(restart_cold, restart_load),
        "salvage_load_ns": restart_salvage,
        "salvage_speedup_x": ratio(restart_cold, restart_salvage),
    },
    # The vectorised row-kernel dispatch split: the scalar NameSimilarity
    # reference path vs the kernel pinned to the scalar tier vs the
    # dispatched (SWAR / std::arch) tier, over identical query rows.
    "row_kernel": {
        "reference_ns": kernel_ref,
        "scalar_kernel_ns": kernel_scalar,
        "active_kernel_ns": kernel_active,
        "dispatch_speedup_x": ratio(kernel_scalar, kernel_active),
        "vs_reference_x": ratio(kernel_ref, kernel_active),
    },
    # Repository-size scaling of the certified candidate tier: cold
    # exhaustive vs cold candidate-tier (auto budget) end-to-end runs on
    # the same mixed-domain repository, with the recall certificate the
    # speedup was bought at (1.0 in auto mode — answers bitwise
    # identical; asserted inside the bench). The tier's fixed overhead
    # (index sweep + the always-active signal schemas) dominates at 64
    # schemas and amortises as the repository grows — the headline is
    # the 1024-schema ratio, guarded as
    # relative.candidate_over_exhaustive_1024.
    "candidate_tier": {
        "delta_max": 0.1,
        "sizes": tier,
    },
    # The composed filter->refine pipeline (candidate filter -> beam
    # filter -> exhaustive-on-survivors) racing the monolithic
    # exhaustive matcher on identical cold 1024-schema problems at
    # delta 0.2 — the threshold where the beam stage answers every
    # surviving schema, so the composed certificate stays at recall
    # 1.0 and the race measures what declarative composition costs.
    # The within-run ratio is guarded as
    # relative.pipeline_over_exhaustive_1024. certified_recall is the
    # composed certificate the speedup was bought at (asserted
    # admissible -- and >= 0.95 -- inside the bench itself).
    "pipeline": {
        "delta_max": 0.2,
        "composed_ns": entries.get("pipeline/composed_1024"),
        "exhaustive_ns": entries.get("pipeline/exhaustive_1024"),
        "speedup_x": ratio(
            entries.get("pipeline/exhaustive_1024"),
            entries.get("pipeline/composed_1024"),
        ),
        "certified_recall": entries.get("pipeline/certified_recall_1024"),
        "stages": entries.get("pipeline/stages_1024"),
    },
    # Tracing overhead on the hot sweep path: "baseline" is the
    # byte-for-byte pre-instrumentation score_rows body, "disabled" the
    # instrumented wrapper with tracing off (one relaxed atomic load),
    # "enabled" the informational traced run with a live collector.
    # Acceptance: baseline/disabled stays >= 0.95 — instrumentation may
    # cost at most ~5% when off — guarded as
    # relative.trace_overhead_disabled.
    "trace_overhead": {
        "baseline_ns": entries.get("trace_overhead/baseline"),
        "disabled_ns": entries.get("trace_overhead/disabled"),
        "enabled_ns": entries.get("trace_overhead/enabled"),
        "disabled_over_baseline_x": ratio(
            entries.get("trace_overhead/disabled"),
            entries.get("trace_overhead/baseline"),
        ),
        "enabled_over_baseline_x": ratio(
            entries.get("trace_overhead/enabled"),
            entries.get("trace_overhead/baseline"),
        ),
        # The guarded ratio: baseline/disabled measured PAIRED inside
        # one alternating loop (emitted by the bench as a value line),
        # immune to the per-position scheduling noise the standalone
        # entries above carry.
        "paired_baseline_over_disabled": entries.get(
            "trace_overhead/paired_baseline_over_disabled"
        ),
    },
    # The sharded score cache under concurrency: multi-thread warm-hit
    # sweeps over a 16-shard store vs an identical single-lock store.
    # The guarded ratio is the PAIRED one (alternating sweeps in one
    # loop): single-lock time over sharded time, i.e. the sharding
    # speedup, floored at 1.5 by scripts/bench_guard.sh. The bench only
    # emits it when available_parallelism() >= 2 — on a single-core
    # host there is no concurrency to measure, the key stays null here,
    # and the guard skips the floor loudly instead of failing.
    "store_sharded": {
        "threads": entries.get("store_sharded/threads"),
        "sharded_ns": entries.get("store_sharded/sharded"),
        "single_lock_ns": entries.get("store_sharded/single_lock"),
        "paired_sharded_over_single_lock": entries.get(
            "store_sharded/paired_sharded_over_single_lock"
        ),
    },
    # Within-run speedup ratios — each is measured inside ONE bench run,
    # so it is meaningful on any hardware. `scripts/bench_guard.sh` in
    # SMX_BENCH_GUARD=relative mode (the CI configuration) compares
    # these against the committed baseline instead of absolute ns.
    "relative": {
        "kernel_reference_over_active": ratio(kernel_ref, kernel_active),
        "kernel_scalar_over_active": ratio(kernel_scalar, kernel_active),
        "snapshot_cold_over_load": ratio(restart_cold, restart_load),
        "salvage_cold_over_load": ratio(restart_cold, restart_salvage),
        "batch_sequential_over_batch": ratio(seq_fill, batch_fill),
        "candidate_over_exhaustive_1024": ratio(
            entries.get("candidate_tier/exhaustive_1024"),
            entries.get("candidate_tier/candidate_1024"),
        ),
        "pipeline_over_exhaustive_1024": ratio(
            entries.get("pipeline/exhaustive_1024"),
            entries.get("pipeline/composed_1024"),
        ),
        "trace_overhead_disabled": round(
            entries["trace_overhead/paired_baseline_over_disabled"], 3
        ) if entries.get("trace_overhead/paired_baseline_over_disabled") else None,
        "sharded_sweep_over_single_lock": round(
            entries["store_sharded/paired_sharded_over_single_lock"], 3
        ) if entries.get("store_sharded/paired_sharded_over_single_lock") else None,
    },
}
with open(sys.argv[2], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {sys.argv[2]}")
print(json.dumps({k: doc[k] for k in ("exhaustive_speedup", "matrix_fill", "batch32", "restart", "row_kernel", "candidate_tier", "pipeline", "trace_overhead", "relative")}, indent=2))
EOF

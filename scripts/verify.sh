#!/usr/bin/env bash
# Tier-1 verification: format, build, test, lint, bench-compile, smoke,
# and guard the headline benches against regressions.
#
#   scripts/verify.sh
#
# Steps (all must pass):
#   1. cargo fmt --check (whole workspace; the tree is kept rustfmt-clean)
#   2. release build of every crate
#   3. full test suite (includes the kernel dispatch differential suites
#      and the SMX_KERNEL_FORCE forced-variant tests — see below)
#   4. clippy with warnings denied (all targets: libs, tests, benches,
#      examples, figure binaries)
#   5. rustdoc gate: `cargo doc --no-deps` over every smx crate with
#      warnings denied (broken intra-doc links, missing docs under the
#      crates that deny them). Targets the smx packages explicitly —
#      the vendored shims are workspace members and are not held to the
#      documentation bar.
#   6. benches compile (`cargo bench --no-run`) so perf regressions can
#      always be measured
#   7. snapshot round-trip smoke check: examples/warm_restart saves a
#      snapshot, loads it, asserts the loaded repository matches
#      bitwise, and salvage-loads a deliberately rotten snapshot (it
#      exits non-zero on any divergence)
#   8. fault-injection suites, run explicitly and named in the output:
#      the crash matrix (a simulated crash at every I/O op and write
#      byte of a snapshot save / spill compaction leaves old-or-new,
#      never a hybrid), the chaos gate (randomized fault plans never
#      change any matcher's answers), and the spill-compaction
#      properties. They also run inside step 3; this step exists so a
#      durability regression is named as such, not buried in the suite.
#   9. certified candidate-tier suites, likewise named: the
#      differential suite (candidate-restricted answers bitwise equal
#      to the exhaustive oracle's, certificates admissible across
#      matchers and budgets) and the bound-admissibility property
#      suite (certified recall never exceeds measured recall,
#      including budget 0 and budget >= n edges). A certification
#      regression fails here by name, not buried in step 3.
#  10. pipeline-algebra suites, likewise named: the pipeline
#      differential gate (every candidate→refine decomposition bitwise
#      equal to its monolith; normalize() preserves answers and
#      certificates exactly), the proptest algebra gate over random
#      stage compositions, and the certified matrix (what each matcher
#      class — complete / restriction-monotone / global-budget — can
#      promise under fixed budgets).
#  11. observability suites, likewise named: the trace-identity gate
#      (tracing on/off changes no matcher's answers bitwise — clean
#      runs, fault storms, and the JSON-lines sink), the metrics
#      property suite (snapshot/histogram merges associative, trace
#      lines checksum-valid and corruption-detecting), and the
#      concurrent-sweep counter-consistency gate (site-gated registry
#      metrics agree exactly with StoreCounters under racing sweeps);
#      plus an examples/observability smoke run under SMX_TRACE=1
#      (exits non-zero unless the span tree covers candidate
#      generation, the restricted fill, and the refine stage).
#  12. sharded-store mutation suites, likewise named: the mutation
#      edge-case + property suite (remove-then-readd, replace under a
#      bounded store with spilled rows, removal racing concurrent batch
#      sweeps, arbitrary mutation histories vs fresh rebuilds) and the
#      mutation differential gate (a sharded, bounded, mutated
#      repository gives every matcher answers bitwise identical to a
#      fresh unsharded rebuild).
#  13. bench-regression guard (scripts/bench_guard.sh): a fresh
#      scripts/bench_matching.sh run compared against the committed
#      BENCH_matching.json with a +25% budget.
#
# Steps 8–12 run through named_suites(), which fails loudly if any named
# test binary reports "running 0 tests" — a renamed file or filter typo
# must not silently disable a gate.
#
# Bench-guard modes (SMX_BENCH_GUARD):
#   absolute (default) — absolute ns of matchers/s1_exhaustive_cold,
#       matrix_fill/{cold,batch}, restart/snapshot_load, and
#       row_kernel/active vs the committed baseline. Only meaningful on
#       the baseline machine class.
#   relative — within-run speedup ratios (the committed `relative`
#       section: row-kernel dispatch vs scalar reference, snapshot load
#       vs cold rebuild, batch vs sequential fill) vs the fresh run's
#       ratios. Machine-independent; what .github/workflows/ci.yml runs.
#   0 — skip, loudly. A missing BENCH_matching.json baseline is a loud
#       skip locally and a FAILURE under CI (CI=1/true) — the guard
#       never silently reports green.
#
# Kernel dispatch: the row kernel's inner loops (Jaro bitset scan, gram
# merge, Myers advance) are selected at runtime by smx_text's
# KernelVariant (scalar oracle / SWAR / std::arch SSE2-NEON). The
# SMX_KERNEL_FORCE env var (scalar|swar|arch) pins a variant
# process-wide — useful for bisecting a suspected vectorisation bug:
# SMX_KERNEL_FORCE=scalar scripts/verify.sh runs everything on the
# oracle tier. All variants are bitwise-identical by contract.
#
# Tracing: SMX_TRACE switches structured tracing on process-wide
# (1 = in-process span collector, json = JSON-lines sink at
# SMX_TRACE_FILE or ./smx-trace.jsonl). Instrumentation is contractually
# inert — the trace-identity gate in step 10 proves answers are bitwise
# unchanged either way, and the trace_overhead bench holds the disabled
# path within ~5% of the pre-instrumentation baseline
# (relative.trace_overhead_disabled). SMX_TRACE=1 scripts/verify.sh is
# supported but the identity suites flip tracing themselves.
set -euo pipefail
cd "$(dirname "$0")/.."

# Run named test binaries (`cargo test <args> -q`) and fail loudly if
# any of them reports "running 0 tests": an empty named suite means a
# rename or a filter typo disabled a gate without failing anything.
named_suites() {
  local out
  out="$(cargo test "$@" -q 2>&1)" || { printf '%s\n' "$out"; return 1; }
  printf '%s\n' "$out"
  if printf '%s\n' "$out" | grep -q '^running 0 tests'; then
    echo "verify: FAIL — a named suite ran 0 tests (cargo test $*)" >&2
    return 1
  fi
}

echo "== [1/13] cargo fmt --all --check"
cargo fmt --all --check

echo "== [2/13] cargo build --release"
cargo build --release

echo "== [3/13] cargo test -q"
cargo test -q

echo "== [4/13] cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "== [5/13] cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps \
  -p smx -p smx-core -p smx-obs -p smx-text -p smx-xml -p smx-repo \
  -p smx-match -p smx-persist -p smx-eval -p smx-synth -p smx-bench

echo "== [6/13] cargo bench --no-run"
cargo bench -p smx-bench --no-run

echo "== [7/13] snapshot round-trip smoke (examples/warm_restart)"
cargo run --release --example warm_restart >/dev/null

echo "== [8/13] fault-injection suites (crash matrix, chaos, spill compaction)"
named_suites -p smx-persist --test crash_matrix --test chaos --test spill_compaction

echo "== [9/13] certified candidate-tier suites (differential, bound admissibility)"
named_suites -p smx-match --test candidate_differential --test bound_admissibility

echo "== [10/13] pipeline-algebra suites (differential, algebra, certified matrix)"
named_suites -p smx-match --test pipeline_differential --test pipeline_algebra --test certified_matrix

echo "== [11/13] observability suites (trace identity, metrics properties, counter consistency)"
named_suites -p smx-persist --test trace_identity
named_suites -p smx-obs --test metrics_properties
named_suites -p smx-repo --test trace_concurrency
SMX_TRACE=1 cargo run --release --example observability >/dev/null

echo "== [12/13] sharded-store mutation suites (edge cases + properties, differential gate)"
named_suites -p smx-repo --test mutation
named_suites -p smx-match --test mutation_differential

echo "== [13/13] bench-regression guard (scripts/bench_guard.sh, mode: ${SMX_BENCH_GUARD:-absolute})"
scripts/bench_guard.sh

echo "verify: OK"

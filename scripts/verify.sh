#!/usr/bin/env bash
# Tier-1 verification: build, test, lint, and bench-compile the workspace.
#
#   scripts/verify.sh
#
# Steps (all must pass):
#   1. release build of every crate
#   2. full test suite
#   3. clippy with warnings denied (all targets: libs, tests, benches,
#      examples, figure binaries)
#   4. benches compile (`cargo bench --no-run`) so perf regressions can
#      always be measured
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== [1/4] cargo build --release"
cargo build --release

echo "== [2/4] cargo test -q"
cargo test -q

echo "== [3/4] cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "== [4/4] cargo bench --no-run"
cargo bench -p smx-bench --no-run

echo "verify: OK"

#!/usr/bin/env bash
# Tier-1 verification: format, build, test, lint, bench-compile, smoke,
# and guard the headline benches against regressions.
#
#   scripts/verify.sh
#
# Steps (all must pass):
#   1. cargo fmt --check (whole workspace; the tree is kept rustfmt-clean)
#   2. release build of every crate
#   3. full test suite (includes the kernel dispatch differential suites
#      and the SMX_KERNEL_FORCE forced-variant tests — see below)
#   4. clippy with warnings denied (all targets: libs, tests, benches,
#      examples, figure binaries)
#   5. benches compile (`cargo bench --no-run`) so perf regressions can
#      always be measured
#   6. snapshot round-trip smoke check: examples/warm_restart saves a
#      snapshot, loads it, asserts the loaded repository matches
#      bitwise, and salvage-loads a deliberately rotten snapshot (it
#      exits non-zero on any divergence)
#   7. fault-injection suites, run explicitly and named in the output:
#      the crash matrix (a simulated crash at every I/O op and write
#      byte of a snapshot save / spill compaction leaves old-or-new,
#      never a hybrid), the chaos gate (randomized fault plans never
#      change any matcher's answers), and the spill-compaction
#      properties. They also run inside step 3; this step exists so a
#      durability regression is named as such, not buried in the suite.
#   8. certified candidate-tier suites, likewise named: the
#      differential suite (candidate-restricted answers bitwise equal
#      to the exhaustive oracle's, certificates admissible across
#      matchers and budgets) and the bound-admissibility property
#      suite (certified recall never exceeds measured recall,
#      including budget 0 and budget >= n edges). A certification
#      regression fails here by name, not buried in step 3.
#   9. bench-regression guard (scripts/bench_guard.sh): a fresh
#      scripts/bench_matching.sh run compared against the committed
#      BENCH_matching.json with a +25% budget.
#
# Bench-guard modes (SMX_BENCH_GUARD):
#   absolute (default) — absolute ns of matchers/s1_exhaustive_cold,
#       matrix_fill/{cold,batch}, restart/snapshot_load, and
#       row_kernel/active vs the committed baseline. Only meaningful on
#       the baseline machine class.
#   relative — within-run speedup ratios (the committed `relative`
#       section: row-kernel dispatch vs scalar reference, snapshot load
#       vs cold rebuild, batch vs sequential fill) vs the fresh run's
#       ratios. Machine-independent; what .github/workflows/ci.yml runs.
#   0 — skip, loudly. A missing BENCH_matching.json baseline is a loud
#       skip locally and a FAILURE under CI (CI=1/true) — the guard
#       never silently reports green.
#
# Kernel dispatch: the row kernel's inner loops (Jaro bitset scan, gram
# merge, Myers advance) are selected at runtime by smx_text's
# KernelVariant (scalar oracle / SWAR / std::arch SSE2-NEON). The
# SMX_KERNEL_FORCE env var (scalar|swar|arch) pins a variant
# process-wide — useful for bisecting a suspected vectorisation bug:
# SMX_KERNEL_FORCE=scalar scripts/verify.sh runs everything on the
# oracle tier. All variants are bitwise-identical by contract.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== [1/9] cargo fmt --all --check"
cargo fmt --all --check

echo "== [2/9] cargo build --release"
cargo build --release

echo "== [3/9] cargo test -q"
cargo test -q

echo "== [4/9] cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "== [5/9] cargo bench --no-run"
cargo bench -p smx-bench --no-run

echo "== [6/9] snapshot round-trip smoke (examples/warm_restart)"
cargo run --release --example warm_restart >/dev/null

echo "== [7/9] fault-injection suites (crash matrix, chaos, spill compaction)"
cargo test -p smx-persist --test crash_matrix --test chaos --test spill_compaction -q

echo "== [8/9] certified candidate-tier suites (differential, bound admissibility)"
cargo test -p smx-match --test candidate_differential --test bound_admissibility -q

echo "== [9/9] bench-regression guard (scripts/bench_guard.sh, mode: ${SMX_BENCH_GUARD:-absolute})"
scripts/bench_guard.sh

echo "verify: OK"

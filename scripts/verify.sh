#!/usr/bin/env bash
# Tier-1 verification: build, test, lint, bench-compile, and guard the
# headline bench against regressions.
#
#   scripts/verify.sh
#
# Steps (all must pass):
#   1. release build of every crate
#   2. full test suite
#   3. clippy with warnings denied (all targets: libs, tests, benches,
#      examples, figure binaries)
#   4. benches compile (`cargo bench --no-run`) so perf regressions can
#      always be measured
#   5. snapshot round-trip smoke check: examples/warm_restart saves a
#      snapshot, loads it, and asserts the loaded repository matches
#      bitwise (it exits non-zero on any divergence)
#   6. bench-regression guard: a fresh scripts/bench_matching.sh run must
#      not regress matchers/s1_exhaustive_cold (fresh problem, warm
#      repository store), matrix_fill/cold (full row-kernel sweep),
#      matrix_fill/batch (32-schema batch cold fill), or
#      restart/snapshot_load (smx-persist warm restart) by more than 25%
#      against the committed BENCH_matching.json
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== [1/6] cargo build --release"
cargo build --release

echo "== [2/6] cargo test -q"
cargo test -q

echo "== [3/6] cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "== [4/6] cargo bench --no-run"
cargo bench -p smx-bench --no-run

echo "== [5/6] snapshot round-trip smoke (examples/warm_restart)"
cargo run --release --example warm_restart >/dev/null

echo "== [6/6] bench-regression guard (s1_exhaustive_cold + matrix_fill/{cold,batch} + restart/snapshot_load, +25% budget)"
# The committed baseline is absolute ns from the machine that produced
# BENCH_matching.json; on different/slower hardware export
# SMX_BENCH_GUARD=0 to skip (and regenerate the baseline with
# scripts/bench_matching.sh when landing perf work).
if [[ "${SMX_BENCH_GUARD:-1}" == "0" ]]; then
    echo "SMX_BENCH_GUARD=0 — skipping guard"
elif [[ ! -f BENCH_matching.json ]]; then
    echo "no committed BENCH_matching.json — skipping guard"
else
    fresh=$(mktemp)
    trap 'rm -f "$fresh"' EXIT
    SMX_BENCH_OUT="$fresh" scripts/bench_matching.sh >/dev/null
    python3 - BENCH_matching.json "$fresh" <<'EOF'
import json, sys

# Guard the end-to-end headline (fresh problem against a warm
# repository store), the genuinely cold row-kernel sweep — a kernel
# regression is invisible to the first key once rows are cached — the
# batch cold fill (the bulk serving path), and the snapshot load (the
# warm-restart path; a decoder regression would silently erode the
# restart.snapshot_speedup_x acceptance ratio).
KEYS = [
    "matchers/s1_exhaustive_cold",
    "matrix_fill/cold",
    "matrix_fill/batch",
    "restart/snapshot_load",
]
BUDGET = 1.25

committed = json.load(open(sys.argv[1]))["results"]
fresh = json.load(open(sys.argv[2]))["results"]
failed = []
for key in KEYS:
    c, f = committed.get(key), fresh.get(key)
    if c is None:
        print(f"{key}: not in committed baseline yet — skipped")
        continue
    if f is None:
        sys.exit(f"bench guard: {key} missing from fresh results")
    print(f"{key}: committed {c:.0f} ns, fresh {f:.0f} ns ({f / c:.2f}x)")
    if f > c * BUDGET:
        failed.append(key)
if failed:
    sys.exit(f"bench guard FAILED: {', '.join(failed)} regressed beyond "
             f"the {BUDGET:.0%} budget")
print("bench guard: OK")
EOF
fi

echo "verify: OK"

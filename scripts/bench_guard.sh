#!/usr/bin/env bash
# Bench-regression guard: run a fresh scripts/bench_matching.sh and
# compare it against the committed BENCH_matching.json baseline.
#
#   scripts/bench_guard.sh                      # absolute mode (default)
#   SMX_BENCH_GUARD=relative scripts/bench_guard.sh   # CI mode
#   SMX_BENCH_GUARD=0 scripts/bench_guard.sh          # explicit skip
#
# Modes (SMX_BENCH_GUARD):
#   absolute  (default, also "1") — compare absolute ns-per-iter of the
#             guarded benches against the committed baseline with a +25%
#             budget. Only meaningful on the machine (class) that
#             produced the baseline; regenerate the baseline with
#             scripts/bench_matching.sh when landing perf work.
#   relative  — check the fresh run's WITHIN-RUN speedup ratios
#             (row-kernel dispatch vs its scalar reference, snapshot
#             load vs cold rebuild, batch vs sequential fill). Each
#             ratio is measured inside one run on one machine, so this
#             mode is meaningful on ANY hardware — it is what CI runs.
#             Ratios are held to fixed, documented acceptance floors
#             (ratio magnitudes shift with core count and CPU class
#             even though each ratio is internally consistent); any
#             future ratio without a floor falls back to the committed
#             ratio with a 25% budget.
#   0         — skip (loudly).
#
# A missing committed baseline is a configuration error, not a pass:
# the guard prints a loud skip and, when running under CI (CI=1/true),
# exits non-zero — a silently skipped guard must never report green.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${SMX_BENCH_GUARD:-absolute}"
case "$mode" in
0)
    echo "bench guard: SKIPPED (SMX_BENCH_GUARD=0)" >&2
    exit 0
    ;;
1) mode="absolute" ;;
absolute | relative) ;;
*)
    echo "bench guard: unknown SMX_BENCH_GUARD mode '$mode'" >&2
    exit 2
    ;;
esac

if [[ ! -f BENCH_matching.json ]]; then
    echo "bench guard: NO COMMITTED BENCH_matching.json — guard cannot run" >&2
    case "${CI:-}" in
    1 | true | TRUE | True)
        echo "bench guard: refusing to pass silently under CI" >&2
        exit 1
        ;;
    *)
        echo "bench guard: SKIPPED (regenerate with scripts/bench_matching.sh)" >&2
        exit 0
        ;;
    esac
fi

fresh=$(mktemp)
trap 'rm -f "$fresh"' EXIT
# The guard measures the *dispatched* kernel tier: a leaked
# SMX_KERNEL_FORCE (e.g. from the bisection workflow
# `SMX_KERNEL_FORCE=scalar scripts/verify.sh`) would make
# row_kernel/active silently measure the forced tier and fail — or
# worse, mislabel — the comparison, so it is dropped for the bench run.
if [[ -n "${SMX_KERNEL_FORCE:-}" ]]; then
    echo "bench guard: ignoring SMX_KERNEL_FORCE=${SMX_KERNEL_FORCE} for the guard's bench run" >&2
fi
SMX_BENCH_OUT="$fresh" env -u SMX_KERNEL_FORCE scripts/bench_matching.sh >/dev/null

python3 - "$mode" BENCH_matching.json "$fresh" <<'EOF'
import json, sys

mode, committed_path, fresh_path = sys.argv[1:4]
committed = json.load(open(committed_path))
fresh = json.load(open(fresh_path))
BUDGET = 1.25
failed = []

if mode == "absolute":
    # Guard the end-to-end headline (fresh problem against a warm
    # repository store), the genuinely cold row-kernel sweep — a kernel
    # regression is invisible to the first key once rows are cached —
    # the batch cold fill (the bulk serving path), the snapshot load
    # (the warm-restart path), and the dispatched row-kernel sweep
    # itself (the vectorisation tentpole).
    KEYS = [
        "matchers/s1_exhaustive_cold",
        "matrix_fill/cold",
        "matrix_fill/batch",
        "restart/snapshot_load",
        "row_kernel/active",
    ]
    c_res, f_res = committed["results"], fresh["results"]
    for key in KEYS:
        c, f = c_res.get(key), f_res.get(key)
        if c is None:
            print(f"{key}: not in committed baseline yet — skipped")
            continue
        if f is None:
            sys.exit(f"bench guard: {key} missing from fresh results")
        print(f"{key}: committed {c:.0f} ns, fresh {f:.0f} ns ({f / c:.2f}x)")
        if f > c * BUDGET:
            failed.append(key)
else:
    # Relative mode: within-run speedup ratios, higher is better. Every
    # ratio is held to a FIXED acceptance floor rather than to the
    # committed machine's ratio: within-run ratios are meaningful on any
    # hardware, but their *magnitude* still shifts with core count
    # (cold_rebuild's re-sweep and the batch fill thread on multicore)
    # and CPU/allocator class (the scalar reference path's relative
    # cost), so "committed/1.25" from the baseline box would flag
    # runners that regressed nothing. The floors are the guarantees the
    # subsystems shipped with: the dispatched kernel must beat
    # re-scoring through the scalar string path by a wide margin and
    # the forced-scalar kernel tier by a clear one (a broken dispatch
    # collapses both to ~1x), snapshot load must stay >= 3x a cold
    # rebuild, a *salvage* load of a rows-rotten snapshot must still
    # clearly beat that cold rebuild (graceful degradation has to stay
    # cheaper than starting over), the batch fill must stay measurably
    # ahead of sequential serving, the certified candidate tier
    # must beat the cold exhaustive run at 1024 mixed-domain schemas
    # by at least 5x while its certificate stays at recall 1.0 (the
    # bench itself asserts the certificate; this floor guards the
    # speedup half of the headline), and the composed filter->refine
    # pipeline (candidate -> beam -> exhaustive-on-survivors, at the
    # delta where the composition is certifiably lossless) must still
    # beat the monolithic exhaustive run it decomposes — declarative
    # composition, stage bookkeeping, and the beam predicate together
    # must never cost more than they save (the pipeline bench asserts
    # its composed certificate stays admissible and >= 0.95). The
    # trace_overhead_disabled floor holds the observability layer to
    # its near-zero-cost-when-disabled contract: the instrumented
    # score_rows wrapper with tracing off must stay within ~5% of the
    # byte-for-byte pre-instrumentation baseline (ratio is
    # baseline/disabled, so 1.0 means free and 0.95 caps the cost).
    # The sharded_sweep_over_single_lock floor holds the sharded score
    # cache to its concurrency contract: multi-thread warm-hit sweeps
    # over the 16-shard store must beat the identical single-lock store
    # by >= 1.5x. The bench only emits the ratio on hosts with >= 2
    # cores (on one core there is no concurrency to measure), so this
    # floor is in HOST_DEPENDENT: when the fresh run did not measure
    # it, the guard skips it loudly instead of failing.
    FLOORS = {
        "kernel_reference_over_active": 4.0,
        "kernel_scalar_over_active": 1.25,
        "snapshot_cold_over_load": 3.0,
        "salvage_cold_over_load": 1.5,
        "batch_sequential_over_batch": 1.2,
        "candidate_over_exhaustive_1024": 5.0,
        "pipeline_over_exhaustive_1024": 1.2,
        "trace_overhead_disabled": 0.95,
        "sharded_sweep_over_single_lock": 1.5,
    }
    # Floors whose ratio a fresh run may legitimately not measure
    # (emission depends on the host, e.g. core count). Every other
    # floor key missing from a fresh run is an error.
    HOST_DEPENDENT = {"sharded_sweep_over_single_lock"}
    c_rel = committed.get("relative")
    if not c_rel:
        sys.exit("bench guard: committed baseline has no 'relative' section "
                 "(regenerate BENCH_matching.json with scripts/bench_matching.sh)")
    f_rel = fresh.get("relative") or {}
    # Iterate the union of committed ratios and floor keys: a floor key
    # absent from the committed baseline must still be checked (a stale
    # baseline must not silently disable a guarantee).
    for key in sorted(set(c_rel) | set(FLOORS)):
        c = c_rel.get(key)
        f = f_rel.get(key)
        if key in FLOORS:
            if f is None:
                if key in HOST_DEPENDENT:
                    print(f"relative.{key}: SKIPPED — not measured in "
                          f"fresh run (single-core host?)")
                    continue
                sys.exit(f"bench guard: relative.{key} missing from fresh results")
            floor = FLOORS[key]
            print(f"relative.{key}: fresh {f:.2f}x (acceptance floor {floor:.1f}x)")
        else:
            if c is None:
                print(f"relative.{key}: no committed ratio — skipped")
                continue
            if f is None:
                sys.exit(f"bench guard: relative.{key} missing from fresh results")
            floor = c / BUDGET
            print(f"relative.{key}: committed {c:.2f}x, fresh {f:.2f}x "
                  f"(floor {floor:.2f}x)")
        if f < floor:
            failed.append(f"relative.{key}")

if failed:
    sys.exit(f"bench guard FAILED ({mode} mode): {', '.join(failed)} regressed "
             f"beyond the {BUDGET:.0%} budget")
print(f"bench guard ({mode} mode): OK")
EOF

//! Warm restart: snapshot a serving repository — schemas plus the label
//! store's hot state (profiles, token index, cached score rows) — shut
//! "the process" down, load the snapshot, and keep serving with zero
//! recompute and bitwise-identical answers. Also shows the eviction
//! spill file: a bounded row cache that trades memory for disk instead
//! of recompute.
//!
//! Exits non-zero on any divergence, so `scripts/verify.sh` runs it as
//! the snapshot round-trip smoke check.
//!
//! Run with: `cargo run --release --example warm_restart`

use smx::matching::{ExhaustiveMatcher, MappingRegistry, MatchProblem, Matcher};
use smx::persist::{RealIo, RecoveryPolicy, Snapshot, SpillFile};
use smx::repo::Repository;
use smx::synth::{Scenario, ScenarioConfig};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // 1. A repository with live traffic: one query warms the store.
    let sc = Scenario::generate(ScenarioConfig {
        derived_schemas: 10,
        noise_schemas: 5,
        personal_nodes: 5,
        host_nodes: 9,
        perturbation_strength: 0.8,
        seed: 42,
        ..Default::default()
    });
    let repository = sc.repository;
    let registry = MappingRegistry::new();
    let matcher = ExhaustiveMatcher::default();
    let problem = MatchProblem::new(sc.personal.clone(), repository.clone())
        .expect("non-empty personal schema");
    let before = matcher.run(&problem, 0.4, &registry);
    println!(
        "serving: {} schemas, {} distinct labels, {} warm score rows, {} answers",
        repository.len(),
        repository.store().len(),
        repository.store().cached_rows(),
        before.len()
    );

    // 2. Snapshot to disk — the versioned, checksummed smx-persist
    //    image of schemas + hot store state.
    let path = std::env::temp_dir().join(format!("smx-warm-restart-{}.snap", std::process::id()));
    let t = Instant::now();
    repository
        .save_snapshot_file(&path)
        .expect("snapshot writes");
    let saved = t.elapsed();
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "snapshot: {bytes} bytes written in {saved:.2?} -> {}",
        path.display()
    );

    // 3. "Restart": load the snapshot and serve the same query again.
    let t = Instant::now();
    let restarted = Repository::load_snapshot_file(&path).expect("snapshot loads");
    let loaded = t.elapsed();
    let replay = MatchProblem::new(sc.personal.clone(), restarted.clone())
        .expect("non-empty personal schema");
    let after = matcher.run(&replay, 0.4, &registry);
    println!(
        "restart: loaded in {loaded:.2?}, {} warm rows back, {} answers",
        restarted.store().cached_rows(),
        after.len()
    );

    // The smoke-check teeth: identical repositories, identical answers
    // (bitwise scores), and zero pair evaluations on the replay — the
    // warm rows really did survive.
    assert_eq!(restarted, repository, "loaded repository diverged");
    assert_eq!(after.len(), before.len(), "answer counts diverged");
    for (a, b) in before.answers().iter().zip(after.answers()) {
        assert_eq!(
            a.score.to_bits(),
            b.score.to_bits(),
            "answer scores diverged"
        );
    }
    assert_eq!(
        restarted.store().pair_evals(),
        0,
        "replay against the loaded snapshot recomputed rows"
    );
    println!("identity: answers bitwise-identical, 0 pairs re-evaluated after restart");

    // 4. Bonus: bound the restarted cache and spill evictions to disk.
    //    Re-querying a spilled row faults it back instead of sweeping.
    let spill_path = path.with_extension("spill");
    let spill = Arc::new(SpillFile::create(&spill_path).expect("spill file"));
    restarted
        .store()
        .set_eviction_sink(Some(Arc::clone(&spill) as _));
    restarted.store().set_max_cached_rows(Some(2));
    for q in ["invoiceNo", "shipmentDate", "customerRef"] {
        restarted.store().score_row(q);
    }
    let evals = restarted.store().pair_evals();
    restarted.store().score_row("invoiceNo"); // evicted + spilled above
    let c = restarted.store().counters();
    assert_eq!(
        restarted.store().pair_evals(),
        evals,
        "spilled row must fault, not sweep"
    );
    println!(
        "spill: {} rows on disk ({} bytes), {} spilled, {} recovered, 0 pairs re-evaluated",
        spill.len(),
        spill.spilled_bytes(),
        c.row_spills,
        c.row_spill_recoveries
    );

    // 5. Salvage restart: a snapshot whose ROWS section rotted on disk.
    //    Strict loading refuses it; the Salvage policy degrades — the
    //    damaged section's state is rebuilt or dropped, the report says
    //    exactly what happened, and serving continues (the dropped rows
    //    cost one recompute each, never a wrong answer).
    let mut rotten = std::fs::read(&path).expect("snapshot bytes");
    let rows_at = find_section_payload(&rotten, smx::persist::section::ROWS);
    rotten[rows_at] ^= 0x08; // one flipped bit, as disks do
    std::fs::write(&path, &rotten).expect("write the rotten snapshot");
    assert!(
        Repository::load_snapshot_file(&path).is_err(),
        "strict load must refuse a rotten section"
    );
    let (salvaged, report) =
        Repository::load_snapshot_file_with(&RealIo, &path, RecoveryPolicy::Salvage)
            .expect("salvage load succeeds");
    println!("salvage: {report}");
    let health = salvaged.store().health();
    assert!(!report.is_clean(), "the damage must be reported");
    assert_eq!(health.salvage_events, 1, "health must expose the salvage");
    // The salvaged repository answers bitwise-identically — it just has
    // to recompute the rows the rotten section lost.
    let degraded_problem = MatchProblem::new(sc.personal.clone(), salvaged.clone())
        .expect("non-empty personal schema");
    let degraded = matcher.run(&degraded_problem, 0.4, &registry);
    assert_eq!(
        degraded.len(),
        before.len(),
        "salvaged answer count diverged"
    );
    for (a, b) in before.answers().iter().zip(degraded.answers()) {
        assert_eq!(
            a.score.to_bits(),
            b.score.to_bits(),
            "salvaged answer scores diverged"
        );
    }
    println!(
        "salvage: answers bitwise-identical after degraded restart ({} rows recomputed)",
        salvaged.store().cached_rows()
    );

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&spill_path).ok();
    println!("warm restart: OK");
}

/// Locate a section's payload offset via the snapshot's on-disk table
/// (magic + version + count, then 28-byte `{id, offset, len, checksum}`
/// entries) so the demo can rot a real byte of it.
fn find_section_payload(bytes: &[u8], id: u32) -> usize {
    let table_at = smx::persist::MAGIC.len() + 8;
    let count = u32::from_le_bytes(bytes[table_at - 4..table_at].try_into().unwrap()) as usize;
    for i in 0..count {
        let entry = table_at + i * 28;
        if u32::from_le_bytes(bytes[entry..entry + 4].try_into().unwrap()) == id {
            let offset = u64::from_le_bytes(bytes[entry + 4..entry + 12].try_into().unwrap());
            let len = u64::from_le_bytes(bytes[entry + 12..entry + 20].try_into().unwrap());
            return offset as usize + len as usize / 2;
        }
    }
    panic!("section {id} missing from the snapshot");
}

//! The paper's motivating workload: a user's small *personal schema*
//! searched against a large schema repository, made scalable with
//! clustering ([16] in the paper) — and the effectiveness price of that
//! scalability, bounded without human judgments.
//!
//! Sweeps the number of searched cluster fragments F: fewer fragments =
//! faster but more answers missed. For each F the example prints the
//! speed proxy (mappings evaluated), the answer-size ratio, and the
//! guaranteed worst-case precision at the head of the ranking.
//!
//! Run with: `cargo run --release --example personal_schema_search`

use smx::matching::search_space_size;
use smx::pipeline::Experiment;
use smx::synth::{Domain, ScenarioConfig};
use std::time::Instant;

fn main() {
    let exp = Experiment::generate(
        ScenarioConfig {
            domain: Domain::Commerce,
            derived_schemas: 25,
            noise_schemas: 15,
            personal_nodes: 5,
            host_nodes: 11,
            perturbation_strength: 0.85,
            seed: 11,
        },
        0.25,
    );
    println!(
        "personal schema '{}' ({} elements) vs {} schemas / {} elements",
        exp.scenario
            .personal
            .node(exp.scenario.personal.root().expect("root"))
            .name,
        exp.scenario.personal.len(),
        exp.scenario.repository.len(),
        exp.scenario.repository.total_elements(),
    );
    println!(
        "full injective search space: {} mappings (exhaustive search is exponential)",
        search_space_size(&exp.problem)
    );

    let t0 = Instant::now();
    let s1 = exp.run_s1();
    let s1_time = t0.elapsed();
    let s1_curve = exp
        .measured_curve(&s1, 14)
        .expect("non-empty truth and grid");
    println!("\nS1 exhaustive: {} answers in {:.1?}", s1.len(), s1_time);

    println!("\nF  answers  ratio   time      worst-P@head  worst-P@tail");
    for fragments in [1usize, 2, 4, 8, 16] {
        let t0 = Instant::now();
        let s2 = exp.run_s2_cluster(0.55, fragments);
        let elapsed = t0.elapsed();
        let env = exp.envelope(&s1_curve, &s2).expect("S2 ⊆ S1");
        let head = env.points().first().expect("non-empty envelope");
        let tail = env.points().last().expect("non-empty envelope");
        println!(
            "{fragments:>2}  {:>7}  {:.3}  {:>8.1?}  {:>12.3}  {:>12.3}",
            s2.len(),
            s2.len() as f64 / s1.len() as f64,
            elapsed,
            head.incremental.worst.precision,
            tail.incremental.worst.precision,
        );
    }
    println!(
        "\nreading: more fragments → more of S1's answers retained → tighter \
         worst-case guarantees, at more search cost. The paper's conclusion: \
         for the top of the ranking (head), guarantees stay useful even under \
         aggressive restriction."
    );
}

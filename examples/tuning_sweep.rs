//! Use-case (2) from the paper's introduction: "get an impression on the
//! efficiency-effectiveness trade-off in an automated way allowing quick
//! evaluation of many different parameter settings".
//!
//! Sweeps the beam width of the S2 improvement. For every width the only
//! measurement taken is the answer-set size curve — no ground truth, no
//! human — yet each setting gets a guaranteed worst-case precision/recall
//! and a random-baseline expectation, enough to pick an operating point.
//!
//! Run with: `cargo run --release --example tuning_sweep`

use smx::pipeline::Experiment;
use smx::synth::ScenarioConfig;

fn main() {
    let exp = Experiment::generate(
        ScenarioConfig {
            derived_schemas: 22,
            noise_schemas: 12,
            personal_nodes: 5,
            host_nodes: 10,
            perturbation_strength: 0.85,
            seed: 99,
            ..Default::default()
        },
        0.25,
    );
    let s1 = exp.run_s1();
    let s1_curve = exp
        .measured_curve(&s1, 12)
        .expect("non-empty truth and grid");
    println!(
        "S1: {} answers; evaluating 7 beam widths with zero judging effort\n",
        s1.len()
    );

    println!("width  answers  mean-ratio  min-worst-P  min-worst-R  min-random-P");
    for width in [1usize, 2, 4, 8, 16, 32, 64] {
        let s2 = exp.run_s2_beam(width);
        let env = exp.envelope(&s1_curve, &s2).expect("S2 ⊆ S1");
        let mean_ratio = env.points().iter().map(|p| p.ratio.get()).sum::<f64>() / env.len() as f64;
        let min_worst_p = env
            .points()
            .iter()
            .map(|p| p.incremental.worst.precision)
            .fold(f64::INFINITY, f64::min);
        let min_worst_r = env
            .points()
            .iter()
            .map(|p| p.incremental.worst.recall)
            .fold(f64::INFINITY, f64::min);
        let min_rand_p = env
            .points()
            .iter()
            .map(|p| p.random.precision)
            .fold(f64::INFINITY, f64::min);
        println!(
            "{width:>5}  {:>7}  {mean_ratio:>10.3}  {min_worst_p:>11.3}  {min_worst_r:>11.3}  {min_rand_p:>12.3}",
            s2.len(),
        );
    }
    println!(
        "\nreading: pick the smallest width whose worst-case (or random-case) \
         effectiveness is acceptable. Every row cost one matcher run and a \
         size comparison — no human validation."
    );
}

//! Bulk serving: one repository answering a whole batch of
//! personal-schema queries through the batch matching subsystem, with
//! the label score store's work counters showing what the batch
//! amortised — then the same batch again under a production-style LRU
//! bound on the row cache, showing eviction at work and results
//! unchanged.
//!
//! Run with: `cargo run --release --example bulk_matching`

use smx::matching::{BatchMatcher, BatchProblem, ExhaustiveMatcher, MappingRegistry};
use smx::synth::{Scenario, ScenarioConfig};
use smx::xml::Schema;

fn main() {
    // 1. The repository: 18 schemas grown from one domain.
    let sc = Scenario::generate(ScenarioConfig {
        derived_schemas: 12,
        noise_schemas: 6,
        personal_nodes: 5,
        host_nodes: 10,
        perturbation_strength: 0.8,
        seed: 7,
        ..Default::default()
    });
    let repository = sc.repository;
    println!(
        "repository: {} schemas, {} elements, {} distinct labels",
        repository.len(),
        repository.total_elements(),
        repository.store().len()
    );

    // 2. The workload: 16 personal schemas from the same domain — their
    //    vocabularies overlap, which is exactly what batching amortises.
    let personals: Vec<Schema> = (0..16)
        .map(|i| {
            Scenario::generate(ScenarioConfig {
                derived_schemas: 1,
                noise_schemas: 0,
                personal_nodes: 5,
                host_nodes: 6,
                perturbation_strength: 0.8,
                seed: 100 + i,
                ..Default::default()
            })
            .personal
        })
        .collect();
    let total_labels: usize = personals.iter().map(Schema::len).sum();

    // 3. Batch match: distinct labels deduped across the batch, missing
    //    score rows computed by one shared sweep over the stored label
    //    profiles, then S1 dispatched per problem across scoped workers.
    let batch = BatchProblem::new(personals.clone(), repository.clone())
        .expect("non-empty personal schemas");
    println!(
        "batch: {} queries, {} personal labels, {} distinct after dedup\n",
        batch.len(),
        total_labels,
        batch.distinct_labels().len()
    );
    let registry = MappingRegistry::new();
    let matcher = BatchMatcher::with_threads(ExhaustiveMatcher::default(), 4);
    let results = matcher.run_batch(&batch, 0.3, &registry);
    println!("query   answers   best Δ");
    for (i, answers) in results.iter().enumerate() {
        let best = answers
            .answers()
            .first()
            .map_or("-".to_owned(), |a| format!("{:.4}", a.score));
        println!("q{i:<6} {:<9} {best}", answers.len());
    }
    let unbounded = repository.store().counters();
    println!(
        "\nunbounded store: {} pair evals, {} row lookups ({} hits / {} misses), \
         {} rows cached",
        unbounded.pair_evals,
        unbounded.row_lookups,
        unbounded.row_hits,
        unbounded.row_misses,
        repository.store().cached_rows()
    );

    // 4. Production memory pressure: bound the row cache below the
    //    batch's vocabulary. Evicted rows are recomputed bitwise
    //    identically, so answers cannot change — only the hit rate does.
    repository.store().set_max_cached_rows(Some(8));
    repository.clear_score_rows();
    // A fresh batch, so every problem re-fills its cost matrix through
    // the bounded store (the first batch's engines are already cached).
    let bounded_batch =
        BatchProblem::new(personals, repository.clone()).expect("non-empty personal schemas");
    let registry2 = MappingRegistry::new();
    let bounded_results = matcher.run_batch(&bounded_batch, 0.3, &registry2);
    let bounded = repository.store().counters();
    println!(
        "bounded store (8 rows): {} evictions, {} rows cached, extra pair evals {}",
        bounded.row_evictions,
        repository.store().cached_rows(),
        bounded.pair_evals - unbounded.pair_evals,
    );
    let identical = results.iter().zip(&bounded_results).all(|(a, b)| {
        a.len() == b.len()
            && a.answers()
                .iter()
                .zip(b.answers())
                .all(|(x, y)| x.score.to_bits() == y.score.to_bits())
    });
    println!("answers identical under eviction: {identical}");
    assert!(identical, "eviction must never change scores");
}

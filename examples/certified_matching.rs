//! Certified non-exhaustive matching: prune most of the repository with
//! the inverted-index filter tier, score only the survivors, and carry
//! a *machine-checkable* recall bound — no ground truth, no exhaustive
//! reference run needed.
//!
//! The example runs three configurations against the same repository
//! and threshold: the exhaustive oracle, the auto-budget certified tier
//! (prunes only schemas *proven* empty — certificate 1.0, answers
//! bitwise identical), and a fixed-budget tier that keeps the 12 most
//! promising schemas and caps the rest. For each certified run it
//! prints the pruned pair count, the certified bound, and the recall
//! actually measured against the oracle — the measurement always
//! dominates the certificate.
//!
//! Run with: `cargo run --release --example certified_matching`

use smx::matching::{
    CandidateConfig, CandidateGenerator, CertifiedMatcher, ExhaustiveMatcher, MappingRegistry,
    MatchProblem, Matcher, ObjectiveFunction,
};
use smx::synth::{Domain, Scenario, ScenarioConfig};
use std::time::Instant;

fn main() {
    let delta_max = 0.2;
    let sc = Scenario::generate(ScenarioConfig {
        domain: Domain::Publications,
        derived_schemas: 16,
        noise_schemas: 112,
        personal_nodes: 4,
        host_nodes: 9,
        perturbation_strength: 0.9,
        seed: 7,
    });
    let problem = MatchProblem::new(sc.personal, sc.repository).expect("valid scenario");
    let registry = MappingRegistry::new();

    println!(
        "repository: {} schemas / {} elements, threshold δ = {delta_max}",
        problem.repository().len(),
        problem.repository().total_elements(),
    );

    let t0 = Instant::now();
    let oracle = ExhaustiveMatcher::default().run(&problem, delta_max, &registry);
    let oracle_time = t0.elapsed();
    println!(
        "\nexhaustive oracle: {} answers in {:.1?}\n",
        oracle.len(),
        oracle_time
    );

    println!("tier          answers  pruned-pairs  certified  measured  time");
    for (label, budget) in [("auto", None), ("budget=12", Some(12))] {
        let matcher = CertifiedMatcher::new(
            ExhaustiveMatcher::default(),
            CandidateGenerator::new(ObjectiveFunction::default(), CandidateConfig { budget }),
        );
        let t0 = Instant::now();
        let certified = matcher.run_certified(&problem, delta_max, &registry);
        let elapsed = t0.elapsed();
        let measured = if oracle.is_empty() {
            1.0
        } else {
            let kept = certified
                .answers
                .ids()
                .filter(|&id| oracle.score_of(id).is_some())
                .count();
            kept as f64 / oracle.len() as f64
        };
        let cert = &certified.certificate;
        println!(
            "{label:<13} {:>7}  {:>12}  {:>9.4}  {:>8.4}  {:.1?}",
            certified.answers.len(),
            cert.pruned_pairs(),
            cert.certified_recall(),
            measured,
            elapsed,
        );
        assert!(
            cert.certified_recall() <= measured + 1e-12,
            "certificate must never overstate measured recall"
        );
        println!(
            "              {} of {} schemas certified empty, {} scored, missed ≤ {:.1} answers",
            cert.cert_empty_schemas(),
            cert.total_schemas(),
            cert.active_schemas(),
            cert.missed_cap(),
        );
    }
    println!("\ncertified ≤ measured held for every run — the bound is admissible.");
}

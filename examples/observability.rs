//! Observability end to end: a cold 1024-schema certified match run
//! with structured tracing on, rendered as a span tree — candidate
//! generation, the restricted cost-matrix fill, and the refine stage
//! each carry their wall time and cap attribution — followed by a
//! composed pipeline run (per-stage spans and the printable
//! certificate) and the merged metrics snapshot the store publishes.
//!
//! The example honors `SMX_TRACE`: with `SMX_TRACE=1` it reuses the
//! environment-installed collector; otherwise it installs its own (if
//! `SMX_TRACE=json` was set, the JSON-lines trace file is created
//! first, then the global recorder is re-pointed at the in-process
//! collector so the tree below can be rendered).
//!
//! The process exits non-zero if the trace fails to cover the
//! candidate-generation, restricted-fill, or refine stages.
//!
//! Run with: `SMX_TRACE=1 cargo run --release --example observability`

use smx::matching::{
    CandidateConfig, CandidateGenerator, CertifiedMatcher, ExhaustiveMatcher, MappingRegistry,
    MatchProblem, ObjectiveFunction, Pipeline,
};
use smx::obs::AttrValue;
use smx::synth::{Scenario, ScenarioConfig};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    // `enabled()` forces the one-time SMX_TRACE parse so env_collector
    // is populated when the variable selected the collector mode.
    let from_env = smx::obs::enabled();
    let collector = match smx::obs::env_collector() {
        Some(collector) => {
            println!("tracing: on via SMX_TRACE=1 (environment collector)");
            collector
        }
        None => {
            if from_env {
                println!("tracing: SMX_TRACE=json created a trace file; re-pointing the recorder at an in-process collector for the tree below");
            } else {
                println!("tracing: SMX_TRACE unset — installing an in-process collector");
            }
            smx::obs::install_collector()
        }
    };

    // A cold 1024-schema repository: 64 schemas derived from the
    // personal schema's domain buried in 960 unrelated ones. Nothing
    // is cached — every score row the run needs is computed inside the
    // traced region.
    let delta_max = 0.2;
    let sc = Scenario::generate(ScenarioConfig {
        derived_schemas: 64,
        noise_schemas: 960,
        personal_nodes: 4,
        host_nodes: 9,
        perturbation_strength: 0.9,
        seed: 42,
        ..Default::default()
    });
    let repository = sc.repository;
    println!(
        "repository: {} schemas / {} elements / {} distinct labels, threshold δ = {delta_max}\n",
        repository.len(),
        repository.total_elements(),
        repository.store().len()
    );

    // 1. The certified tier, cold: candidate generation prunes, the
    //    refine stage scores only the surviving active set (a
    //    *restricted* cost-matrix fill).
    let problem = MatchProblem::new(sc.personal, repository).expect("valid scenario");
    let registry = MappingRegistry::new();
    let matcher = CertifiedMatcher::new(
        ExhaustiveMatcher::default(),
        CandidateGenerator::new(
            ObjectiveFunction::default(),
            CandidateConfig { budget: Some(48) },
        ),
    );
    let t0 = Instant::now();
    let certified = matcher.run_certified(&problem, delta_max, &registry);
    let cert = &certified.certificate;
    println!(
        "certified run: {} answers in {:.1?} — recall ≥ {:.4}, {} of {} schemas scored, missed ≤ {:.1}",
        certified.answers.len(),
        t0.elapsed(),
        cert.certified_recall(),
        cert.active_schemas(),
        cert.total_schemas(),
        cert.missed_cap(),
    );

    // 2. A composed pipeline over the same problem: every stage gets a
    //    `pipeline.stage` span, and the certificate itself is printable
    //    with per-stage wall time and cap attribution.
    let objective = ObjectiveFunction::default;
    let pipeline = Pipeline::builder(objective())
        .candidate_filter()
        .beam_filter(16)
        .refine(ExhaustiveMatcher::new(objective()));
    let outcome = pipeline.run_certified(&problem, delta_max, &registry);
    println!("\n{}", outcome.certificate);

    // 3. The span tree: what the run actually did, where the time went.
    smx::obs::set_enabled(false);
    let spans = collector.snapshot();
    println!("span tree ({} spans):", spans.len());
    print!("{}", smx::obs::render_span_tree(&spans));

    // 4. The merged metrics snapshot: registry histograms + the store's
    //    own counters grafted in, plus the raw counter display.
    println!(
        "\nstore counters:\n{}",
        problem.repository().store().counters()
    );
    println!(
        "\nmetrics snapshot:\n{}",
        problem.repository().store().publish_metrics()
    );

    // 5. Coverage gate: the trace must show candidate generation, a
    //    *restricted* cost-matrix fill, and the refine stage.
    let mut failures = Vec::new();
    for required in ["candidates.generate", "certified.refine", "pipeline.stage"] {
        if !spans.iter().any(|s| s.name == required) {
            failures.push(format!("missing required span {required:?}"));
        }
    }
    let restricted_fill = spans.iter().any(|s| {
        s.name == "cost_matrix.build"
            && s.attrs
                .iter()
                .any(|(k, v)| *k == "restricted" && *v == AttrValue::Bool(true))
    });
    if !restricted_fill {
        failures.push(
            "no cost_matrix.build span with restricted=true (restricted fill untraced)".into(),
        );
    }
    if spans
        .iter()
        .any(|s| s.elapsed_ns == 0 && s.name == "certified.run")
    {
        failures.push("certified.run span recorded zero wall time".into());
    }
    if failures.is_empty() {
        println!(
            "\ntrace coverage: candidate generation, restricted fill, and refine all present."
        );
        ExitCode::SUCCESS
    } else {
        for failure in &failures {
            eprintln!("trace coverage failure: {failure}");
        }
        ExitCode::FAILURE
    }
}

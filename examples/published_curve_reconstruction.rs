//! §4.1's scenario: you want to improve *someone else's* published system.
//! All you have is (a) their 11-point interpolated P/R curve from the
//! paper and (b) a reconstruction of their system (same objective
//! function). Their test collection — and |H| — are unavailable.
//!
//! The technique: guess |H|, convert the interpolated curve back into a
//! measured-style curve, and compute bounds for your improvement from
//! answer-set sizes alone. This example also sweeps the |H| guess to show
//! the bounds barely move (the paper's suspicion, quantified).
//!
//! Run with: `cargo run --release --example published_curve_reconstruction`

use smx::bounds::{measured_from_interpolated, BoundsEnvelope, SizeRatio};
use smx::eval::InterpolatedCurve;
use smx::pipeline::Experiment;
use smx::synth::ScenarioConfig;

fn main() {
    // Play the role of the original authors: run S1, publish only the
    // interpolated curve.
    let exp = Experiment::generate(
        ScenarioConfig {
            derived_schemas: 25,
            noise_schemas: 12,
            personal_nodes: 5,
            host_nodes: 10,
            perturbation_strength: 0.9,
            seed: 23,
            ..Default::default()
        },
        0.25,
    );
    let s1 = exp.run_s1();
    let full_curve = exp
        .measured_curve(&s1, 16)
        .expect("non-empty truth and grid");
    let published = InterpolatedCurve::eleven_point(&full_curve);
    println!("published 11-point curve (all anyone outside the lab ever sees):");
    for &(r, p) in published.points() {
        println!("  recall {r:.1}  precision {p:.4}");
    }
    println!(
        "(true |H| = {} — unknown to the reconstructor)\n",
        exp.truth.len()
    );

    // Now the reconstructor: guess |H| and derive bounds for an improved
    // system with a measured answer-size ratio of 0.85.
    let ratio = SizeRatio::new(0.85).expect("in range");
    println!("assumed|H|  worst-case precision at each reconstructed grid point");
    for guess in [50usize, 500, 5_000, 15_000, 50_000] {
        let rebuilt = measured_from_interpolated(&published, guess).expect("reconstructible");
        let env = BoundsEnvelope::fixed_ratio(&rebuilt, ratio).expect("consistent grid");
        let series: Vec<String> = env
            .points()
            .iter()
            .map(|p| format!("{:.3}", p.incremental.worst.precision))
            .collect();
        println!("{guess:>9}  {}", series.join(" "));
    }
    println!(
        "\nthe worst-case series stabilises after the first order of magnitude: \
         a rough |H| estimate suffices, as §4.1 suspected."
    );
}

//! Use-case (3) from the paper: "assess the accuracy of an effectiveness
//! estimate acquired using other validation techniques."
//!
//! The other technique here is TREC-style pooling (Harman; [10] in the
//! paper): judge only the union of the systems' top-k answers, compute
//! P/R against the pooled judgments, and hope the bias is small. The
//! bounds tell us — analytically, for free — how far such an estimate can
//! possibly be from the truth, and the generator's full ground truth
//! shows where both actually land.
//!
//! Run with: `cargo run --release --example pooling_vs_bounds`

use smx::eval::{pool_depth_k, Counts, PrCurve};
use smx::pipeline::Experiment;
use smx::synth::ScenarioConfig;

fn main() {
    let exp = Experiment::generate(
        ScenarioConfig {
            derived_schemas: 24,
            noise_schemas: 12,
            personal_nodes: 5,
            host_nodes: 10,
            perturbation_strength: 0.9,
            seed: 5,
            ..Default::default()
        },
        0.25,
    );
    let s1 = exp.run_s1();
    let s2 = exp.run_s2_beam(40);
    let s1_curve = exp
        .measured_curve(&s1, 10)
        .expect("non-empty truth and grid");
    let grid = s1_curve.thresholds();

    // Pooled judging at depth 100: the "human" only sees the pool.
    let pooled = pool_depth_k(&[&s1, &s2], 100, &exp.truth);
    println!(
        "pool of depth 100 over two systems: {} answers judged, {} of {} correct \
         mappings discovered by the pool",
        pooled.pool_size(),
        pooled.truth().len(),
        exp.truth.len()
    );

    // The bounds need no judging at all.
    let env = exp.envelope(&s1_curve, &s2).expect("S2 ⊆ S1");

    println!("\nδ        pooled-P  actual-P  [worst, best]      pooled-R  actual-R  [worst, best]");
    for (p, env_p) in grid.iter().zip(env.points()) {
        let pooled_counts = Counts::measure(&s2, pooled.truth(), *p);
        let actual_counts = Counts::measure(&s2, &exp.truth, *p);
        println!(
            "{:.4}   {:>7.3}  {:>8.3}  [{:.3}, {:.3}]   {:>8.3}  {:>8.3}  [{:.3}, {:.3}]",
            p,
            pooled_counts.precision(),
            actual_counts.precision(),
            env_p.incremental.worst.precision,
            env_p.incremental.best.precision,
            pooled_counts.recall(pooled.truth().len().max(1)),
            actual_counts.recall(exp.truth.len()),
            env_p.incremental.worst.recall,
            env_p.incremental.best.recall,
        );
    }

    // Quantify pooling bias vs the guarantees.
    let actual = exp.curve_on_grid(&s2, &grid).expect("same grid");
    let pooled_curve = PrCurve::measure(&s2, pooled.truth(), &grid);
    match pooled_curve {
        Ok(pc) => {
            let max_bias = pc
                .points()
                .iter()
                .zip(actual.points())
                .map(|(a, b)| (a.recall - b.recall).abs())
                .fold(0.0f64, f64::max);
            println!("\nmax pooling recall bias on this scenario: {max_bias:.3}");
        }
        Err(e) => println!("\npooled truth unusable: {e}"),
    }
    println!(
        "pooling gives a point estimate with unknown bias; the bounds give a \
         guaranteed interval with zero judging effort — and the actual values \
         above confirm both."
    );
}

//! Quickstart: generate a matching scenario, run the exhaustive S1 and a
//! non-exhaustive S2, and compute guaranteed effectiveness bounds for S2
//! **without using any ground truth** — then, because the generator does
//! know the truth, verify the guarantee.
//!
//! Run with: `cargo run --release --example quickstart`

use smx::pipeline::Experiment;
use smx::synth::ScenarioConfig;

fn main() {
    // 1. A scenario: a 5-element personal schema, 20 repository schemas
    //    containing perturbed copies of it, 10 noise schemas.
    let exp = Experiment::generate(
        ScenarioConfig {
            derived_schemas: 20,
            noise_schemas: 10,
            personal_nodes: 5,
            host_nodes: 10,
            perturbation_strength: 0.8,
            seed: 7,
            ..Default::default()
        },
        0.25,
    );
    println!("personal schema: {} elements", exp.scenario.personal.len());
    println!(
        "repository: {} schemas, {} elements, |H| = {} correct mappings",
        exp.scenario.repository.len(),
        exp.scenario.repository.total_elements(),
        exp.truth.len()
    );

    // 2. Run the exhaustive S1 and measure its P/R curve (this is the
    //    "published effectiveness" a practitioner would start from).
    let s1 = exp.run_s1();
    let s1_curve = exp
        .measured_curve(&s1, 12)
        .expect("non-empty truth and grid");
    println!("\nS1 found {} mappings at δ ≤ 0.25", s1.len());

    // 3. Run a cheaper, non-exhaustive S2 (beam search, same objective).
    let s2 = exp.run_s2_beam(40);
    println!(
        "S2 (beam 40) found {} mappings — {}% of S1's work skipped",
        s2.len(),
        100 - (100 * s2.len()) / s1.len().max(1)
    );

    // 4. Bounds: computed from S1's curve + S2's answer *sizes* only.
    let env = exp.envelope(&s1_curve, &s2).expect("S2 ⊆ S1");
    println!("\nδ        Â      P∈[worst,best]    R∈[worst,best]    P_random");
    for p in env.points() {
        println!(
            "{:.4}  {:.3}  [{:.3}, {:.3}]    [{:.3}, {:.3}]    {:.3}",
            p.threshold,
            p.ratio.get(),
            p.incremental.worst.precision,
            p.incremental.best.precision,
            p.incremental.worst.recall,
            p.incremental.best.recall,
            p.random.precision,
        );
    }
    let (dp, dr) = env.max_guaranteed_loss();
    println!(
        "\nguarantee: S2 loses at most {:.1}% precision and {:.1}% recall vs S1",
        dp * 100.0,
        dr * 100.0
    );

    // 5. The generator knows H — verify the guarantee held.
    let actual = exp
        .curve_on_grid(&s2, &s1_curve.thresholds())
        .expect("same grid");
    match env.first_violation(&actual, 1e-9) {
        None => println!("verified: S2's actual P/R lies inside the bounds at every threshold."),
        Some(t) => println!("BUG: bounds violated at δ = {t}"),
    }
}

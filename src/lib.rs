#![warn(missing_docs)]

//! `smx` — umbrella crate for the ICDE 2006 "Effectiveness Bounds for
//! Non-Exhaustive Schema Matching Systems" reproduction.
//!
//! Re-exports the workspace crates under stable module names and provides
//! the [`pipeline`] glue that examples, integration tests, and the figure
//! harness share:
//!
//! * [`text`] — string similarity primitives,
//! * [`xml`] — the XML schema model,
//! * [`eval`] — retrieval evaluation (answer sets, P/R curves, pooling),
//! * [`bounds`] — the paper's contribution: effectiveness bounds,
//! * [`repo`] — schema repository and clustering,
//! * [`persist`] — snapshot + spill persistence for warm restarts,
//! * [`synth`] — synthetic scenarios with known ground truth,
//! * [`matching`] — exhaustive S1 and non-exhaustive S2 matchers,
//! * [`obs`] — structured tracing, metrics registry, and exporters,
//! * [`pipeline`] — scenario → matcher → curve → bounds wiring.
//!
//! See `examples/quickstart.rs` for an end-to-end walkthrough and
//! `ARCHITECTURE.md` at the workspace root for the crate map, the
//! data-flow from ingestion to certificate, and the rationale behind
//! the sharded score cache and generation-stamped invalidation.
//!
//! # Environment knobs
//!
//! Every `SMX_*` environment variable honoured anywhere in the
//! workspace, in one place. All are **off by default**; unset means
//! the default behaviour.
//!
//! | Variable | Read by | Effect |
//! |---|---|---|
//! | `SMX_TRACE` | `smx-obs` (`trace.rs`) | `1` installs the in-memory span collector; `json` streams checksummed JSON-lines spans to `SMX_TRACE_FILE`. Anything else (or unset) leaves tracing disabled at one relaxed atomic load per site. |
//! | `SMX_TRACE_FILE` | `smx-obs` (`trace.rs`) | Path for the JSON-lines sink when `SMX_TRACE=json`. Defaults to `smx-trace.jsonl` in the working directory. |
//! | `SMX_KERNEL_FORCE` | `smx-text` (`dispatch.rs`) | Pins the row-kernel tier: `scalar`, `swar`, or `arch`. Unset selects the best tier available at runtime. The forced-variant differential suites run under each value to prove bitwise identity. |
//! | `SMX_BENCH_GUARD` | `scripts/bench_guard.sh`, benches | `1` makes the bench harness compare fresh measurements against the committed `BENCH_matching.json` floors and fail on regression; unset runs benches without the gate. |
//! | `SMX_BENCH_JSON` | `smx-bench` (criterion shim) | Path to write machine-readable bench values; set by `scripts/bench_matching.sh`. |
//! | `SMX_BENCH_OUT` | `scripts/bench_matching.sh` | Overrides the output path for the regenerated `BENCH_matching.json`. |
//! | `SMX_BENCH_XL` | `smx-bench` (`matching.rs`) | `1` extends `s1_vs_repository_size` to XL repository sizes (10⁴–10⁵ schemas). Off by default — the XL sweep takes minutes. |
//!
//! # Observability
//!
//! The hot paths of the store, candidate generator, pipeline stages,
//! batch matcher, and persistence layer are instrumented with [`obs`]
//! spans and metrics. Tracing is off by default and costs one relaxed
//! atomic load per site; set `SMX_TRACE=1` (in-memory collector — see
//! `examples/observability.rs` for rendering the span tree) or
//! `SMX_TRACE=json` (checksummed JSON-lines sink at `$SMX_TRACE_FILE`)
//! to switch it on. The `trace_identity` suite proves enabling tracing
//! changes no matcher's answers bitwise, and the `trace_overhead`
//! bench group guards the disabled-path cost.

pub mod pipeline;

pub use smx_core as bounds;
pub use smx_eval as eval;
pub use smx_match as matching;
pub use smx_obs as obs;
pub use smx_persist as persist;
pub use smx_repo as repo;
pub use smx_synth as synth;
pub use smx_text as text;
pub use smx_xml as xml;

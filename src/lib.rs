#![warn(missing_docs)]

//! `smx` — umbrella crate for the ICDE 2006 "Effectiveness Bounds for
//! Non-Exhaustive Schema Matching Systems" reproduction.
//!
//! Re-exports the workspace crates under stable module names and provides
//! the [`pipeline`] glue that examples, integration tests, and the figure
//! harness share:
//!
//! * [`text`] — string similarity primitives,
//! * [`xml`] — the XML schema model,
//! * [`eval`] — retrieval evaluation (answer sets, P/R curves, pooling),
//! * [`bounds`] — the paper's contribution: effectiveness bounds,
//! * [`repo`] — schema repository and clustering,
//! * [`persist`] — snapshot + spill persistence for warm restarts,
//! * [`synth`] — synthetic scenarios with known ground truth,
//! * [`matching`] — exhaustive S1 and non-exhaustive S2 matchers,
//! * [`obs`] — structured tracing, metrics registry, and exporters,
//! * [`pipeline`] — scenario → matcher → curve → bounds wiring.
//!
//! See `examples/quickstart.rs` for an end-to-end walkthrough.
//!
//! # Observability
//!
//! The hot paths of the store, candidate generator, pipeline stages,
//! batch matcher, and persistence layer are instrumented with [`obs`]
//! spans and metrics. Tracing is off by default and costs one relaxed
//! atomic load per site; set `SMX_TRACE=1` (in-memory collector — see
//! `examples/observability.rs` for rendering the span tree) or
//! `SMX_TRACE=json` (checksummed JSON-lines sink at `$SMX_TRACE_FILE`)
//! to switch it on. The `trace_identity` suite proves enabling tracing
//! changes no matcher's answers bitwise, and the `trace_overhead`
//! bench group guards the disabled-path cost.

pub mod pipeline;

pub use smx_core as bounds;
pub use smx_eval as eval;
pub use smx_match as matching;
pub use smx_obs as obs;
pub use smx_persist as persist;
pub use smx_repo as repo;
pub use smx_synth as synth;
pub use smx_text as text;
pub use smx_xml as xml;

//! End-to-end experiment wiring: scenario → matchers → measured curves →
//! effectiveness bounds.
//!
//! Everything the figure harness, the examples, and the integration tests
//! share lives here, so a complete experiment is a few lines:
//!
//! ```
//! use smx::pipeline::Experiment;
//! use smx::synth::ScenarioConfig;
//!
//! let exp = Experiment::generate(ScenarioConfig {
//!     derived_schemas: 4, noise_schemas: 2, personal_nodes: 4,
//!     host_nodes: 7, ..Default::default()
//! }, 0.45);
//! let s1 = exp.run_s1();
//! let curve = exp.measured_curve(&s1, 10).unwrap();
//! assert!(curve.validate().is_ok());
//! ```

use smx_core::{BoundsEnvelope, BoundsError};
use smx_eval::{AnswerSet, EvalError, GroundTruth, PrCurve};
use smx_match::{
    BeamMatcher, ClusterMatcher, ExhaustiveMatcher, Mapping, MappingRegistry, MatchProblem,
    Matcher, ObjectiveFunction, TopKMatcher,
};
use smx_synth::{Scenario, ScenarioConfig};

/// A scenario wired to matchers with a shared registry and ground truth
/// in mapping-id space.
pub struct Experiment {
    /// The generated scenario (personal schema, repository, correct
    /// element assignments).
    pub scenario: Scenario,
    /// The matching problem built from the scenario.
    pub problem: MatchProblem,
    /// Shared mapping-id registry — S1 and every S2 intern through it.
    pub registry: MappingRegistry,
    /// `H` as answer ids: the scenario's correct mappings, interned.
    pub truth: GroundTruth,
    /// The maximum threshold δ_max the systems search up to.
    pub delta_max: f64,
}

impl Experiment {
    /// Generate a scenario and set up the experiment.
    pub fn generate(config: ScenarioConfig, delta_max: f64) -> Experiment {
        let scenario = Scenario::generate(config);
        Self::from_scenario(scenario, delta_max)
    }

    /// Wire an existing scenario.
    pub fn from_scenario(scenario: Scenario, delta_max: f64) -> Experiment {
        let problem = MatchProblem::new(scenario.personal.clone(), scenario.repository.clone())
            .expect("scenario personal schema is non-empty");
        let registry = MappingRegistry::new();
        let truth = GroundTruth::new(scenario.correct.iter().map(|cm| {
            registry.intern(Mapping {
                schema: cm.schema,
                targets: cm.targets.iter().map(|&(_, r)| r).collect(),
            })
        }));
        Experiment {
            scenario,
            problem,
            registry,
            truth,
            delta_max,
        }
    }

    /// Run the exhaustive S1.
    pub fn run_s1(&self) -> AnswerSet {
        ExhaustiveMatcher::default().run(&self.problem, self.delta_max, &self.registry)
    }

    /// Run the beam-search S2 ("S2-one" in the figures).
    pub fn run_s2_beam(&self, width: usize) -> AnswerSet {
        BeamMatcher::new(ObjectiveFunction::default(), width).run(
            &self.problem,
            self.delta_max,
            &self.registry,
        )
    }

    /// Run the cluster-restricted S2 ("S2-two" in the figures).
    pub fn run_s2_cluster(&self, threshold: f64, fragments: usize) -> AnswerSet {
        ClusterMatcher::new(ObjectiveFunction::default(), threshold, fragments).run(
            &self.problem,
            self.delta_max,
            &self.registry,
        )
    }

    /// Run the top-k S2.
    pub fn run_s2_topk(&self, k: usize) -> AnswerSet {
        TopKMatcher::new(ObjectiveFunction::default(), k).run(
            &self.problem,
            self.delta_max,
            &self.registry,
        )
    }

    /// An evenly thinned threshold grid over `answers`' distinct scores,
    /// at most `points` thresholds, always including the last score.
    pub fn grid(&self, answers: &AnswerSet, points: usize) -> Vec<f64> {
        let scores = answers.distinct_scores();
        if scores.len() <= points.max(1) {
            return scores;
        }
        let step = scores.len() as f64 / points as f64;
        let mut grid: Vec<f64> = (1..=points)
            .map(|i| scores[((i as f64 * step) as usize).min(scores.len() - 1)])
            .collect();
        grid.dedup();
        grid
    }

    /// A rank-based threshold grid: thresholds at geometrically spaced
    /// ranks of `answers`, from about `|H|/2` to the full list. This
    /// concentrates grid points where the P/R trade-off actually happens
    /// (the head of the ranking) instead of the noise tail — the region
    /// the paper's δ ∈ [0, 0.25] sweeps cover.
    pub fn rank_grid(&self, answers: &AnswerSet, points: usize) -> Vec<f64> {
        let n = answers.len();
        if n == 0 {
            return Vec::new();
        }
        let lo = (self.truth.len() / 2).clamp(2, n);
        let factor = (n as f64 / lo as f64).powf(1.0 / points.max(1) as f64);
        let mut grid: Vec<f64> = Vec::with_capacity(points + 1);
        let mut rank = lo as f64;
        for _ in 0..=points {
            let idx = (rank.round() as usize).clamp(1, n) - 1;
            grid.push(answers.answers()[idx].score);
            rank *= factor;
        }
        grid.push(answers.answers()[n - 1].score);
        grid.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
        grid.dedup();
        grid
    }

    /// Measure a P/R curve for `answers` against the experiment's truth on
    /// a thinned grid of at most `points` thresholds (taken from the
    /// answers' own scores).
    pub fn measured_curve(&self, answers: &AnswerSet, points: usize) -> Result<PrCurve, EvalError> {
        PrCurve::measure(answers, &self.truth, &self.rank_grid(answers, points))
    }

    /// Measure a P/R curve on an explicit grid.
    pub fn curve_on_grid(&self, answers: &AnswerSet, grid: &[f64]) -> Result<PrCurve, EvalError> {
        PrCurve::measure(answers, &self.truth, grid)
    }

    /// Compute the bounds envelope for an S2 run against an S1 curve — the
    /// production entry point that *never touches* `self.truth`.
    pub fn envelope(
        &self,
        s1_curve: &PrCurve,
        s2: &AnswerSet,
    ) -> Result<BoundsEnvelope, BoundsError> {
        BoundsEnvelope::from_answer_sets(s1_curve, s2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn experiment() -> Experiment {
        Experiment::generate(
            ScenarioConfig {
                derived_schemas: 4,
                noise_schemas: 2,
                personal_nodes: 4,
                host_nodes: 7,
                ..Default::default()
            },
            0.45,
        )
    }

    #[test]
    fn truth_ids_are_interned_in_shared_registry() {
        let exp = experiment();
        assert_eq!(exp.truth.len(), exp.scenario.truth_size());
        // Running S1 after interning the truth keeps ids consistent:
        let s1 = exp.run_s1();
        // any retrieved correct answer has a score.
        let retrieved_correct = exp
            .truth
            .ids()
            .filter(|&id| s1.score_of(id).is_some())
            .count();
        assert!(
            retrieved_correct > 0,
            "S1 found none of the planted mappings"
        );
    }

    #[test]
    fn grid_thinning_preserves_extent() {
        let exp = experiment();
        let s1 = exp.run_s1();
        let grid = exp.grid(&s1, 10);
        assert!(grid.len() <= 10);
        let all = s1.distinct_scores();
        assert_eq!(grid.last(), all.last());
    }

    #[test]
    fn envelope_contains_actual_s2_curve() {
        let exp = experiment();
        let s1 = exp.run_s1();
        let s1_curve = exp.measured_curve(&s1, 12).unwrap();
        for s2 in [
            exp.run_s2_beam(8),
            exp.run_s2_cluster(0.5, 3),
            exp.run_s2_topk(20),
        ] {
            let env = exp.envelope(&s1_curve, &s2).unwrap();
            let actual = exp.curve_on_grid(&s2, &s1_curve.thresholds()).unwrap();
            assert!(
                env.contains(&actual, 1e-9),
                "violation at {:?}",
                env.first_violation(&actual, 1e-9)
            );
        }
    }
}

//! Cross-crate integration tests: the full pipeline from scenario
//! generation through matching to bounds, asserting the paper's claims on
//! real (generated) workloads.

use smx::bounds::{incremental_bounds, ratio_curve_between, BoundsEnvelope, SizeRatio};
use smx::eval::{Counts, InterpolatedCurve};
use smx::matching::{BatchMatcher, BatchProblem, ExhaustiveMatcher, MatchProblem, Matcher};
use smx::pipeline::Experiment;
use smx::synth::{Domain, Scenario, ScenarioConfig};
use smx::xml::Schema;

fn experiment(seed: u64) -> Experiment {
    Experiment::generate(
        ScenarioConfig {
            derived_schemas: 10,
            noise_schemas: 6,
            personal_nodes: 4,
            host_nodes: 8,
            perturbation_strength: 0.8,
            seed,
            ..Default::default()
        },
        0.3,
    )
}

/// The central end-to-end claim: for real matchers on generated
/// scenarios, bounds computed without ground truth contain the actual
/// effectiveness of every S2 variant at every threshold.
#[test]
fn bounds_contain_actual_for_all_matchers_and_seeds() {
    for seed in [3, 17, 42] {
        let exp = experiment(seed);
        if exp.truth.is_empty() {
            continue;
        }
        let s1 = exp.run_s1();
        let s1_curve = exp
            .measured_curve(&s1, 10)
            .expect("non-empty truth and grid");
        let s2s = [
            ("beam", exp.run_s2_beam(10)),
            ("cluster", exp.run_s2_cluster(0.55, 3)),
            ("topk", exp.run_s2_topk(40)),
        ];
        for (name, s2) in &s2s {
            let env = exp.envelope(&s1_curve, s2).expect("S2 ⊆ S1");
            let actual = exp
                .curve_on_grid(s2, &s1_curve.thresholds())
                .expect("same grid");
            assert!(
                env.contains(&actual, 1e-9),
                "seed {seed} {name}: violation at {:?}",
                env.first_violation(&actual, 1e-9)
            );
        }
    }
}

/// The premise check rejects systems with a different objective function.
#[test]
fn foreign_objective_function_is_rejected() {
    let exp = experiment(5);
    let s1 = exp.run_s1();
    // Rescore some answers: not the same objective function anymore.
    let tampered =
        smx::eval::AnswerSet::new(s1.answers().iter().take(50).map(|a| (a.id, a.score * 0.5)))
            .expect("finite scores");
    let grid = exp.rank_grid(&s1, 8);
    assert!(ratio_curve_between(&tampered, &s1, &grid).is_err());
}

/// Incremental bounds are at least as tight as naive ones on real runs.
#[test]
fn incremental_tightens_naive_on_real_runs() {
    let exp = experiment(11);
    let s1 = exp.run_s1();
    let s1_curve = exp
        .measured_curve(&s1, 10)
        .expect("non-empty truth and grid");
    let s2 = exp.run_s2_cluster(0.55, 3);
    let sizes: Vec<usize> = s1_curve
        .points()
        .iter()
        .map(|p| s2.count_at(p.threshold))
        .collect();
    let bounds = incremental_bounds(&s1_curve, &sizes).expect("consistent sizes");
    let mut strictly_tighter = 0;
    for p in bounds.points() {
        assert!(p.incremental.worst.precision >= p.naive.worst.precision - 1e-12);
        assert!(p.incremental.best.precision <= p.naive.best.precision + 1e-12);
        if p.incremental.worst.precision > p.naive.worst.precision + 1e-9 {
            strictly_tighter += 1;
        }
    }
    assert!(
        strictly_tighter > 0,
        "incremental bounds never strictly improved on naive — unexpected for a \
         cluster-restricted S2"
    );
}

/// Figure-9 style sanity: a fixed-ratio envelope brackets S1's own curve
/// and collapses to it at ratio 1.
#[test]
fn fixed_ratio_envelope_brackets_s1() {
    let exp = experiment(13);
    let s1 = exp.run_s1();
    let s1_curve = exp
        .measured_curve(&s1, 10)
        .expect("non-empty truth and grid");
    let env9 = BoundsEnvelope::fixed_ratio(&s1_curve, SizeRatio::new(0.9).expect("in range"))
        .expect("consistent grid");
    for (p, orig) in env9.points().iter().zip(s1_curve.points()) {
        assert!(p.incremental.worst.precision <= orig.precision + 1e-9);
        assert!(p.incremental.best.recall <= orig.recall + 1e-9);
    }
    let env1 = BoundsEnvelope::fixed_ratio(&s1_curve, SizeRatio::ONE).expect("consistent grid");
    for (p, orig) in env1.points().iter().zip(s1_curve.points()) {
        assert!((p.incremental.worst.precision - orig.precision).abs() < 1e-9);
        assert!((p.incremental.best.recall - orig.recall).abs() < 1e-9);
    }
}

/// §4.1 roundtrip on a real curve: reconstructing the measured curve from
/// its own interpolation with the true |H| preserves counts.
#[test]
fn interpolated_reconstruction_roundtrip() {
    let exp = experiment(19);
    let s1 = exp.run_s1();
    let measured = exp
        .measured_curve(&s1, 10)
        .expect("non-empty truth and grid");
    let interp =
        InterpolatedCurve::from_points(measured.points().iter().map(|p| (p.recall, p.precision)))
            .expect("valid points");
    let rebuilt =
        smx::bounds::measured_from_interpolated(&interp, exp.truth.len()).expect("reconstructible");
    // Same |H| ⇒ counts match (the curve's recall values are exact
    // multiples of 1/|H|).
    for (orig, back) in measured.points().iter().zip(rebuilt.points()) {
        assert_eq!(orig.counts.correct, back.counts.correct);
        let err = orig.counts.answers.abs_diff(back.counts.answers);
        assert!(
            err <= 1,
            "answers {} vs {}",
            orig.counts.answers,
            back.counts.answers
        );
    }
}

/// Scenario ground truth survives the mapping-id roundtrip: interned ids
/// resolve back to the planted assignments.
#[test]
fn truth_ids_resolve_to_planted_mappings() {
    let exp = experiment(23);
    for (cm, id) in exp.scenario.correct.iter().zip(exp.truth.ids()) {
        let mapping = exp.registry.resolve(id).expect("interned");
        assert_eq!(mapping.schema, cm.schema);
        assert_eq!(
            mapping.targets,
            cm.targets.iter().map(|&(_, r)| r).collect::<Vec<_>>()
        );
    }
}

/// Different vocabulary domains all produce workable scenarios.
#[test]
fn all_domains_produce_valid_pipelines() {
    for domain in Domain::ALL {
        let exp = Experiment::generate(
            ScenarioConfig {
                domain,
                derived_schemas: 6,
                noise_schemas: 3,
                personal_nodes: 4,
                host_nodes: 7,
                perturbation_strength: 0.6,
                seed: 31,
            },
            0.3,
        );
        let s1 = exp.run_s1();
        assert!(!s1.is_empty(), "{domain:?}: S1 found nothing");
        if exp.truth.is_empty() {
            continue;
        }
        let curve = exp
            .measured_curve(&s1, 8)
            .expect("non-empty truth and grid");
        assert!(curve.validate().is_ok(), "{domain:?}");
        // Recall reaches something: at least one planted mapping retrieved.
        let last = curve.points().last().expect("non-empty curve");
        assert!(
            last.counts.correct > 0,
            "{domain:?}: nothing correct retrieved"
        );
    }
}

/// The bulk serving path: many personal schemas matched against one
/// repository through the batch subsystem — batch build → match → eval
/// metrics — with every answer set identical to a solo run and the
/// standard evaluation pipeline working unchanged on batch output.
#[test]
fn bulk_workload_batch_path_matches_solo_runs_and_evaluates() {
    let exp = experiment(42);
    let repository = exp.scenario.repository.clone();
    // The scenario's own personal schema plus same-domain strangers —
    // the overlapping-vocabulary shape a serving repository sees.
    let mut personals: Vec<Schema> = vec![exp.scenario.personal.clone()];
    for seed in [101, 202, 303, 404] {
        personals.push(
            Scenario::generate(ScenarioConfig {
                seed,
                ..exp.scenario.config
            })
            .personal,
        );
    }

    let batch = BatchProblem::new(personals.clone(), repository.clone())
        .expect("non-empty personal schemas");
    let batched = BatchMatcher::with_threads(ExhaustiveMatcher::default(), 2).run_batch(
        &batch,
        exp.delta_max,
        &exp.registry,
    );
    assert_eq!(batched.len(), personals.len());

    // Identity: each batch slot equals its solo run (shared registry ⇒
    // comparable ids).
    for (personal, got) in personals.iter().zip(&batched) {
        let problem = MatchProblem::new(personal.clone(), repository.clone()).unwrap();
        let want = ExhaustiveMatcher::default().run(&problem, exp.delta_max, &exp.registry);
        assert_eq!(got, &want);
    }
    assert_eq!(
        batched[0],
        exp.run_s1(),
        "batch slot 0 is the scenario's own S1 run"
    );

    // The batch output feeds the evaluation pipeline unchanged.
    if !exp.truth.is_empty() {
        let curve = exp
            .measured_curve(&batched[0], 10)
            .expect("non-empty truth and grid");
        assert!(curve.validate().is_ok());
        let last = curve.points().last().expect("non-empty curve");
        assert!(
            last.counts.correct > 0,
            "bulk path retrieved nothing correct"
        );
    }

    // And the shared store did its job: one sweep per distinct label
    // across the whole batch, everything else served from cache.
    let counters = repository.store().counters();
    let distinct = batch.distinct_labels().len() as u64;
    assert_eq!(counters.row_misses, distinct);
    assert!(counters.row_hits > 0);
    assert_eq!(
        counters.row_hits + counters.row_misses,
        counters.row_lookups
    );
    assert_eq!(
        counters.pair_evals,
        distinct * repository.store().len() as u64
    );
}

/// Top-N reporting and threshold slicing agree with counts (Figure 2's
/// definitions applied through two different code paths).
#[test]
fn topn_and_threshold_views_agree() {
    let exp = experiment(29);
    let s1 = exp.run_s1();
    let n = 25.min(s1.len());
    if n == 0 {
        return;
    }
    let p_at_n = smx::eval::precision_at(&s1, &exp.truth, n);
    let nth_score = s1.answers()[n - 1].score;
    let counts = Counts::measure(&s1, &exp.truth, nth_score);
    // The threshold view can include ties beyond rank n, so compare via
    // counts when sizes agree.
    if counts.answers == n {
        assert!((counts.precision() - p_at_n).abs() < 1e-12);
    }
}

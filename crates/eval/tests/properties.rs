//! Property tests for the evaluation substrate.

use proptest::prelude::*;
use smx_eval::*;

/// Random answer set: ids 0..n with random scores on a coarse grid (coarse
/// so ties actually occur).
fn answer_set(max: usize) -> impl Strategy<Value = AnswerSet> {
    proptest::collection::vec(0u32..20, 1..max).prop_map(|scores| {
        AnswerSet::new(
            scores
                .into_iter()
                .enumerate()
                .map(|(i, s)| (AnswerId(i as u64), s as f64 / 20.0)),
        )
        .expect("finite scores, unique ids")
    })
}

/// Random subset of ids 0..n as ground truth (never empty).
fn truth(max: usize) -> impl Strategy<Value = GroundTruth> {
    proptest::collection::btree_set(0u64..max as u64, 1..max)
        .prop_map(|s| GroundTruth::new(s.into_iter().map(AnswerId)))
}

proptest! {
    #[test]
    fn threshold_slices_are_monotone(answers in answer_set(40), t1 in 0.0f64..1.0, t2 in 0.0f64..1.0) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        prop_assert!(answers.count_at(lo) <= answers.count_at(hi));
        // A^lo is a prefix of A^hi.
        let a_lo = answers.at_threshold(lo);
        let a_hi = answers.at_threshold(hi);
        prop_assert_eq!(a_lo, &a_hi[..a_lo.len()]);
    }

    #[test]
    fn counts_and_metrics_agree(answers in answer_set(40), h in truth(40), t in 0.0f64..1.0) {
        let c = Counts::measure(&answers, &h, t);
        prop_assert!(c.correct <= c.answers);
        prop_assert!(c.correct <= h.len());
        let p = c.precision();
        let r = c.recall(h.len());
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((0.0..=1.0).contains(&r));
        // Hand-recompute from raw sets.
        let manual: usize = answers.at_threshold(t).iter().filter(|a| h.contains(a.id)).count();
        prop_assert_eq!(c.correct, manual);
    }

    #[test]
    fn measured_curve_validates(answers in answer_set(40), h in truth(40)) {
        let curve = PrCurve::measure_at_all_scores(&answers, &h).unwrap();
        prop_assert!(curve.validate().is_ok());
        // Recall non-decreasing along the curve.
        for w in curve.points().windows(2) {
            prop_assert!(w[0].recall <= w[1].recall + 1e-12);
        }
        // Last point sees the whole answer set.
        prop_assert_eq!(curve.points().last().unwrap().counts.answers, answers.len());
    }

    #[test]
    fn interpolated_precision_monotone_nonincreasing(answers in answer_set(40), h in truth(40)) {
        let curve = PrCurve::measure_at_all_scores(&answers, &h).unwrap();
        let interp = InterpolatedCurve::eleven_point(&curve);
        prop_assert_eq!(interp.len(), 11);
        for w in interp.points().windows(2) {
            prop_assert!(w[0].1 + 1e-12 >= w[1].1);
        }
        for &(r, p) in interp.points() {
            prop_assert!((0.0..=1.0).contains(&r));
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn filter_preserves_order_and_scores(answers in answer_set(40)) {
        let sub = answers.filter(|id| id.0 % 2 == 0);
        prop_assert!(sub.is_subset_of(&answers).is_ok());
        prop_assert!(sub.scores_consistent_with(&answers));
        // Subset at every threshold, too (same objective function).
        for t in answers.distinct_scores() {
            prop_assert!(sub.count_at(t) <= answers.count_at(t));
        }
    }

    #[test]
    fn topn_recall_monotone(answers in answer_set(40), h in truth(40)) {
        let mut prev = 0.0;
        for n in 0..=answers.len() {
            let r = recall_at(&answers, &h, n);
            prop_assert!(r + 1e-12 >= prev);
            prev = r;
        }
    }

    #[test]
    fn pooling_truth_shrinks_with_depth(answers in answer_set(40), h in truth(40), k in 0usize..40) {
        let pooled = pool_depth_k(&[&answers], k, &h);
        prop_assert!(pooled.truth().len() <= h.len());
        prop_assert!(pooled.pool_size() <= k.min(answers.len()));
        // Every judged-correct answer is in the full truth.
        for id in pooled.truth().ids() {
            prop_assert!(h.contains(id));
        }
    }
}

//! Error type for evaluation operations.

/// Errors produced while assembling or evaluating answer sets and curves.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A score was NaN or infinite (also used for duplicate ids).
    InvalidScore {
        /// The offending answer id.
        id: u64,
        /// The offending score.
        score: f64,
    },
    /// The ground truth is empty, so recall is undefined.
    EmptyTruth,
    /// A curve needs at least one threshold point.
    EmptyCurve,
    /// Curve points are not sorted by threshold.
    UnsortedCurve,
    /// An operation required `subset ⊆ superset` but an id was missing.
    NotASubset {
        /// The id present in the subset but absent from the superset.
        missing: u64,
    },
    /// Precision/recall input out of the unit interval.
    OutOfRange {
        /// Which quantity was out of range.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::InvalidScore { id, score } => {
                write!(f, "answer {id} has non-finite score {score}")
            }
            EvalError::EmptyTruth => write!(f, "ground truth is empty; recall undefined"),
            EvalError::EmptyCurve => write!(f, "curve has no points"),
            EvalError::UnsortedCurve => write!(f, "curve points not sorted by threshold"),
            EvalError::NotASubset { missing } => {
                write!(
                    f,
                    "answer {missing} of the improved system is absent from the original"
                )
            }
            EvalError::OutOfRange { what, value } => {
                write!(f, "{what} = {value} outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(EvalError::EmptyTruth
            .to_string()
            .contains("recall undefined"));
        assert!(EvalError::NotASubset { missing: 9 }
            .to_string()
            .contains('9'));
        assert!(EvalError::InvalidScore {
            id: 1,
            score: f64::NAN
        }
        .to_string()
        .contains("non-finite"));
    }
}

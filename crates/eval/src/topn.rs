//! Precision/recall at a result-list cut (top-N).
//!
//! The paper's conclusion notes that for retrieval systems the top-N is
//! "usually the most interesting" region and the one where the bounds stay
//! narrow; these helpers measure that region directly.

use crate::answer::AnswerSet;
use crate::truth::GroundTruth;
use serde::{Deserialize, Serialize};

/// Precision of the first `n` ranked answers.
pub fn precision_at(answers: &AnswerSet, truth: &GroundTruth, n: usize) -> f64 {
    let top = answers.top_n(n);
    if top.is_empty() {
        return 1.0;
    }
    let correct = top.iter().filter(|a| truth.contains(a.id)).count();
    correct as f64 / top.len() as f64
}

/// Recall of the first `n` ranked answers.
pub fn recall_at(answers: &AnswerSet, truth: &GroundTruth, n: usize) -> f64 {
    if truth.is_empty() {
        return 0.0;
    }
    let correct = answers
        .top_n(n)
        .iter()
        .filter(|a| truth.contains(a.id))
        .count();
    correct as f64 / truth.len() as f64
}

/// P@N / R@N at several cuts in one pass, for reporting tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopNReport {
    /// `(n, precision@n, recall@n)` rows, ascending in `n`.
    pub rows: Vec<(usize, f64, f64)>,
}

impl TopNReport {
    /// Evaluate at each cut in `ns` (sorted, deduped).
    pub fn evaluate(answers: &AnswerSet, truth: &GroundTruth, ns: &[usize]) -> Self {
        let mut cuts: Vec<usize> = ns.to_vec();
        cuts.sort_unstable();
        cuts.dedup();
        TopNReport {
            rows: cuts
                .into_iter()
                .map(|n| {
                    (
                        n,
                        precision_at(answers, truth, n),
                        recall_at(answers, truth, n),
                    )
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::AnswerId;

    fn fixture() -> (AnswerSet, GroundTruth) {
        let answers = AnswerSet::new((1..=6).map(|i| (AnswerId(i), i as f64))).unwrap();
        let truth = GroundTruth::new([1, 3, 6].map(AnswerId));
        (answers, truth)
    }

    #[test]
    fn precision_and_recall_at_cuts() {
        let (a, h) = fixture();
        assert_eq!(precision_at(&a, &h, 1), 1.0);
        assert!((precision_at(&a, &h, 3) - 2.0 / 3.0).abs() < 1e-12);
        assert!((recall_at(&a, &h, 3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(recall_at(&a, &h, 6), 1.0);
    }

    #[test]
    fn cut_beyond_list_is_total() {
        let (a, h) = fixture();
        assert_eq!(precision_at(&a, &h, 100), 0.5);
        assert_eq!(recall_at(&a, &h, 100), 1.0);
    }

    #[test]
    fn degenerate_cuts() {
        let (a, h) = fixture();
        assert_eq!(precision_at(&a, &h, 0), 1.0);
        assert_eq!(recall_at(&a, &h, 0), 0.0);
        assert_eq!(recall_at(&a, &GroundTruth::default(), 3), 0.0);
    }

    #[test]
    fn report_rows_sorted() {
        let (a, h) = fixture();
        let rep = TopNReport::evaluate(&a, &h, &[5, 1, 3, 3]);
        let ns: Vec<usize> = rep.rows.iter().map(|r| r.0).collect();
        assert_eq!(ns, vec![1, 3, 5]);
    }

    #[test]
    fn recall_monotone_in_n() {
        let (a, h) = fixture();
        let rep = TopNReport::evaluate(&a, &h, &[1, 2, 3, 4, 5, 6]);
        for w in rep.rows.windows(2) {
            assert!(w[0].2 <= w[1].2);
        }
    }
}

//! Scored answer sets.
//!
//! An [`AnswerSet`] holds the output of one matching-system run: answers
//! with their objective-function score Δ(a), kept sorted ascending (better
//! answers first). `A_S^δ` slicing, subset checks, and the extraction of
//! natural threshold grids all live here.

use crate::error::EvalError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Opaque identity of an answer (a schema mapping, a document, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AnswerId(pub u64);

impl std::fmt::Display for AnswerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// An answer with its objective score; **lower is better** (Δ measures
/// difference).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoredAnswer {
    /// Answer identity.
    pub id: AnswerId,
    /// Objective-function value Δ(a); finite, lower ranks higher.
    pub score: f64,
}

/// A system's ranked output: answers sorted by `(score, id)` ascending.
///
/// Sorting by id second makes runs deterministic under score ties, which
/// the paper explicitly allows ("we do not exclude a situation where
/// Δ(a1) = Δ(a2)").
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AnswerSet {
    answers: Vec<ScoredAnswer>,
}

impl AnswerSet {
    /// Build from unsorted `(id, score)` pairs. Rejects non-finite scores
    /// and duplicate ids.
    pub fn new(pairs: impl IntoIterator<Item = (AnswerId, f64)>) -> Result<Self, EvalError> {
        let mut answers: Vec<ScoredAnswer> = pairs
            .into_iter()
            .map(|(id, score)| ScoredAnswer { id, score })
            .collect();
        for a in &answers {
            if !a.score.is_finite() {
                return Err(EvalError::InvalidScore {
                    id: a.id.0,
                    score: a.score,
                });
            }
        }
        answers.sort_by(|x, y| {
            x.score
                .partial_cmp(&y.score)
                .expect("scores are finite")
                .then(x.id.cmp(&y.id))
        });
        for w in answers.windows(2) {
            if w[0].id == w[1].id {
                return Err(EvalError::InvalidScore {
                    id: w[0].id.0,
                    score: f64::NAN,
                });
            }
        }
        // Re-check duplicates across different scores too.
        let mut ids: Vec<AnswerId> = answers.iter().map(|a| a.id).collect();
        ids.sort();
        for w in ids.windows(2) {
            if w[0] == w[1] {
                return Err(EvalError::InvalidScore {
                    id: w[0].0,
                    score: f64::NAN,
                });
            }
        }
        Ok(AnswerSet { answers })
    }

    /// The empty answer set.
    pub fn empty() -> Self {
        AnswerSet::default()
    }

    /// Number of answers (at threshold ∞).
    pub fn len(&self) -> usize {
        self.answers.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.answers.is_empty()
    }

    /// All answers, best (lowest score) first.
    pub fn answers(&self) -> &[ScoredAnswer] {
        &self.answers
    }

    /// Iterate over ids, best first.
    pub fn ids(&self) -> impl Iterator<Item = AnswerId> + '_ {
        self.answers.iter().map(|a| a.id)
    }

    /// The score of `id`, if present.
    pub fn score_of(&self, id: AnswerId) -> Option<f64> {
        self.answers.iter().find(|a| a.id == id).map(|a| a.score)
    }

    /// The slice `A^δ`: all answers with score ≤ `threshold`.
    pub fn at_threshold(&self, threshold: f64) -> &[ScoredAnswer] {
        let end = self.answers.partition_point(|a| a.score <= threshold);
        &self.answers[..end]
    }

    /// `|A^δ|`.
    pub fn count_at(&self, threshold: f64) -> usize {
        self.at_threshold(threshold).len()
    }

    /// The first `n` answers (top-N by rank).
    pub fn top_n(&self, n: usize) -> &[ScoredAnswer] {
        &self.answers[..n.min(self.answers.len())]
    }

    /// Distinct score values in ascending order — the natural threshold
    /// grid of this run (each distinct score starts a new increment).
    pub fn distinct_scores(&self) -> Vec<f64> {
        let mut out: Vec<f64> = Vec::new();
        for a in &self.answers {
            if out.last().is_none_or(|&last| a.score > last) {
                out.push(a.score);
            }
        }
        out
    }

    /// Check `self ⊆ other` as id sets (any threshold): every answer of
    /// `self` must appear in `other`.
    pub fn is_subset_of(&self, other: &AnswerSet) -> Result<(), EvalError> {
        let other_ids: std::collections::HashSet<AnswerId> = other.ids().collect();
        for a in &self.answers {
            if !other_ids.contains(&a.id) {
                return Err(EvalError::NotASubset { missing: a.id.0 });
            }
        }
        Ok(())
    }

    /// Check that shared ids carry identical scores — the paper's "same
    /// objective function" requirement that makes `A_S2^δ ⊆ A_S1^δ` hold
    /// at *every* δ, not just overall.
    pub fn scores_consistent_with(&self, other: &AnswerSet) -> bool {
        let other_scores: HashMap<AnswerId, f64> =
            other.answers.iter().map(|a| (a.id, a.score)).collect();
        self.answers
            .iter()
            .all(|a| other_scores.get(&a.id).is_none_or(|&s| s == a.score))
    }

    /// Restrict to the ids accepted by `keep` (retains scores and order) —
    /// used to model non-exhaustive systems as selections from S1's run.
    pub fn filter(&self, mut keep: impl FnMut(AnswerId) -> bool) -> AnswerSet {
        AnswerSet {
            answers: self
                .answers
                .iter()
                .copied()
                .filter(|a| keep(a.id))
                .collect(),
        }
    }
}

impl FromIterator<ScoredAnswer> for AnswerSet {
    /// Collect scored answers; panics on non-finite scores (use
    /// [`AnswerSet::new`] for fallible construction).
    fn from_iter<T: IntoIterator<Item = ScoredAnswer>>(iter: T) -> Self {
        AnswerSet::new(iter.into_iter().map(|a| (a.id, a.score)))
            .expect("finite scores and unique ids")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(pairs: &[(u64, f64)]) -> AnswerSet {
        AnswerSet::new(pairs.iter().map(|&(id, s)| (AnswerId(id), s))).unwrap()
    }

    #[test]
    fn sorted_by_score_then_id() {
        let s = set(&[(3, 0.2), (1, 0.1), (2, 0.2)]);
        let ids: Vec<u64> = s.ids().map(|i| i.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(AnswerSet::new([(AnswerId(1), f64::NAN)]).is_err());
        assert!(AnswerSet::new([(AnswerId(1), f64::INFINITY)]).is_err());
        assert!(AnswerSet::new([(AnswerId(1), 0.1), (AnswerId(1), 0.2)]).is_err());
    }

    #[test]
    fn threshold_slicing_is_inclusive() {
        let s = set(&[(1, 0.1), (2, 0.2), (3, 0.3)]);
        assert_eq!(s.count_at(0.0), 0);
        assert_eq!(s.count_at(0.1), 1);
        assert_eq!(s.count_at(0.2), 2);
        assert_eq!(s.count_at(0.25), 2);
        assert_eq!(s.count_at(1.0), 3);
        // Monotone: increasing δ never removes answers (Figure 1).
        assert!(s.count_at(0.1) <= s.count_at(0.2));
    }

    #[test]
    fn ties_included_together() {
        let s = set(&[(1, 0.5), (2, 0.5), (3, 0.5)]);
        assert_eq!(s.count_at(0.5), 3);
        assert_eq!(s.count_at(0.49), 0);
        assert_eq!(s.distinct_scores(), vec![0.5]);
    }

    #[test]
    fn top_n_clamps() {
        let s = set(&[(1, 0.1), (2, 0.2)]);
        assert_eq!(s.top_n(1).len(), 1);
        assert_eq!(s.top_n(10).len(), 2);
        assert_eq!(s.top_n(0).len(), 0);
    }

    #[test]
    fn distinct_scores_ascending() {
        let s = set(&[(1, 0.3), (2, 0.1), (3, 0.3), (4, 0.2)]);
        assert_eq!(s.distinct_scores(), vec![0.1, 0.2, 0.3]);
    }

    #[test]
    fn subset_and_consistency() {
        let s1 = set(&[(1, 0.1), (2, 0.2), (3, 0.3)]);
        let s2 = s1.filter(|id| id.0 != 2);
        assert!(s2.is_subset_of(&s1).is_ok());
        assert!(s2.scores_consistent_with(&s1));
        assert_eq!(
            s1.is_subset_of(&s2),
            Err(EvalError::NotASubset { missing: 2 })
        );
        let shifted = set(&[(1, 0.9)]);
        assert!(!shifted.scores_consistent_with(&s1));
    }

    #[test]
    fn score_lookup() {
        let s = set(&[(7, 0.25)]);
        assert_eq!(s.score_of(AnswerId(7)), Some(0.25));
        assert_eq!(s.score_of(AnswerId(8)), None);
    }
}

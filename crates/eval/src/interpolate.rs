//! Interpolated P/R curves (Figure 6 of the paper).
//!
//! The standard IR convention: at each of the 11 recall levels
//! `0, 0.1, …, 1`, interpolated precision is the *maximum* precision at any
//! measured point with recall ≥ that level. The paper's §4.1 shows such a
//! published curve can still feed the bounds technique once `|H|` is
//! guessed; [`InterpolatedCurve`] is the input type for that path.

use crate::curve::PrCurve;
use crate::error::EvalError;
use serde::{Deserialize, Serialize};

/// The 11 standard recall levels `0.0, 0.1, …, 1.0`.
pub const STANDARD_RECALL_LEVELS: [f64; 11] =
    [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// An interpolated P/R curve: `(recall_level, precision)` pairs, ascending
/// in recall. Unlike a measured curve it carries **no thresholds and no
/// |H|** — exactly the information loss §4.1 is about.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterpolatedCurve {
    points: Vec<(f64, f64)>,
}

impl InterpolatedCurve {
    /// Interpolate `measured` at the 11 standard recall levels.
    pub fn eleven_point(measured: &PrCurve) -> Self {
        Self::at_levels(measured, &STANDARD_RECALL_LEVELS)
    }

    /// Interpolate `measured` at arbitrary recall levels using the max
    /// convention: `P_interp(r) = max { P(p) | R(p) ≥ r }`, and `0` when no
    /// measured point reaches `r`.
    pub fn at_levels(measured: &PrCurve, levels: &[f64]) -> Self {
        let mut points: Vec<(f64, f64)> = levels
            .iter()
            .map(|&r| {
                let p = measured
                    .points()
                    .iter()
                    .filter(|pt| pt.recall >= r - 1e-12)
                    .map(|pt| pt.precision)
                    .fold(0.0_f64, f64::max);
                (r, p)
            })
            .collect();
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite recall levels"));
        InterpolatedCurve { points }
    }

    /// Build directly from `(recall, precision)` pairs (e.g. read off a
    /// published plot). Pairs are sorted by recall; values validated into
    /// `[0, 1]`.
    pub fn from_points(pairs: impl IntoIterator<Item = (f64, f64)>) -> Result<Self, EvalError> {
        let mut points: Vec<(f64, f64)> = pairs.into_iter().collect();
        if points.is_empty() {
            return Err(EvalError::EmptyCurve);
        }
        for &(r, p) in &points {
            if !(0.0..=1.0).contains(&r) {
                return Err(EvalError::OutOfRange {
                    what: "recall",
                    value: r,
                });
            }
            if !(0.0..=1.0).contains(&p) {
                return Err(EvalError::OutOfRange {
                    what: "precision",
                    value: p,
                });
            }
        }
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        Ok(InterpolatedCurve { points })
    }

    /// The `(recall, precision)` pairs, ascending in recall.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the curve is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Interpolated precision at recall `r`: the stored value at the first
    /// level ≥ `r` when the max convention was used; linear interpolation
    /// between surrounding points otherwise.
    pub fn precision_at(&self, r: f64) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        if r <= self.points[0].0 {
            return self.points[0].1;
        }
        for w in self.points.windows(2) {
            let ((r0, p0), (r1, p1)) = (w[0], w[1]);
            if r <= r1 {
                if (r1 - r0).abs() < 1e-15 {
                    return p1;
                }
                let t = (r - r0) / (r1 - r0);
                return p0 + t * (p1 - p0);
            }
        }
        self.points.last().expect("non-empty").1
    }

    /// Mean of the stored precisions — the classic "11-point average".
    pub fn mean_average_precision(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, p)| p).sum::<f64>() / self.points.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::{AnswerId, AnswerSet};
    use crate::truth::GroundTruth;

    fn measured() -> PrCurve {
        // 10 answers, correct = {1,2,5,9}; truth size 4.
        let answers = AnswerSet::new((1..=10).map(|i| (AnswerId(i), i as f64 / 10.0))).unwrap();
        let truth = GroundTruth::new([1, 2, 5, 9].map(AnswerId));
        PrCurve::measure_at_all_scores(&answers, &truth).unwrap()
    }

    #[test]
    fn eleven_point_interpolation_is_max_to_the_right() {
        let curve = InterpolatedCurve::eleven_point(&measured());
        assert_eq!(curve.len(), 11);
        // Monotone non-increasing precision across recall levels.
        for w in curve.points().windows(2) {
            assert!(w[0].1 >= w[1].1, "interpolated precision must not increase");
        }
        // At recall 0 the best precision anywhere applies (1.0 at δ=0.1..0.2).
        assert_eq!(curve.points()[0], (0.0, 1.0));
        // At recall 1.0 all 4 correct among 9 or 10 answers: max is 4/9.
        let last = curve.points().last().unwrap();
        assert!((last.1 - 4.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn interpolated_precision_never_below_measured_at_same_recall() {
        let m = measured();
        let i = InterpolatedCurve::eleven_point(&m);
        for p in m.points() {
            // At each measured recall, find the nearest level below.
            let level = (p.recall * 10.0).floor() / 10.0;
            assert!(
                i.precision_at(level) + 1e-12 >= p.precision,
                "level {level}: {} < {}",
                i.precision_at(level),
                p.precision
            );
        }
    }

    #[test]
    fn from_points_validation() {
        assert!(InterpolatedCurve::from_points([]).is_err());
        assert!(InterpolatedCurve::from_points([(1.5, 0.5)]).is_err());
        assert!(InterpolatedCurve::from_points([(0.5, -0.1)]).is_err());
        let c = InterpolatedCurve::from_points([(0.5, 0.6), (0.0, 1.0)]).unwrap();
        assert_eq!(c.points()[0].0, 0.0); // sorted
    }

    #[test]
    fn precision_at_linear_between_points() {
        let c = InterpolatedCurve::from_points([(0.0, 1.0), (1.0, 0.0)]).unwrap();
        assert!((c.precision_at(0.5) - 0.5).abs() < 1e-12);
        assert_eq!(c.precision_at(0.0), 1.0);
        assert_eq!(c.precision_at(1.0), 0.0);
        // Clamped outside.
        assert_eq!(c.precision_at(-0.5), 1.0);
        assert_eq!(c.precision_at(2.0), 0.0);
    }

    #[test]
    fn map_is_mean() {
        let c = InterpolatedCurve::from_points([(0.0, 1.0), (0.5, 0.5), (1.0, 0.0)]).unwrap();
        assert!((c.mean_average_precision() - 0.5).abs() < 1e-12);
    }
}

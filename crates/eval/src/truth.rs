//! Ground truth `H`: the set of correct answers for one matching problem.

use crate::answer::{AnswerId, AnswerSet};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The human-judged (or generator-known) set of correct answers.
///
/// The paper's central premise is that `H` is *unavailable* on large
/// collections; in this reproduction `H` comes from the synthetic-scenario
/// generator and is used (a) to measure S1's P/R curve on the small
/// collection and (b) to *verify* that the bounds computed without `H`
/// really contain the actual values.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    correct: BTreeSet<AnswerId>,
}

impl GroundTruth {
    /// Ground truth from a collection of correct ids.
    pub fn new(ids: impl IntoIterator<Item = AnswerId>) -> Self {
        GroundTruth {
            correct: ids.into_iter().collect(),
        }
    }

    /// `|H|`.
    pub fn len(&self) -> usize {
        self.correct.len()
    }

    /// Whether `H` is empty.
    pub fn is_empty(&self) -> bool {
        self.correct.is_empty()
    }

    /// Whether `id` is a correct answer.
    pub fn contains(&self, id: AnswerId) -> bool {
        self.correct.contains(&id)
    }

    /// Iterate over the correct ids in ascending order.
    pub fn ids(&self) -> impl Iterator<Item = AnswerId> + '_ {
        self.correct.iter().copied()
    }

    /// `|T^δ| = |H ∩ A^δ|`: correct answers among `answers` at `threshold`.
    pub fn true_positives_at(&self, answers: &AnswerSet, threshold: f64) -> usize {
        answers
            .at_threshold(threshold)
            .iter()
            .filter(|a| self.contains(a.id))
            .count()
    }

    /// Restrict the truth to ids satisfying `keep` (used by pooling).
    pub fn filter(&self, mut keep: impl FnMut(AnswerId) -> bool) -> GroundTruth {
        GroundTruth {
            correct: self
                .correct
                .iter()
                .copied()
                .filter(|&id| keep(id))
                .collect(),
        }
    }

    /// Union of two truths.
    pub fn union(&self, other: &GroundTruth) -> GroundTruth {
        GroundTruth {
            correct: self.correct.union(&other.correct).copied().collect(),
        }
    }
}

impl FromIterator<AnswerId> for GroundTruth {
    fn from_iter<T: IntoIterator<Item = AnswerId>>(iter: T) -> Self {
        GroundTruth::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u64]) -> impl Iterator<Item = AnswerId> + '_ {
        v.iter().map(|&i| AnswerId(i))
    }

    #[test]
    fn membership_and_len() {
        let h = GroundTruth::new(ids(&[1, 2, 2, 3]));
        assert_eq!(h.len(), 3);
        assert!(h.contains(AnswerId(2)));
        assert!(!h.contains(AnswerId(4)));
        assert!(!h.is_empty());
        assert!(GroundTruth::default().is_empty());
    }

    #[test]
    fn true_positives_at_threshold() {
        let answers = AnswerSet::new([
            (AnswerId(1), 0.1),
            (AnswerId(2), 0.2),
            (AnswerId(3), 0.3),
            (AnswerId(4), 0.4),
        ])
        .unwrap();
        let h = GroundTruth::new(ids(&[2, 4, 9]));
        assert_eq!(h.true_positives_at(&answers, 0.05), 0);
        assert_eq!(h.true_positives_at(&answers, 0.2), 1);
        assert_eq!(h.true_positives_at(&answers, 0.4), 2);
        // id 9 is correct but never retrieved — affects recall only.
    }

    #[test]
    fn filter_and_union() {
        let a = GroundTruth::new(ids(&[1, 2, 3]));
        let b = GroundTruth::new(ids(&[3, 4]));
        assert_eq!(a.union(&b).len(), 4);
        assert_eq!(a.filter(|id| id.0 > 1).len(), 2);
    }
}

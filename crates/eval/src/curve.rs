//! Measured P/R curves (Figure 5 of the paper).
//!
//! A measured curve is obtained by sweeping the threshold δ over a grid
//! (often the answer set's own distinct scores) and recording `(δ, |A^δ|,
//! |T^δ|, P^δ, R^δ)` at each point. Because `A^δ1 ⊆ A^δ2` for `δ1 ≤ δ2`,
//! answer and correct counts are non-decreasing along the curve — an
//! invariant [`PrCurve::validate`] checks.

use crate::answer::AnswerSet;
use crate::error::EvalError;
use crate::metrics::Counts;
use crate::truth::GroundTruth;
use serde::{Deserialize, Serialize};

/// One point of a measured P/R curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrPoint {
    /// The threshold δ at which the measurement was taken.
    pub threshold: f64,
    /// `(|A^δ|, |T^δ|)`.
    pub counts: Counts,
    /// Precision `|T^δ|/|A^δ|`.
    pub precision: f64,
    /// Recall `|T^δ|/|H|`.
    pub recall: f64,
}

/// A measured P/R curve: points sorted by ascending threshold, plus `|H|`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrCurve {
    truth_size: usize,
    points: Vec<PrPoint>,
}

impl PrCurve {
    /// Measure a curve for `answers` against `truth` at the given
    /// thresholds (sorted ascending automatically; duplicates removed).
    pub fn measure(
        answers: &AnswerSet,
        truth: &GroundTruth,
        thresholds: &[f64],
    ) -> Result<Self, EvalError> {
        if truth.is_empty() {
            return Err(EvalError::EmptyTruth);
        }
        let mut grid: Vec<f64> = thresholds
            .iter()
            .copied()
            .filter(|t| t.is_finite())
            .collect();
        grid.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        grid.dedup();
        if grid.is_empty() {
            return Err(EvalError::EmptyCurve);
        }
        let points = grid
            .into_iter()
            .map(|threshold| {
                let counts = Counts::measure(answers, truth, threshold);
                PrPoint {
                    threshold,
                    counts,
                    precision: counts.precision(),
                    recall: counts.recall(truth.len()),
                }
            })
            .collect();
        Ok(PrCurve {
            truth_size: truth.len(),
            points,
        })
    }

    /// Measure a curve at every distinct score of `answers` — the finest
    /// grid this run supports.
    pub fn measure_at_all_scores(
        answers: &AnswerSet,
        truth: &GroundTruth,
    ) -> Result<Self, EvalError> {
        PrCurve::measure(answers, truth, &answers.distinct_scores())
    }

    /// Build a curve from pre-computed counts (e.g. published tables).
    /// `counts` must be sorted by threshold with non-decreasing sizes.
    pub fn from_counts(
        truth_size: usize,
        counts: impl IntoIterator<Item = (f64, Counts)>,
    ) -> Result<Self, EvalError> {
        if truth_size == 0 {
            return Err(EvalError::EmptyTruth);
        }
        let points: Vec<PrPoint> = counts
            .into_iter()
            .map(|(threshold, c)| PrPoint {
                threshold,
                counts: c,
                precision: c.precision(),
                recall: c.recall(truth_size),
            })
            .collect();
        let curve = PrCurve { truth_size, points };
        curve.validate()?;
        Ok(curve)
    }

    /// `|H|` used for recall.
    pub fn truth_size(&self) -> usize {
        self.truth_size
    }

    /// The curve's points, ascending in threshold.
    pub fn points(&self) -> &[PrPoint] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the curve has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The point measured at exactly `threshold`, if any.
    pub fn point_at(&self, threshold: f64) -> Option<&PrPoint> {
        self.points.iter().find(|p| p.threshold == threshold)
    }

    /// The thresholds of the grid.
    pub fn thresholds(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.threshold).collect()
    }

    /// Validate curve invariants: non-empty, sorted thresholds, counts
    /// consistent with P/R, non-decreasing answer/correct counts, P/R in
    /// `[0, 1]`.
    pub fn validate(&self) -> Result<(), EvalError> {
        if self.points.is_empty() {
            return Err(EvalError::EmptyCurve);
        }
        for w in self.points.windows(2) {
            if w[0].threshold >= w[1].threshold {
                return Err(EvalError::UnsortedCurve);
            }
            if w[1].counts.answers < w[0].counts.answers
                || w[1].counts.correct < w[0].counts.correct
            {
                return Err(EvalError::UnsortedCurve);
            }
        }
        for p in &self.points {
            if !(0.0..=1.0).contains(&p.precision) {
                return Err(EvalError::OutOfRange {
                    what: "precision",
                    value: p.precision,
                });
            }
            if !(0.0..=1.0).contains(&p.recall) {
                return Err(EvalError::OutOfRange {
                    what: "recall",
                    value: p.recall,
                });
            }
            if p.counts.correct > p.counts.answers {
                return Err(EvalError::OutOfRange {
                    what: "correct>answers",
                    value: p.counts.correct as f64,
                });
            }
            if p.counts.correct > self.truth_size {
                return Err(EvalError::OutOfRange {
                    what: "correct>|H|",
                    value: p.counts.correct as f64,
                });
            }
        }
        Ok(())
    }

    /// Render the curve as `(recall, precision)` pairs for plotting.
    pub fn recall_precision_series(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|p| (p.recall, p.precision))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::AnswerId;

    fn fixture() -> (AnswerSet, GroundTruth) {
        // Scores 0.1..=0.8; correct ids: 1, 3, 4, 8 and one never-retrieved.
        let answers = AnswerSet::new((1..=8).map(|i| (AnswerId(i), i as f64 / 10.0))).unwrap();
        let truth = GroundTruth::new([1, 3, 4, 8, 99].map(AnswerId));
        (answers, truth)
    }

    #[test]
    fn measured_curve_points() {
        let (answers, truth) = fixture();
        let curve = PrCurve::measure(&answers, &truth, &[0.2, 0.4, 0.8]).unwrap();
        assert_eq!(curve.len(), 3);
        let p = curve.point_at(0.4).unwrap();
        assert_eq!(p.counts, Counts::new(4, 3));
        assert!((p.precision - 0.75).abs() < 1e-12);
        assert!((p.recall - 0.6).abs() < 1e-12);
        assert!(curve.validate().is_ok());
    }

    #[test]
    fn grid_is_sorted_and_deduped() {
        let (answers, truth) = fixture();
        let curve = PrCurve::measure(&answers, &truth, &[0.4, 0.2, 0.4, f64::NAN]).unwrap();
        assert_eq!(curve.thresholds(), vec![0.2, 0.4]);
    }

    #[test]
    fn all_scores_grid() {
        let (answers, truth) = fixture();
        let curve = PrCurve::measure_at_all_scores(&answers, &truth).unwrap();
        assert_eq!(curve.len(), 8);
        // Final point retrieves everything retrievable.
        let last = curve.points().last().unwrap();
        assert_eq!(last.counts, Counts::new(8, 4));
        assert!((last.recall - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_truth_and_grid_rejected() {
        let (answers, _) = fixture();
        assert_eq!(
            PrCurve::measure(&answers, &GroundTruth::default(), &[0.1]),
            Err(EvalError::EmptyTruth)
        );
        let truth = GroundTruth::new([AnswerId(1)]);
        assert_eq!(
            PrCurve::measure(&answers, &truth, &[]),
            Err(EvalError::EmptyCurve)
        );
    }

    #[test]
    fn from_counts_validates() {
        let ok = PrCurve::from_counts(8, [(0.1, Counts::new(40, 15)), (0.2, Counts::new(72, 27))]);
        assert!(ok.is_err()); // correct 15 > |H| 8
        let ok = PrCurve::from_counts(
            100,
            [(0.1, Counts::new(40, 15)), (0.2, Counts::new(72, 27))],
        )
        .unwrap();
        assert!((ok.points()[0].precision - 0.375).abs() < 1e-12);
        // Decreasing counts rejected.
        let bad = PrCurve::from_counts(
            100,
            [(0.1, Counts::new(40, 15)), (0.2, Counts::new(30, 15))],
        );
        assert_eq!(bad, Err(EvalError::UnsortedCurve));
    }

    #[test]
    fn series_for_plotting() {
        let (answers, truth) = fixture();
        let curve = PrCurve::measure(&answers, &truth, &[0.2, 0.8]).unwrap();
        let series = curve.recall_precision_series();
        assert_eq!(series.len(), 2);
        assert!(series[0].0 <= series[1].0);
    }
}

//! Certified recall / speed trade-off reporting.
//!
//! A non-exhaustive tier is only worth deploying if the speedup it buys
//! is paid for honestly — with a *certified* recall bound that never
//! overstates what the run actually kept. This module records the
//! trade-off points a certified run produces (one per repository size,
//! budget, or threshold swept) and checks the two properties the
//! methodology demands:
//!
//! * **admissibility** — every point's certified recall is at most its
//!   measured recall against the exhaustive oracle (the bound is a true
//!   lower bound, never optimistic), and
//! * **the headline** — a joint floor on speedup and certified recall,
//!   e.g. "≥ 5× at certified recall ≥ 0.95".
//!
//! For staged (pipeline) runs, [`FactorBreakdown`] attributes the
//! composed bound to the stages that paid for it: each stage that
//! charges answer caps contributes a telescoping factor, and the
//! product of all factors reproduces the end-to-end certified recall.

use serde::{Deserialize, Serialize};

/// One certified run compared against its exhaustive oracle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CertifiedPoint {
    /// What produced this point, e.g. `"n=1024"` or `"budget=16"`.
    pub label: String,
    /// Exhaustive wall-clock divided by certified wall-clock (> 1 means
    /// the tier is faster).
    pub speedup: f64,
    /// The analytic recall lower bound the run's certificate claims.
    pub certified_recall: f64,
    /// Recall actually measured against the exhaustive oracle's answers.
    pub measured_recall: f64,
}

impl CertifiedPoint {
    /// `certified ≤ measured + eps`: the certificate never overstates
    /// what the run kept.
    pub fn is_admissible(&self, eps: f64) -> bool {
        self.certified_recall <= self.measured_recall + eps
    }
}

/// A swept collection of [`CertifiedPoint`]s.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CertifiedTradeoff {
    points: Vec<CertifiedPoint>,
}

impl CertifiedTradeoff {
    /// Empty trade-off record.
    pub fn new() -> Self {
        CertifiedTradeoff::default()
    }

    /// Append one run's point.
    pub fn push(&mut self, point: CertifiedPoint) {
        self.points.push(point);
    }

    /// The recorded points, in insertion order.
    pub fn points(&self) -> &[CertifiedPoint] {
        &self.points
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Every point's certificate is admissible within `eps`.
    pub fn is_admissible(&self, eps: f64) -> bool {
        self.points.iter().all(|p| p.is_admissible(eps))
    }

    /// The weakest certified recall across the sweep, `None` when empty.
    pub fn min_certified_recall(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.certified_recall)
            .min_by(|a, b| a.partial_cmp(b).expect("finite recall"))
    }

    /// The smallest speedup across the sweep, `None` when empty.
    pub fn min_speedup(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.speedup)
            .min_by(|a, b| a.partial_cmp(b).expect("finite speedup"))
    }

    /// The headline check: non-empty, and every point clears both
    /// floors simultaneously.
    pub fn meets(&self, min_speedup: f64, min_recall: f64) -> bool {
        !self.points.is_empty()
            && self
                .points
                .iter()
                .all(|p| p.speedup >= min_speedup && p.certified_recall >= min_recall)
    }
}

/// One pipeline stage's contribution to a composed recall certificate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageFactor {
    /// The stage's display name, e.g. `"truncate(8)"`.
    pub stage: String,
    /// Answer caps this stage charged (admissible upper bound on the
    /// oracle answers its pruning may have lost).
    pub caps_added: f64,
    /// The stage's telescoping recall factor: with `a` final answers
    /// and `C_i` the caps charged at stage `i`,
    /// `f_i = (a + Σ_{j>i} C_j) / (a + Σ_{j≥i} C_j)`. Stages that
    /// charge nothing contribute exactly `1.0`.
    pub factor: f64,
    /// Wall time the stage took, in nanoseconds; `0` when the producer
    /// did not time its stages (e.g. [`FactorBreakdown::new`]).
    pub wall_ns: u64,
    /// Active schemas entering the stage; `0` when untracked.
    pub active_in: usize,
    /// Active schemas leaving the stage; `0` when untracked.
    pub active_out: usize,
}

/// One stage's raw observations, as handed to
/// [`FactorBreakdown::with_stages`]: the caps it charged plus the
/// cost/selectivity facts (wall time, active-set delta) an adaptive
/// pipeline needs per operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageInput {
    /// The stage's display name, e.g. `"truncate(8)"`.
    pub stage: String,
    /// Answer caps this stage charged.
    pub caps_added: f64,
    /// Wall time the stage took, in nanoseconds.
    pub wall_ns: u64,
    /// Active schemas entering the stage.
    pub active_in: usize,
    /// Active schemas leaving the stage.
    pub active_out: usize,
}

/// Per-stage attribution of a composed certified-recall bound.
///
/// Built from the final answer count and the caps each stage charged,
/// in stage order. The factors telescope, so their product collapses to
/// `a / (a + Σ C_i)` — the composed certificate — while each factor in
/// isolation shows which stage's pruning cost how much of the bound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FactorBreakdown {
    answer_count: usize,
    stages: Vec<StageFactor>,
}

impl FactorBreakdown {
    /// Build from the final answer count and `(stage name, caps
    /// charged)` pairs in stage order. Wall times and active-set
    /// deltas are left at zero; producers that track them use
    /// [`with_stages`](Self::with_stages).
    pub fn new(answer_count: usize, charged: Vec<(String, f64)>) -> Self {
        Self::with_stages(
            answer_count,
            charged
                .into_iter()
                .map(|(stage, caps_added)| StageInput {
                    stage,
                    caps_added,
                    wall_ns: 0,
                    active_in: 0,
                    active_out: 0,
                })
                .collect(),
        )
    }

    /// Build from the final answer count and each stage's full
    /// observations (caps, wall time, active-set delta) in stage
    /// order. The telescoping factors depend only on the caps; the
    /// rest is carried through for attribution.
    pub fn with_stages(answer_count: usize, inputs: Vec<StageInput>) -> Self {
        let a = answer_count as f64;
        // Suffix sums of caps: remaining[i] = Σ_{j≥i} caps_j.
        let mut remaining: f64 = inputs.iter().rev().fold(0.0, |acc, s| acc + s.caps_added);
        let mut stages = Vec::with_capacity(inputs.len());
        for input in inputs {
            let after = remaining - input.caps_added;
            let factor = if remaining == 0.0 {
                1.0
            } else {
                (a + after) / (a + remaining)
            };
            stages.push(StageFactor {
                stage: input.stage,
                caps_added: input.caps_added,
                factor,
                wall_ns: input.wall_ns,
                active_in: input.active_in,
                active_out: input.active_out,
            });
            remaining = after;
        }
        FactorBreakdown {
            answer_count,
            stages,
        }
    }

    /// The final answer count the factors are relative to.
    pub fn answer_count(&self) -> usize {
        self.answer_count
    }

    /// The per-stage factors, in stage order.
    pub fn stages(&self) -> &[StageFactor] {
        &self.stages
    }

    /// Total caps charged across all stages.
    pub fn total_caps(&self) -> f64 {
        self.stages.iter().fold(0.0, |acc, s| acc + s.caps_added)
    }

    /// The product of the stage factors — the composed certified
    /// recall the breakdown attributes.
    pub fn composed_recall(&self) -> f64 {
        self.stages.iter().fold(1.0, |acc, s| acc * s.factor)
    }

    /// Whether the factor product reproduces `certified_recall` within
    /// `eps` — the consistency check a pipeline certificate must pass.
    pub fn reproduces(&self, certified_recall: f64, eps: f64) -> bool {
        (self.composed_recall() - certified_recall).abs() <= eps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(label: &str, speedup: f64, certified: f64, measured: f64) -> CertifiedPoint {
        CertifiedPoint {
            label: label.to_string(),
            speedup,
            certified_recall: certified,
            measured_recall: measured,
        }
    }

    #[test]
    fn admissibility_is_per_point_and_collective() {
        let good = point("n=64", 3.0, 0.9, 0.97);
        let exact = point("n=256", 6.0, 1.0, 1.0);
        let bad = point("n=1024", 9.0, 0.99, 0.5);
        assert!(good.is_admissible(0.0));
        assert!(exact.is_admissible(0.0));
        assert!(!bad.is_admissible(1e-9));

        let mut sweep = CertifiedTradeoff::new();
        sweep.push(good);
        sweep.push(exact);
        assert!(sweep.is_admissible(1e-12));
        sweep.push(bad);
        assert!(!sweep.is_admissible(1e-12));
        assert_eq!(sweep.len(), 3);
    }

    #[test]
    fn headline_requires_both_floors_on_every_point() {
        let mut sweep = CertifiedTradeoff::new();
        assert!(!sweep.meets(1.0, 0.0), "empty sweep proves nothing");
        sweep.push(point("n=256", 6.0, 0.97, 1.0));
        sweep.push(point("n=1024", 8.0, 0.96, 0.99));
        assert!(sweep.meets(5.0, 0.95));
        assert_eq!(sweep.min_certified_recall(), Some(0.96));
        assert_eq!(sweep.min_speedup(), Some(6.0));
        sweep.push(point("n=64", 2.0, 1.0, 1.0));
        assert!(!sweep.meets(5.0, 0.95), "slow point breaks the headline");
        assert!(sweep.meets(2.0, 0.95));
    }

    #[test]
    fn factor_breakdown_telescopes_to_the_composed_recall() {
        let breakdown = FactorBreakdown::new(
            6,
            vec![
                ("candidates".to_string(), 0.0),
                ("truncate(4)".to_string(), 3.0),
                ("beam(8)".to_string(), 1.0),
            ],
        );
        // Stages that charge nothing contribute exactly 1.0.
        assert_eq!(breakdown.stages()[0].factor, 1.0);
        assert_eq!(breakdown.total_caps(), 4.0);
        let composed = 6.0 / (6.0 + 4.0);
        assert!(breakdown.reproduces(composed, 1e-12));
        // Each factor is a genuine per-stage attribution: ≤ 1, and the
        // cap-free tail multiplies out to 1.
        for stage in breakdown.stages() {
            assert!(stage.factor <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn factor_breakdown_handles_empty_answers_and_no_caps() {
        let none = FactorBreakdown::new(0, vec![("refine".to_string(), 0.0)]);
        assert_eq!(none.composed_recall(), 1.0);
        assert!(none.reproduces(1.0, 0.0));

        let starved = FactorBreakdown::new(0, vec![("truncate(0)".to_string(), 5.0)]);
        assert_eq!(starved.composed_recall(), 0.0);
        assert!(starved.reproduces(0.0, 0.0));
    }

    #[test]
    fn empty_sweep_has_no_minima() {
        let sweep = CertifiedTradeoff::new();
        assert!(sweep.is_empty());
        assert_eq!(sweep.min_certified_recall(), None);
        assert_eq!(sweep.min_speedup(), None);
        assert!(sweep.is_admissible(0.0), "vacuously admissible");
    }
}

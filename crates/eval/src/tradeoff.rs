//! Certified recall / speed trade-off reporting.
//!
//! A non-exhaustive tier is only worth deploying if the speedup it buys
//! is paid for honestly — with a *certified* recall bound that never
//! overstates what the run actually kept. This module records the
//! trade-off points a certified run produces (one per repository size,
//! budget, or threshold swept) and checks the two properties the
//! methodology demands:
//!
//! * **admissibility** — every point's certified recall is at most its
//!   measured recall against the exhaustive oracle (the bound is a true
//!   lower bound, never optimistic), and
//! * **the headline** — a joint floor on speedup and certified recall,
//!   e.g. "≥ 5× at certified recall ≥ 0.95".

use serde::{Deserialize, Serialize};

/// One certified run compared against its exhaustive oracle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CertifiedPoint {
    /// What produced this point, e.g. `"n=1024"` or `"budget=16"`.
    pub label: String,
    /// Exhaustive wall-clock divided by certified wall-clock (> 1 means
    /// the tier is faster).
    pub speedup: f64,
    /// The analytic recall lower bound the run's certificate claims.
    pub certified_recall: f64,
    /// Recall actually measured against the exhaustive oracle's answers.
    pub measured_recall: f64,
}

impl CertifiedPoint {
    /// `certified ≤ measured + eps`: the certificate never overstates
    /// what the run kept.
    pub fn is_admissible(&self, eps: f64) -> bool {
        self.certified_recall <= self.measured_recall + eps
    }
}

/// A swept collection of [`CertifiedPoint`]s.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CertifiedTradeoff {
    points: Vec<CertifiedPoint>,
}

impl CertifiedTradeoff {
    /// Empty trade-off record.
    pub fn new() -> Self {
        CertifiedTradeoff::default()
    }

    /// Append one run's point.
    pub fn push(&mut self, point: CertifiedPoint) {
        self.points.push(point);
    }

    /// The recorded points, in insertion order.
    pub fn points(&self) -> &[CertifiedPoint] {
        &self.points
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Every point's certificate is admissible within `eps`.
    pub fn is_admissible(&self, eps: f64) -> bool {
        self.points.iter().all(|p| p.is_admissible(eps))
    }

    /// The weakest certified recall across the sweep, `None` when empty.
    pub fn min_certified_recall(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.certified_recall)
            .min_by(|a, b| a.partial_cmp(b).expect("finite recall"))
    }

    /// The smallest speedup across the sweep, `None` when empty.
    pub fn min_speedup(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.speedup)
            .min_by(|a, b| a.partial_cmp(b).expect("finite speedup"))
    }

    /// The headline check: non-empty, and every point clears both
    /// floors simultaneously.
    pub fn meets(&self, min_speedup: f64, min_recall: f64) -> bool {
        !self.points.is_empty()
            && self
                .points
                .iter()
                .all(|p| p.speedup >= min_speedup && p.certified_recall >= min_recall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(label: &str, speedup: f64, certified: f64, measured: f64) -> CertifiedPoint {
        CertifiedPoint {
            label: label.to_string(),
            speedup,
            certified_recall: certified,
            measured_recall: measured,
        }
    }

    #[test]
    fn admissibility_is_per_point_and_collective() {
        let good = point("n=64", 3.0, 0.9, 0.97);
        let exact = point("n=256", 6.0, 1.0, 1.0);
        let bad = point("n=1024", 9.0, 0.99, 0.5);
        assert!(good.is_admissible(0.0));
        assert!(exact.is_admissible(0.0));
        assert!(!bad.is_admissible(1e-9));

        let mut sweep = CertifiedTradeoff::new();
        sweep.push(good);
        sweep.push(exact);
        assert!(sweep.is_admissible(1e-12));
        sweep.push(bad);
        assert!(!sweep.is_admissible(1e-12));
        assert_eq!(sweep.len(), 3);
    }

    #[test]
    fn headline_requires_both_floors_on_every_point() {
        let mut sweep = CertifiedTradeoff::new();
        assert!(!sweep.meets(1.0, 0.0), "empty sweep proves nothing");
        sweep.push(point("n=256", 6.0, 0.97, 1.0));
        sweep.push(point("n=1024", 8.0, 0.96, 0.99));
        assert!(sweep.meets(5.0, 0.95));
        assert_eq!(sweep.min_certified_recall(), Some(0.96));
        assert_eq!(sweep.min_speedup(), Some(6.0));
        sweep.push(point("n=64", 2.0, 1.0, 1.0));
        assert!(!sweep.meets(5.0, 0.95), "slow point breaks the headline");
        assert!(sweep.meets(2.0, 0.95));
    }

    #[test]
    fn empty_sweep_has_no_minima() {
        let sweep = CertifiedTradeoff::new();
        assert!(sweep.is_empty());
        assert_eq!(sweep.min_certified_recall(), None);
        assert_eq!(sweep.min_speedup(), None);
        assert!(sweep.is_admissible(0.0), "vacuously admissible");
    }
}

//! Precision and recall from counts (Figure 2 of the paper).
//!
//! `P = |T| / |A|`, `R = |T| / |H|`, with the conventions `P = 1` for an
//! empty answer set (no wrong answers were produced) — callers who prefer
//! `P = 0` there can branch on [`Counts::is_empty`].

use crate::answer::AnswerSet;
use crate::truth::GroundTruth;
use serde::{Deserialize, Serialize};

/// The integer sizes behind one (threshold, system) measurement:
/// `answers = |A^δ|`, `correct = |T^δ| = |H ∩ A^δ|`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Counts {
    /// `|A^δ|` — answers produced.
    pub answers: usize,
    /// `|T^δ|` — correct answers among them.
    pub correct: usize,
}

impl Counts {
    /// Construct counts; `correct` is clamped to `answers`.
    pub fn new(answers: usize, correct: usize) -> Self {
        Counts {
            answers,
            correct: correct.min(answers),
        }
    }

    /// Measure counts of `answers` at `threshold` against `truth`.
    pub fn measure(answers: &AnswerSet, truth: &GroundTruth, threshold: f64) -> Self {
        Counts {
            answers: answers.count_at(threshold),
            correct: truth.true_positives_at(answers, threshold),
        }
    }

    /// Whether no answers were produced.
    pub fn is_empty(self) -> bool {
        self.answers == 0
    }

    /// Precision `|T|/|A|`; `1.0` for an empty answer set.
    pub fn precision(self) -> f64 {
        if self.answers == 0 {
            1.0
        } else {
            self.correct as f64 / self.answers as f64
        }
    }

    /// Recall `|T|/|H|` for a truth of size `truth_size`; `0.0` when the
    /// truth is empty (nothing to find).
    pub fn recall(self, truth_size: usize) -> f64 {
        if truth_size == 0 {
            0.0
        } else {
            self.correct as f64 / truth_size as f64
        }
    }

    /// Incorrect answers `|A| - |T|`.
    pub fn incorrect(self) -> usize {
        self.answers - self.correct
    }
}

impl std::ops::Sub for Counts {
    type Output = Counts;
    /// Increment counts: `self - earlier` for `earlier ⊆ self` (saturating).
    fn sub(self, earlier: Counts) -> Counts {
        Counts {
            answers: self.answers.saturating_sub(earlier.answers),
            correct: self.correct.saturating_sub(earlier.correct),
        }
    }
}

impl std::ops::Add for Counts {
    type Output = Counts;
    fn add(self, other: Counts) -> Counts {
        Counts {
            answers: self.answers + other.answers,
            correct: self.correct + other.correct,
        }
    }
}

/// Free-function precision for `(correct, answers)` counts.
pub fn precision(correct: usize, answers: usize) -> f64 {
    Counts::new(answers, correct).precision()
}

/// Free-function recall for `(correct, truth_size)` counts.
pub fn recall(correct: usize, truth_size: usize) -> f64 {
    if truth_size == 0 {
        0.0
    } else {
        correct as f64 / truth_size as f64
    }
}

/// Harmonic mean of precision and recall; `0` when both are `0`.
pub fn f1_score(precision: f64, recall: f64) -> f64 {
    if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::AnswerId;

    #[test]
    fn precision_recall_basics() {
        let c = Counts::new(8, 3);
        assert!((c.precision() - 0.375).abs() < 1e-12);
        assert!((c.recall(6) - 0.5).abs() < 1e-12);
        assert_eq!(c.incorrect(), 5);
    }

    #[test]
    fn conventions_on_empty() {
        let c = Counts::new(0, 0);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(10), 0.0);
        assert_eq!(Counts::new(5, 2).recall(0), 0.0);
        assert!(c.is_empty());
    }

    #[test]
    fn correct_clamped_to_answers() {
        let c = Counts::new(3, 7);
        assert_eq!(c.correct, 3);
        assert_eq!(c.precision(), 1.0);
    }

    #[test]
    fn arithmetic() {
        let big = Counts::new(10, 4);
        let small = Counts::new(6, 1);
        let inc = big - small;
        assert_eq!(inc, Counts::new(4, 3));
        assert_eq!(small + inc, big);
        // Saturating on misuse.
        assert_eq!(small - big, Counts::new(0, 0));
    }

    #[test]
    fn measure_against_answer_set() {
        let answers =
            AnswerSet::new([(AnswerId(1), 0.1), (AnswerId(2), 0.2), (AnswerId(3), 0.3)]).unwrap();
        let truth = GroundTruth::new([AnswerId(2), AnswerId(3)]);
        let c = Counts::measure(&answers, &truth, 0.2);
        assert_eq!(c, Counts::new(2, 1));
    }

    #[test]
    fn f1() {
        assert_eq!(f1_score(0.0, 0.0), 0.0);
        assert_eq!(f1_score(1.0, 1.0), 1.0);
        assert!((f1_score(0.5, 1.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn free_functions() {
        assert_eq!(precision(3, 8), 0.375);
        assert_eq!(recall(3, 6), 0.5);
        assert_eq!(recall(3, 0), 0.0);
    }
}

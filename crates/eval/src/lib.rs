#![warn(missing_docs)]

//! Retrieval evaluation: answer sets, ground truth, precision/recall,
//! P/R curves, interpolation, and pooling.
//!
//! This crate implements §2 of the paper ("Quality measurement of schema
//! matching systems") *generically*: answers are opaque ids with a score
//! assigned by an objective function Δ where **lower scores are better**
//! (Δ measures how *different* two schemas are). The paper notes the same
//! machinery applies to any retrieval system — documents, images — and the
//! bounds crate (`smx-core`) consumes only the types defined here.
//!
//! * [`answer`] — [`AnswerSet`]: scored answers, threshold slicing
//!   `A_S^δ = {a | Δ(a) ≤ δ}`, subset/score-consistency checks,
//! * [`truth`] — [`GroundTruth`] `H`: the human-judged correct answers,
//! * [`metrics`] — counts `|A|, |T|` and precision/recall (Figure 2),
//! * [`curve`] — measured P/R curves obtained by sweeping the threshold
//!   (Figure 5),
//! * [`interpolate`] — 11-point interpolated P/R curves (Figure 6),
//! * [`topn`] — precision/recall at a result-list cut,
//! * [`pooling`] — TREC-style pooling and Zobel's shallow-pool estimate,
//!   the related-work validation techniques the bounds are compared against,
//! * [`tradeoff`] — certified recall / speed trade-off records for
//!   non-exhaustive tiers, with admissibility and headline checks, and
//!   per-stage factor breakdowns for composed pipeline certificates.

pub mod answer;
pub mod curve;
pub mod error;
pub mod interpolate;
pub mod metrics;
pub mod pooling;
pub mod topn;
pub mod tradeoff;
pub mod truth;

pub use answer::{AnswerId, AnswerSet, ScoredAnswer};
pub use curve::{PrCurve, PrPoint};
pub use error::EvalError;
pub use interpolate::{InterpolatedCurve, STANDARD_RECALL_LEVELS};
pub use metrics::{f1_score, precision, recall, Counts};
pub use pooling::{pool_depth_k, shallow_pool_estimate, PooledTruth};
pub use topn::{precision_at, recall_at, TopNReport};
pub use tradeoff::{CertifiedPoint, CertifiedTradeoff, FactorBreakdown, StageFactor, StageInput};
pub use truth::GroundTruth;

//! Pooling-based judgment construction — the related-work alternatives the
//! paper positions its bounds against.
//!
//! * [`pool_depth_k`] implements TREC pooling (Harman): the union of each
//!   participating system's top-`k` answers forms the pool; only pooled
//!   answers are judged. Metrics computed against a [`PooledTruth`] are
//!   *estimates*, whereas the bounds of `smx-core` are guarantees — the
//!   `pooling_vs_bounds` example quantifies the gap.
//! * [`shallow_pool_estimate`] implements Zobel's extrapolation: judge a
//!   shallow pool, fit the rate at which new relevant answers appear, and
//!   predict how many remain further down the ranking.

use crate::answer::{AnswerId, AnswerSet};
use crate::truth::GroundTruth;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Ground truth restricted to a judged pool.
///
/// `truth()` behaves like a normal [`GroundTruth`] for metric computation;
/// `pool()` records which answers were actually judged, so callers can
/// distinguish "judged incorrect" from "never judged".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PooledTruth {
    pool: BTreeSet<AnswerId>,
    truth: GroundTruth,
}

impl PooledTruth {
    /// Judged (pooled) answer ids.
    pub fn pool(&self) -> impl Iterator<Item = AnswerId> + '_ {
        self.pool.iter().copied()
    }

    /// Number of judged answers.
    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }

    /// The judged-correct subset usable as a [`GroundTruth`].
    pub fn truth(&self) -> &GroundTruth {
        &self.truth
    }

    /// Whether `id` was judged at all.
    pub fn judged(&self, id: AnswerId) -> bool {
        self.pool.contains(&id)
    }
}

/// TREC pooling at depth `k`: pool the union of every system's top-`k`
/// answers and judge exactly those against `full_truth` (standing in for
/// the human assessor).
pub fn pool_depth_k(systems: &[&AnswerSet], k: usize, full_truth: &GroundTruth) -> PooledTruth {
    let mut pool: BTreeSet<AnswerId> = BTreeSet::new();
    for sys in systems {
        pool.extend(sys.top_n(k).iter().map(|a| a.id));
    }
    let truth = full_truth.filter(|id| pool.contains(&id));
    PooledTruth { pool, truth }
}

/// Zobel-style shallow-pool extrapolation.
///
/// Judge the top `shallow` answers of `ranked` (against `truth` as the
/// assessor), fit the per-rank rate of newly found relevant answers over
/// the judged prefix, and extrapolate linearly with depth decay to predict
/// the number of relevant answers in the next `horizon` ranks.
///
/// Returns `(found_in_pool, predicted_additional)`.
pub fn shallow_pool_estimate(
    ranked: &AnswerSet,
    truth: &GroundTruth,
    shallow: usize,
    horizon: usize,
) -> (usize, f64) {
    let judged = ranked.top_n(shallow);
    let found = judged.iter().filter(|a| truth.contains(a.id)).count();
    if judged.is_empty() || horizon == 0 {
        return (found, 0.0);
    }
    // Rate over the second half of the judged prefix approximates the
    // marginal rate at the pool boundary (relevance density decays with
    // rank, so the overall average would over-predict).
    let half = judged.len() / 2;
    let tail = &judged[half..];
    let tail_found = tail.iter().filter(|a| truth.contains(a.id)).count();
    let rate = tail_found as f64 / tail.len() as f64;
    let remaining = ranked.len().saturating_sub(judged.len()).min(horizon);
    (found, rate * remaining as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn answers(ids: &[u64]) -> AnswerSet {
        AnswerSet::new(
            ids.iter()
                .enumerate()
                .map(|(rank, &id)| (AnswerId(id), (rank + 1) as f64 * 0.01)),
        )
        .unwrap()
    }

    #[test]
    fn pool_unions_topk() {
        let s1 = answers(&[1, 2, 3, 4]);
        let s2 = answers(&[3, 4, 5, 6]);
        let full = GroundTruth::new([2, 5, 42].map(AnswerId));
        let pooled = pool_depth_k(&[&s1, &s2], 2, &full);
        // Pool = {1,2} ∪ {3,4} = {1,2,3,4}.
        assert_eq!(pooled.pool_size(), 4);
        assert!(pooled.judged(AnswerId(1)));
        assert!(!pooled.judged(AnswerId(5)));
        // Judged truth loses both 5 (below depth) and 42 (never retrieved).
        assert_eq!(pooled.truth().len(), 1);
        assert!(pooled.truth().contains(AnswerId(2)));
    }

    #[test]
    fn deeper_pools_find_no_fewer_relevant() {
        let s1 = answers(&[1, 2, 3, 4, 5, 6]);
        let full = GroundTruth::new([2, 4, 6].map(AnswerId));
        let shallow = pool_depth_k(&[&s1], 2, &full);
        let deep = pool_depth_k(&[&s1], 6, &full);
        assert!(deep.truth().len() >= shallow.truth().len());
        assert_eq!(deep.truth().len(), 3);
    }

    #[test]
    fn pooled_metrics_overestimate_precision_never_recall_target() {
        // Classic pooling bias: unjudged relevant answers make pooled
        // truth smaller, so recall against pooled truth looks better.
        let sys = answers(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let full = GroundTruth::new([7, 8].map(AnswerId));
        let pooled = pool_depth_k(&[&sys], 4, &full);
        assert_eq!(pooled.truth().len(), 0); // everything relevant is deep
    }

    #[test]
    fn shallow_pool_extrapolates() {
        // Relevant at every 2nd rank in the whole list.
        let ids: Vec<u64> = (1..=40).collect();
        let sys = answers(&ids);
        let truth = GroundTruth::new((1..=40).filter(|i| i % 2 == 0).map(AnswerId));
        let (found, predicted) = shallow_pool_estimate(&sys, &truth, 10, 30);
        assert_eq!(found, 5);
        // Tail of the judged prefix is ranks 6..10 with 3 relevant → rate
        // 0.6; 30 unjudged ranks remain → prediction 18 (true value 15 —
        // an *estimate*, which is exactly the paper's point).
        assert!((predicted - 18.0).abs() < 1e-9);
    }

    #[test]
    fn shallow_pool_degenerate() {
        let sys = answers(&[1, 2]);
        let truth = GroundTruth::new([1].map(AnswerId));
        assert_eq!(shallow_pool_estimate(&sys, &truth, 0, 10), (0, 0.0));
        assert_eq!(shallow_pool_estimate(&sys, &truth, 2, 0), (1, 0.0));
    }
}

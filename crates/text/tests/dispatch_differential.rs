//! Differential suite over the kernel dispatch table: every
//! [`KernelVariant`] must reproduce the scalar `NameSimilarity` path —
//! and therefore every other variant — **bitwise**, on ASCII,
//! non-ASCII, empty, and 64-scalar-boundary inputs alike.
//!
//! This is the gate that makes the dispatcher safe to extend: a new
//! tier that diverges on any input fails here before it can reach the
//! repository score store.

use proptest::prelude::*;
use smx_text::{KernelVariant, LabelProfile, NameSimilarity, RowKernel};

/// Deterministic labels hitting every fast-path boundary: empties,
/// normalise-to-empty, non-ASCII on either side, repeated characters
/// (transposition pressure), and 63/64/65-scalar lengths straddling the
/// one-word bitset/Myers regime.
fn boundary_labels() -> Vec<String> {
    let base: String = (0..64).map(|i| (b'a' + (i % 26) as u8) as char).collect();
    vec![
        String::new(),
        "_".into(), // normalises to empty
        "a".into(),
        "title".into(),
        "bookTitle".into(),
        "Cust_Order-No2".into(),
        "custordernum".into(),
        "aaabaaa".into(), // repeated chars: greedy-match pressure
        "naïve_Name".into(),
        "日本語スキーマ".into(),
        "nave".into(),
        base[..63].to_owned(),
        base.clone(),
        format!("{base}z"),
        base.chars().rev().collect(), // max transpositions at the word edge
        "the_quick_brown_fox_jumps_over_the_lazy_dog".into(),
    ]
}

#[test]
fn every_variant_is_bitwise_identical_to_the_scalar_path() {
    let scalar = NameSimilarity::default();
    let labels = boundary_labels();
    let profiles: Vec<LabelProfile> = labels.iter().map(|l| LabelProfile::new(l)).collect();
    for variant in KernelVariant::ALL {
        for q in &labels {
            let kernel = RowKernel::with_variant(q, variant);
            assert!(kernel.variant().is_supported());
            let mut row = Vec::new();
            kernel.distances_into(&profiles, &mut row);
            for (c, d) in labels.iter().zip(&row) {
                assert_eq!(
                    d.to_bits(),
                    scalar.distance(q, c).to_bits(),
                    "distance({q:?}, {c:?}) under {variant:?}"
                );
            }
        }
    }
}

#[test]
fn unsupported_variants_degrade_to_a_supported_tier() {
    // `with_variant` resolves through the graceful-fallback path: the
    // kernel that actually runs is always supported, and its results
    // are bitwise-scalar regardless of what was asked for.
    let scalar = NameSimilarity::default();
    let kernel = RowKernel::with_variant("orderLine", KernelVariant::Arch);
    assert!(kernel.variant().is_supported());
    if !KernelVariant::Arch.is_supported() {
        assert_eq!(kernel.variant(), KernelVariant::Scalar);
    }
    let c = LabelProfile::new("lineOrder");
    assert_eq!(
        kernel.similarity(&c).to_bits(),
        scalar.similarity("orderLine", "lineOrder").to_bits()
    );
}

/// Mixed-case identifiers with non-ASCII letters, long enough to straddle
/// the 64-scalar boundary of the bitset/Myers fast paths.
fn kernel_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z0-9_äößé\\-]{0,70}").unwrap()
}

proptest! {
    /// Random labels: the whole dispatch table agrees with the scalar
    /// path bit for bit (similarity, distance, and the edit-distance
    /// leaf the Levenshtein term consumes).
    #[test]
    fn dispatch_table_bitwise_on_random_labels(a in kernel_label(), b in kernel_label()) {
        let scalar = NameSimilarity::default();
        let expected = scalar.similarity(&a, &b).to_bits();
        let profile = LabelProfile::new(&b);
        let mut lev: Option<usize> = None;
        for variant in KernelVariant::ALL {
            let kernel = RowKernel::with_variant(&a, variant);
            prop_assert_eq!(
                kernel.similarity(&profile).to_bits(),
                expected,
                "similarity({:?}, {:?}) under {:?}", a, b, variant
            );
            let d = kernel.levenshtein_to(&profile);
            if let Some(first) = lev {
                prop_assert_eq!(d, first, "levenshtein_to under {:?}", variant);
            }
            lev = Some(d);
        }
    }
}

//! `SMX_KERNEL_FORCE=arch` end-to-end: on hardware with an `std::arch`
//! implementation the override pins the Arch tier; elsewhere it must
//! degrade **gracefully to the scalar oracle** — never fail — and either
//! way the forced kernel stays bitwise-scalar.
//!
//! Own test binary / process — [`KernelVariant::active`] caches the
//! override at first use.

use smx_text::{dispatch::FORCE_ENV, KernelVariant, LabelProfile, NameSimilarity, RowKernel};

#[test]
fn env_override_forces_arch_or_falls_back_to_scalar() {
    std::env::set_var(FORCE_ENV, "arch");
    let active = KernelVariant::active();
    if KernelVariant::Arch.is_supported() {
        assert_eq!(active, KernelVariant::Arch);
    } else {
        assert_eq!(active, KernelVariant::Scalar, "graceful scalar fallback");
    }
    assert!(active.is_supported());
    let kernel = RowKernel::new("custOrderNo");
    assert_eq!(kernel.variant(), active);
    let scalar = NameSimilarity::default();
    for label in ["customerOrderNumber", "naïve_Name", "", "custOrderNo"] {
        assert_eq!(
            kernel.similarity(&LabelProfile::new(label)).to_bits(),
            scalar.similarity("custOrderNo", label).to_bits(),
            "{label:?}"
        );
    }
}

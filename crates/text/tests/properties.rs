//! Crate-wide property tests: every similarity is in [0,1], symmetric, and
//! scores identical inputs as 1.

use proptest::prelude::*;
use smx_text::*;

fn ident() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z0-9_\\- ]{0,16}").unwrap()
}

type Measure = fn(&str, &str) -> f64;

/// All (name, function) pairs under test.
fn all_measures() -> Vec<(&'static str, Measure)> {
    vec![
        ("levenshtein", levenshtein_similarity),
        ("jaro", jaro),
        ("jaro_winkler", jaro_winkler),
        ("trigram", trigram_similarity),
        ("jaccard_tokens", jaccard_tokens),
        ("dice_tokens", dice_tokens),
        ("overlap_tokens", overlap_tokens),
        ("monge_elkan", monge_elkan),
        ("token_set", token_set_similarity),
        ("prefix", prefix_similarity),
        ("suffix", suffix_similarity),
    ]
}

proptest! {
    #[test]
    fn scores_in_unit_interval(a in ident(), b in ident()) {
        for (name, f) in all_measures() {
            let s = f(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s), "{name}({a:?},{b:?}) = {s}");
        }
    }

    #[test]
    fn scores_symmetric(a in ident(), b in ident()) {
        for (name, f) in all_measures() {
            prop_assert!((f(&a, &b) - f(&b, &a)).abs() < 1e-12, "{name} asymmetric on {a:?},{b:?}");
        }
    }

    #[test]
    fn identical_inputs_score_one(a in ident()) {
        for (name, f) in all_measures() {
            let s = f(&a, &a);
            prop_assert!((s - 1.0).abs() < 1e-12, "{name}({a:?},{a:?}) = {s}");
        }
    }

    #[test]
    fn levenshtein_triangle(a in ident(), b in ident(), c in ident()) {
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    #[test]
    fn damerau_le_levenshtein(a in ident(), b in ident()) {
        prop_assert!(damerau_levenshtein(&a, &b) <= levenshtein(&a, &b));
    }

    #[test]
    fn levenshtein_distance_bounds(a in ident(), b in ident()) {
        let d = levenshtein(&a, &b);
        let (la, lb) = (a.chars().count(), b.chars().count());
        prop_assert!(d >= la.abs_diff(lb));
        prop_assert!(d <= la.max(lb));
    }

    #[test]
    fn split_tokens_nonempty_lowercase(a in ident()) {
        for t in split_identifier(&a) {
            prop_assert!(!t.as_str().is_empty());
            prop_assert_eq!(t.as_str().to_lowercase(), t.as_str());
        }
    }

    #[test]
    fn normalize_idempotent(a in ident()) {
        let once = normalize_identifier(&a);
        prop_assert_eq!(normalize_identifier(&once), once.clone());
    }

    #[test]
    fn combined_default_consistent(a in ident(), b in ident()) {
        let sim = NameSimilarity::default();
        let s = sim.similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((sim.similarity(&b, &a) - s).abs() < 1e-12);
        prop_assert!((sim.distance(&a, &b) - (1.0 - s)).abs() < 1e-12);
    }

    #[test]
    fn cache_transparent(a in ident(), b in ident()) {
        let cache = SimilarityCache::new(jaro_winkler);
        prop_assert_eq!(cache.similarity(&a, &b), jaro_winkler(&a, &b));
        // Second lookup returns the identical value.
        prop_assert_eq!(cache.similarity(&b, &a), jaro_winkler(&a, &b));
    }
}

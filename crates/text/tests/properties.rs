//! Crate-wide property tests: every similarity is in [0,1], symmetric, and
//! scores identical inputs as 1 — plus the differential suites gating the
//! batched row kernel and the flat n-gram profiles against their scalar
//! reference paths (bitwise).

use proptest::prelude::*;
use smx_text::*;

fn ident() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z0-9_\\- ]{0,16}").unwrap()
}

/// Labels for the row-kernel differential tests: mixed-case identifiers
/// with non-ASCII letters, long enough (0..=70 normalised chars) to
/// straddle the 64-char Myers word boundary.
fn kernel_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z0-9_äößé\\-]{0,70}").unwrap()
}

/// Lowercase ASCII strings that normalise to themselves, pinned to the
/// Myers boundary regime (shorter side 60..=70).
fn boundary_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z]{60,70}").unwrap()
}

type Measure = fn(&str, &str) -> f64;

/// All (name, function) pairs under test.
fn all_measures() -> Vec<(&'static str, Measure)> {
    vec![
        ("levenshtein", levenshtein_similarity),
        ("jaro", jaro),
        ("jaro_winkler", jaro_winkler),
        ("trigram", trigram_similarity),
        ("jaccard_tokens", jaccard_tokens),
        ("dice_tokens", dice_tokens),
        ("overlap_tokens", overlap_tokens),
        ("monge_elkan", monge_elkan),
        ("token_set", token_set_similarity),
        ("prefix", prefix_similarity),
        ("suffix", suffix_similarity),
    ]
}

proptest! {
    #[test]
    fn scores_in_unit_interval(a in ident(), b in ident()) {
        for (name, f) in all_measures() {
            let s = f(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s), "{name}({a:?},{b:?}) = {s}");
        }
    }

    #[test]
    fn scores_symmetric(a in ident(), b in ident()) {
        for (name, f) in all_measures() {
            prop_assert!((f(&a, &b) - f(&b, &a)).abs() < 1e-12, "{name} asymmetric on {a:?},{b:?}");
        }
    }

    #[test]
    fn identical_inputs_score_one(a in ident()) {
        for (name, f) in all_measures() {
            let s = f(&a, &a);
            prop_assert!((s - 1.0).abs() < 1e-12, "{name}({a:?},{a:?}) = {s}");
        }
    }

    #[test]
    fn levenshtein_triangle(a in ident(), b in ident(), c in ident()) {
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    #[test]
    fn damerau_le_levenshtein(a in ident(), b in ident()) {
        prop_assert!(damerau_levenshtein(&a, &b) <= levenshtein(&a, &b));
    }

    #[test]
    fn levenshtein_distance_bounds(a in ident(), b in ident()) {
        let d = levenshtein(&a, &b);
        let (la, lb) = (a.chars().count(), b.chars().count());
        prop_assert!(d >= la.abs_diff(lb));
        prop_assert!(d <= la.max(lb));
    }

    #[test]
    fn split_tokens_nonempty_lowercase(a in ident()) {
        for t in split_identifier(&a) {
            prop_assert!(!t.as_str().is_empty());
            prop_assert_eq!(t.as_str().to_lowercase(), t.as_str());
        }
    }

    #[test]
    fn normalize_idempotent(a in ident()) {
        let once = normalize_identifier(&a);
        prop_assert_eq!(normalize_identifier(&once), once.clone());
    }

    #[test]
    fn combined_default_consistent(a in ident(), b in ident()) {
        let sim = NameSimilarity::default();
        let s = sim.similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((sim.similarity(&b, &a) - s).abs() < 1e-12);
        prop_assert!((sim.distance(&a, &b) - (1.0 - s)).abs() < 1e-12);
    }

    #[test]
    fn cache_transparent(a in ident(), b in ident()) {
        let cache = SimilarityCache::new(jaro_winkler);
        prop_assert_eq!(cache.similarity(&a, &b), jaro_winkler(&a, &b));
        // Second lookup returns the identical value.
        prop_assert_eq!(cache.similarity(&b, &a), jaro_winkler(&a, &b));
    }

    /// The row kernel's score-identity contract: preprocessed profiles
    /// reproduce the scalar combined measure to the bit.
    #[test]
    fn row_kernel_bitwise_matches_scalar(a in kernel_label(), b in kernel_label()) {
        let scalar = NameSimilarity::default();
        let kernel = RowKernel::new(&a);
        let profile = LabelProfile::new(&b);
        prop_assert_eq!(
            kernel.similarity(&profile).to_bits(),
            scalar.similarity(&a, &b).to_bits(),
            "similarity({:?}, {:?})", a, b
        );
        prop_assert_eq!(
            kernel.distance(&profile).to_bits(),
            scalar.distance(&a, &b).to_bits(),
            "distance({:?}, {:?})", a, b
        );
    }

    /// Every dispatch variant of the kernel reproduces the scalar
    /// combined measure to the bit (see tests/dispatch_differential.rs
    /// for the full dispatch-table suite).
    #[test]
    fn row_kernel_variants_bitwise_match_scalar(a in kernel_label(), b in kernel_label()) {
        let expected = NameSimilarity::default().similarity(&a, &b).to_bits();
        let profile = LabelProfile::new(&b);
        for variant in KernelVariant::ALL {
            let kernel = RowKernel::with_variant(&a, variant);
            prop_assert_eq!(
                kernel.similarity(&profile).to_bits(),
                expected,
                "similarity({:?}, {:?}) under {:?}", a, b, variant
            );
        }
    }

    /// The kernel's prepared-pattern edit distance equals the scalar
    /// `levenshtein` over the normalised forms — across ASCII/non-ASCII
    /// tier selection and arbitrary lengths.
    #[test]
    fn row_kernel_levenshtein_matches_scalar(a in kernel_label(), b in kernel_label()) {
        let kernel = RowKernel::new(&a);
        let profile = LabelProfile::new(&b);
        let (na, nb) = (normalize_identifier(&a), normalize_identifier(&b));
        prop_assert_eq!(
            kernel.levenshtein_to(&profile),
            levenshtein(&na, &nb),
            "levenshtein({:?}, {:?})", na, nb
        );
    }

    /// Same, pinned to the 64-char Myers word boundary: both sides
    /// normalise to themselves with the shorter side in 60..=70, so the
    /// prepared `1 << 63` high-bit/carry paths and the DP fallback just
    /// past the word are both exercised.
    #[test]
    fn row_kernel_levenshtein_at_word_boundary(a in boundary_label(), b in boundary_label()) {
        let kernel = RowKernel::new(&a);
        let profile = LabelProfile::new(&b);
        prop_assert_eq!(kernel.levenshtein_to(&profile), levenshtein(&a, &b));
        prop_assert_eq!(
            kernel.similarity(&profile).to_bits(),
            NameSimilarity::default().similarity(&a, &b).to_bits()
        );
    }

    /// Flat hashed gram profiles reproduce the HashMap reference path.
    #[test]
    fn flat_ngrams_match_reference(a in kernel_label(), b in kernel_label(), n in 1usize..5) {
        prop_assert_eq!(
            jaccard_ngram(&a, &b, n).to_bits(),
            ngram::reference::jaccard_ngram(&a, &b, n).to_bits(),
            "jaccard n={}", n
        );
        prop_assert_eq!(
            dice_ngram(&a, &b, n).to_bits(),
            ngram::reference::dice_ngram(&a, &b, n).to_bits(),
            "dice n={}", n
        );
    }
}

/// Deterministic kernel differential cases the random strategies only
/// reach by luck: empty inputs, exact 63/64/65-char normalised labels,
/// and non-ASCII labels on both and one side.
#[test]
fn row_kernel_pinned_edge_cases() {
    let base: String = (0..64).map(|i| (b'a' + (i % 26) as u8) as char).collect();
    let labels = [
        String::new(),
        "_".into(),              // normalises to empty
        "naïve".into(),          // non-ASCII
        "日本語スキーマ".into(), // non-ASCII, multi-byte grams
        "nave".into(),           // ASCII vs non-ASCII pairing
        base[..63].to_owned(),
        base.clone(),                 // exactly 64: high bit is the score bit
        format!("{base}z"),           // 65: one past the Myers word
        format!("{}!x", &base[..62]), // 64 raw, 63 normalised
    ];
    let scalar = NameSimilarity::default();
    for a in &labels {
        let kernel = RowKernel::new(a);
        for b in &labels {
            let profile = LabelProfile::new(b);
            assert_eq!(
                kernel.similarity(&profile).to_bits(),
                scalar.similarity(a, b).to_bits(),
                "similarity({a:?}, {b:?})"
            );
            assert_eq!(
                kernel.levenshtein_to(&profile),
                levenshtein(&normalize_identifier(a), &normalize_identifier(b)),
                "levenshtein({a:?}, {b:?})"
            );
        }
    }
}

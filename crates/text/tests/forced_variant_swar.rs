//! `SMX_KERNEL_FORCE=swar` end-to-end: the env override must pin the
//! process-wide active variant to the SWAR tier (supported everywhere),
//! and forced kernels must stay bitwise-scalar.
//!
//! Own test binary / process — [`KernelVariant::active`] caches the
//! override at first use.

use smx_text::{dispatch::FORCE_ENV, KernelVariant, LabelProfile, NameSimilarity, RowKernel};

#[test]
fn env_override_forces_the_swar_tier() {
    std::env::set_var(FORCE_ENV, "swar");
    assert_eq!(KernelVariant::active(), KernelVariant::Swar);
    let kernel = RowKernel::new("custOrderNo");
    assert_eq!(kernel.variant(), KernelVariant::Swar);
    let scalar = NameSimilarity::default();
    for label in ["customerOrderNumber", "naïve_Name", "", "custOrderNo"] {
        assert_eq!(
            kernel.similarity(&LabelProfile::new(label)).to_bits(),
            scalar.similarity("custOrderNo", label).to_bits(),
            "{label:?}"
        );
    }
}

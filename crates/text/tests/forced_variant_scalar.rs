//! `SMX_KERNEL_FORCE=scalar` end-to-end: the env override must pin the
//! process-wide active variant to the scalar oracle.
//!
//! Each forced-variant test lives in its own integration-test binary —
//! and therefore its own process — because [`KernelVariant::active`]
//! caches the override at first use.

use smx_text::{dispatch::FORCE_ENV, KernelVariant, LabelProfile, NameSimilarity, RowKernel};

#[test]
fn env_override_forces_the_scalar_oracle() {
    std::env::set_var(FORCE_ENV, "scalar");
    assert_eq!(KernelVariant::active(), KernelVariant::Scalar);
    let kernel = RowKernel::new("custOrderNo");
    assert_eq!(kernel.variant(), KernelVariant::Scalar);
    // Forced kernels still satisfy the score-identity contract.
    let scalar = NameSimilarity::default();
    for label in ["customerOrderNumber", "naïve_Name", "", "custOrderNo"] {
        assert_eq!(
            kernel.similarity(&LabelProfile::new(label)).to_bits(),
            scalar.similarity("custOrderNo", label).to_bits(),
            "{label:?}"
        );
    }
}

//! `std::arch` specialisations of the SWAR primitives — SSE2 on x86_64,
//! NEON on aarch64 — behind runtime feature detection.
//!
//! Only the hottest primitive is specialised: the position-bitmask
//! equality scan ([`AsciiLanes::eq_mask`](crate::swar::AsciiLanes)) that
//! drives the Jaro bitset fast path. A 128-bit register compares sixteen
//! characters per instruction instead of SWAR's eight per word, and on
//! x86 `movemask` collapses the comparison to a bitmask in one step. The
//! result is **bit-identical** to the SWAR mask (both are clipped by the
//! same `len_mask`), so dispatching between them can never change a
//! score; the differential suites assert as much.
//!
//! On architectures with neither SSE2 nor NEON this module reports the
//! variant unsupported and the dispatcher degrades gracefully (see
//! [`crate::dispatch`]).

use crate::swar::AsciiLanes;

/// Whether the `Arch` kernel variant has an implementation on this CPU.
pub(crate) fn supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("sse2")
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON (asimd) is part of the aarch64 baseline.
        true
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        false
    }
}

/// Position bitmask of `needle` in `lanes` via the best `std::arch`
/// path. Callers must have checked [`supported`] (the dispatcher does);
/// on unsupported architectures this falls back to the SWAR mask, which
/// is bit-identical anyway.
#[inline]
pub(crate) fn eq_mask(lanes: &AsciiLanes, needle: u8) -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        // Safety: `supported()` gates dispatch on SSE2 (x86_64 baseline).
        unsafe { eq_mask_sse2(lanes, needle) }
    }
    #[cfg(target_arch = "aarch64")]
    {
        // Safety: NEON is unconditionally available on aarch64.
        unsafe { eq_mask_neon(lanes, needle) }
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        lanes.eq_mask(needle)
    }
}

/// SSE2: four 16-byte compares + `movemask` over the packed 64 bytes.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn eq_mask_sse2(lanes: &AsciiLanes, needle: u8) -> u64 {
    use std::arch::x86_64::*;
    let needle = _mm_set1_epi8(needle as i8);
    // The eight u64 lanes are 64 contiguous bytes; padding bytes are
    // zero and the final len_mask clip removes any padding matches.
    let base = lanes.lanes().as_ptr() as *const __m128i;
    let mut mask = 0u64;
    for reg in 0..4 {
        let bytes = _mm_loadu_si128(base.add(reg));
        let eq = _mm_cmpeq_epi8(bytes, needle);
        mask |= (u64::from(_mm_movemask_epi8(eq) as u32 as u16)) << (16 * reg);
    }
    mask & lanes.len_mask()
}

/// NEON: four 16-byte `vceqq_u8` compares; the 0xFF-per-match result is
/// collapsed to position bits per extracted 64-bit half.
#[cfg(target_arch = "aarch64")]
unsafe fn eq_mask_neon(lanes: &AsciiLanes, needle: u8) -> u64 {
    use std::arch::aarch64::*;
    let needle = vdupq_n_u8(needle);
    let base = lanes.lanes().as_ptr() as *const u8;
    let mut mask = 0u64;
    for reg in 0..4 {
        let bytes = vld1q_u8(base.add(16 * reg));
        let eq = vreinterpretq_u64_u8(vceqq_u8(bytes, needle));
        let lo = vgetq_lane_u64::<0>(eq);
        let hi = vgetq_lane_u64::<1>(eq);
        mask |= collapse_ff_bytes(lo) << (16 * reg);
        mask |= collapse_ff_bytes(hi) << (16 * reg + 8);
    }
    mask & lanes.len_mask()
}

/// Collapse a word whose bytes are exactly 0x00 or 0xFF to one bit per
/// 0xFF byte (branch-free gather multiply, shared with the SWAR tier).
#[cfg(target_arch = "aarch64")]
#[inline]
fn collapse_ff_bytes(x: u64) -> u64 {
    crate::swar::collapse_byte_flags(x & 0x8080_8080_8080_8080)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_mask_equals_swar_mask() {
        if !supported() {
            // Nothing to differentiate: eq_mask already falls back.
            return;
        }
        let cases: &[&[u8]] = &[
            b"a",
            b"customer_order_no2",
            &[b'q'; 64],
            b"ababababababababababababababababababababababababababababababab",
        ];
        for &s in cases {
            let lanes = AsciiLanes::pack(s).unwrap();
            for needle in 0u8..128 {
                assert_eq!(
                    eq_mask(&lanes, needle),
                    lanes.eq_mask(needle),
                    "needle {needle} in {:?}",
                    std::str::from_utf8(s).unwrap()
                );
            }
        }
    }
}

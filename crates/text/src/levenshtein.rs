//! Edit-distance measures.
//!
//! [`levenshtein`] is the classic insert/delete/substitute distance;
//! [`damerau_levenshtein`] additionally allows adjacent transpositions,
//! which matters for typo-ridden element names (`adress`, `recieve`).
//! [`levenshtein_similarity`] normalises the distance into a `[0, 1]`
//! similarity by dividing by the longer input's length.

use crate::clamp01;

/// Levenshtein edit distance between `a` and `b`, in Unicode scalar values.
///
/// Uses the two-row dynamic program: `O(|a|·|b|)` time, `O(min(|a|,|b|))`
/// space. Distances are exact, not approximations.
///
/// ```
/// assert_eq!(smx_text::levenshtein("kitten", "sitting"), 3);
/// assert_eq!(smx_text::levenshtein("", "abc"), 3);
/// ```
pub fn levenshtein(a: &str, b: &str) -> usize {
    // Keep the shorter string in the inner dimension to minimise the row.
    let (short, long): (Vec<char>, Vec<char>) = {
        let ac: Vec<char> = a.chars().collect();
        let bc: Vec<char> = b.chars().collect();
        if ac.len() <= bc.len() {
            (ac, bc)
        } else {
            (bc, ac)
        }
    };
    if short.is_empty() {
        return long.len();
    }
    let mut row: Vec<usize> = (0..=short.len()).collect();
    for (i, lc) in long.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            let next = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = next;
        }
    }
    row[short.len()]
}

/// Damerau–Levenshtein distance (optimal string alignment variant):
/// Levenshtein plus adjacent-transposition as a unit-cost edit.
///
/// ```
/// assert_eq!(smx_text::damerau_levenshtein("ab", "ba"), 1);
/// assert_eq!(smx_text::levenshtein("ab", "ba"), 2);
/// ```
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    let (n, m) = (ac.len(), bc.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    // Three rolling rows: i-2, i-1, i.
    let mut prev2: Vec<usize> = vec![0; m + 1];
    let mut prev1: Vec<usize> = (0..=m).collect();
    let mut cur: Vec<usize> = vec![0; m + 1];
    for i in 1..=n {
        cur[0] = i;
        for j in 1..=m {
            let cost = usize::from(ac[i - 1] != bc[j - 1]);
            let mut best = (prev1[j - 1] + cost)
                .min(prev1[j] + 1)
                .min(cur[j - 1] + 1);
            if i > 1 && j > 1 && ac[i - 1] == bc[j - 2] && ac[i - 2] == bc[j - 1] {
                best = best.min(prev2[j - 2] + 1);
            }
            cur[j] = best;
        }
        std::mem::swap(&mut prev2, &mut prev1);
        std::mem::swap(&mut prev1, &mut cur);
    }
    prev1[m]
}

/// Normalised Levenshtein similarity: `1 - dist / max(|a|, |b|)`.
///
/// Returns `1.0` for two empty strings (they are identical).
///
/// ```
/// let s = smx_text::levenshtein_similarity("author", "authors");
/// assert!((s - 6.0 / 7.0).abs() < 1e-12);
/// ```
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    clamp01(1.0 - levenshtein(a, b) as f64 / max_len as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("book", "back"), 2);
    }

    #[test]
    fn distance_is_symmetric() {
        for (a, b) in [("kitten", "sitting"), ("schema", "schemata"), ("", "x")] {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
        }
    }

    #[test]
    fn distance_unicode_is_scalar_based() {
        // 2 scalar substitutions, regardless of UTF-8 byte widths.
        assert_eq!(levenshtein("naïve", "naive"), 1);
        assert_eq!(levenshtein("日本語", "日本"), 1);
    }

    #[test]
    fn damerau_counts_transposition_once() {
        assert_eq!(damerau_levenshtein("author", "auhtor"), 1);
        assert_eq!(damerau_levenshtein("ca", "abc"), 3);
        assert_eq!(damerau_levenshtein("", "abc"), 3);
        assert_eq!(damerau_levenshtein("abc", "abc"), 0);
    }

    #[test]
    fn damerau_never_exceeds_levenshtein() {
        for (a, b) in [("ab", "ba"), ("price", "pierce"), ("isbn", "issn")] {
            assert!(damerau_levenshtein(a, b) <= levenshtein(a, b));
        }
    }

    #[test]
    fn similarity_range_and_identity() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("title", "title"), 1.0);
        assert_eq!(levenshtein_similarity("a", "b"), 0.0);
        let s = levenshtein_similarity("publisher", "publish");
        assert!(s > 0.7 && s < 1.0);
    }

    #[test]
    fn triangle_inequality_holds_for_distance() {
        let (a, b, c) = ("order", "ordre", "odors");
        assert!(levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c));
    }
}

//! Edit-distance measures.
//!
//! [`levenshtein`] is the classic insert/delete/substitute distance;
//! [`damerau_levenshtein`] additionally allows adjacent transpositions,
//! which matters for typo-ridden element names (`adress`, `recieve`).
//! [`levenshtein_similarity`] normalises the distance into a `[0, 1]`
//! similarity by dividing by the longer input's length.

use crate::clamp01;

/// Levenshtein edit distance between `a` and `b`, in Unicode scalar values.
///
/// Exact distances via a tiered implementation, fastest first:
///
/// 1. **Myers bit-parallel** (`O(|b|)` words of work) when both inputs are
///    ASCII and the shorter fits in one 64-bit word — the common case for
///    schema element names, and the path the matching cost-matrix fill
///    leans on;
/// 2. byte-slice two-row DP for longer ASCII inputs (no `Vec<char>`
///    allocation);
/// 3. the classic `char`-based two-row DP for anything non-ASCII.
///
/// ```
/// assert_eq!(smx_text::levenshtein("kitten", "sitting"), 3);
/// assert_eq!(smx_text::levenshtein("", "abc"), 3);
/// ```
pub fn levenshtein(a: &str, b: &str) -> usize {
    if a.is_ascii() && b.is_ascii() {
        let (short, long) = if a.len() <= b.len() {
            (a.as_bytes(), b.as_bytes())
        } else {
            (b.as_bytes(), a.as_bytes())
        };
        if short.is_empty() {
            return long.len();
        }
        if short.len() <= 64 {
            return myers_64(short, long);
        }
        return two_row_dp(short, long);
    }
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    let (short, long) = if ac.len() <= bc.len() {
        (ac, bc)
    } else {
        (bc, ac)
    };
    if short.is_empty() {
        return long.len();
    }
    two_row_dp(&short, &long)
}

/// Build the Myers pattern table of an ASCII pattern: `peq[c]` has bit
/// `i` set iff `short[i] == c`. Requires `1 <= short.len() <= 64`. The
/// table depends only on the pattern, so row-kernel sweeps build it once
/// per label and reuse it across a whole candidate row.
pub(crate) fn myers_pattern(short: &[u8]) -> [u64; 128] {
    debug_assert!(!short.is_empty() && short.len() <= 64);
    let mut peq = [0u64; 128];
    for (i, &c) in short.iter().enumerate() {
        peq[usize::from(c & 0x7f)] |= 1 << i;
    }
    peq
}

/// Myers (1999) bit-parallel edit distance: the DP column is packed into
/// one 64-bit word of vertical-delta bits, advanced once per character of
/// `long`. Requires `1 <= short.len() <= 64`.
fn myers_64(short: &[u8], long: &[u8]) -> usize {
    myers_64_prepared(&myers_pattern(short), short.len(), long)
}

/// The Myers advance loop against a prebuilt pattern table. `short_len`
/// must be the pattern length the table was built for (`1..=64`).
pub(crate) fn myers_64_prepared(peq: &[u64; 128], short_len: usize, long: &[u8]) -> usize {
    debug_assert!((1..=64).contains(&short_len));
    let mut pv = !0u64; // vertical delta +1 bits
    let mut mv = 0u64; // vertical delta -1 bits
    let mut score = short_len;
    let high = 1u64 << (short_len - 1);
    for &c in long {
        let eq = peq[usize::from(c & 0x7f)];
        let xv = eq | mv;
        let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
        let mut ph = mv | !(xh | pv);
        let mh = pv & xh;
        if ph & high != 0 {
            score += 1;
        }
        if mh & high != 0 {
            score -= 1;
        }
        ph = (ph << 1) | 1;
        pv = (mh << 1) | !(xv | ph);
        mv = ph & xv;
    }
    score
}

/// One step of the Myers recurrence — the body [`myers_64_prepared`]
/// runs per candidate byte, factored out so the unrolled variant
/// replays exactly the same operation sequence.
#[inline(always)]
fn myers_step(peq: &[u64; 128], c: u8, pv: &mut u64, mv: &mut u64, score: &mut usize, high: u64) {
    let eq = peq[usize::from(c & 0x7f)];
    let xv = eq | *mv;
    let xh = (((eq & *pv).wrapping_add(*pv)) ^ *pv) | eq;
    let mut ph = *mv | !(xh | *pv);
    let mh = *pv & xh;
    *score += usize::from(ph & high != 0);
    *score -= usize::from(mh & high != 0);
    ph = (ph << 1) | 1;
    *pv = (mh << 1) | !(xv | ph);
    *mv = ph & xv;
}

/// [`myers_64_prepared`] with the advance loop unrolled four candidate
/// bytes per block, keeping the `pv`/`mv` column state and the prepared
/// pattern table register/cache-resident across the block — the variant
/// the vectorised kernel tiers dispatch to for whole-row sweeps. The
/// recurrence is inherently sequential, so unrolling only removes loop
/// overhead; the step sequence (and therefore the score) is identical
/// to the oracle on every input.
pub(crate) fn myers_64_prepared_unrolled(peq: &[u64; 128], short_len: usize, long: &[u8]) -> usize {
    debug_assert!((1..=64).contains(&short_len));
    let mut pv = !0u64;
    let mut mv = 0u64;
    let mut score = short_len;
    let high = 1u64 << (short_len - 1);
    let mut blocks = long.chunks_exact(4);
    for block in &mut blocks {
        myers_step(peq, block[0], &mut pv, &mut mv, &mut score, high);
        myers_step(peq, block[1], &mut pv, &mut mv, &mut score, high);
        myers_step(peq, block[2], &mut pv, &mut mv, &mut score, high);
        myers_step(peq, block[3], &mut pv, &mut mv, &mut score, high);
    }
    for &c in blocks.remainder() {
        myers_step(peq, c, &mut pv, &mut mv, &mut score, high);
    }
    score
}

/// Two-row dynamic program over any symbol slice: `O(|short|·|long|)`
/// time, one row of space. `short` must be the shorter, non-empty input.
pub(crate) fn two_row_dp<T: PartialEq>(short: &[T], long: &[T]) -> usize {
    let mut row: Vec<usize> = (0..=short.len()).collect();
    for (i, lc) in long.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            let next = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = next;
        }
    }
    row[short.len()]
}

/// Damerau–Levenshtein distance (optimal string alignment variant):
/// Levenshtein plus adjacent-transposition as a unit-cost edit.
///
/// ```
/// assert_eq!(smx_text::damerau_levenshtein("ab", "ba"), 1);
/// assert_eq!(smx_text::levenshtein("ab", "ba"), 2);
/// ```
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    let (n, m) = (ac.len(), bc.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    // Three rolling rows: i-2, i-1, i.
    let mut prev2: Vec<usize> = vec![0; m + 1];
    let mut prev1: Vec<usize> = (0..=m).collect();
    let mut cur: Vec<usize> = vec![0; m + 1];
    for i in 1..=n {
        cur[0] = i;
        for j in 1..=m {
            let cost = usize::from(ac[i - 1] != bc[j - 1]);
            let mut best = (prev1[j - 1] + cost).min(prev1[j] + 1).min(cur[j - 1] + 1);
            if i > 1 && j > 1 && ac[i - 1] == bc[j - 2] && ac[i - 2] == bc[j - 1] {
                best = best.min(prev2[j - 2] + 1);
            }
            cur[j] = best;
        }
        std::mem::swap(&mut prev2, &mut prev1);
        std::mem::swap(&mut prev1, &mut cur);
    }
    prev1[m]
}

/// Normalised Levenshtein similarity: `1 - dist / max(|a|, |b|)`.
///
/// Returns `1.0` for two empty strings (they are identical).
///
/// ```
/// let s = smx_text::levenshtein_similarity("author", "authors");
/// assert!((s - 6.0 / 7.0).abs() < 1e-12);
/// ```
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let scalar_len = |s: &str| {
        if s.is_ascii() {
            s.len()
        } else {
            s.chars().count()
        }
    };
    let max_len = scalar_len(a).max(scalar_len(b));
    if max_len == 0 {
        return 1.0;
    }
    clamp01(1.0 - levenshtein(a, b) as f64 / max_len as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("book", "back"), 2);
    }

    #[test]
    fn distance_is_symmetric() {
        for (a, b) in [("kitten", "sitting"), ("schema", "schemata"), ("", "x")] {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
        }
    }

    #[test]
    fn distance_unicode_is_scalar_based() {
        // 2 scalar substitutions, regardless of UTF-8 byte widths.
        assert_eq!(levenshtein("naïve", "naive"), 1);
        assert_eq!(levenshtein("日本語", "日本"), 1);
    }

    #[test]
    fn damerau_counts_transposition_once() {
        assert_eq!(damerau_levenshtein("author", "auhtor"), 1);
        assert_eq!(damerau_levenshtein("ca", "abc"), 3);
        assert_eq!(damerau_levenshtein("", "abc"), 3);
        assert_eq!(damerau_levenshtein("abc", "abc"), 0);
    }

    #[test]
    fn damerau_never_exceeds_levenshtein() {
        for (a, b) in [("ab", "ba"), ("price", "pierce"), ("isbn", "issn")] {
            assert!(damerau_levenshtein(a, b) <= levenshtein(a, b));
        }
    }

    #[test]
    fn similarity_range_and_identity() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("title", "title"), 1.0);
        assert_eq!(levenshtein_similarity("a", "b"), 0.0);
        let s = levenshtein_similarity("publisher", "publish");
        assert!(s > 0.7 && s < 1.0);
    }

    #[test]
    fn triangle_inequality_holds_for_distance() {
        let (a, b, c) = ("order", "ordre", "odors");
        assert!(levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c));
    }

    #[test]
    fn myers_agrees_with_dp_on_ascii() {
        // Deterministic pseudo-random ASCII pairs across the whole Myers
        // regime, 0..=70 — deliberately straddling the 64-bit word
        // boundary where the high-bit mask and carry propagation live.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize
        };
        let alphabet = b"abcdefgh_0123";
        let mut checked_at_word_boundary = 0usize;
        for round in 0..1500 {
            // First rounds sweep lengths systematically so every short-side
            // length 0..=70 (incl. exactly 64) is hit; the rest are random.
            let (la, lb) = if round <= 70 {
                (round, round + next() % 7)
            } else {
                (next() % 71, next() % 71)
            };
            let a: String = (0..la)
                .map(|_| alphabet[next() % alphabet.len()] as char)
                .collect();
            let b: String = (0..lb)
                .map(|_| alphabet[next() % alphabet.len()] as char)
                .collect();
            let via_public = levenshtein(&a, &b);
            let (short, long) = if a.len() <= b.len() {
                (a.as_bytes(), b.as_bytes())
            } else {
                (b.as_bytes(), a.as_bytes())
            };
            if short.len() == 64 {
                checked_at_word_boundary += 1;
            }
            let reference = if short.is_empty() {
                long.len()
            } else {
                two_row_dp(short, long)
            };
            assert_eq!(via_public, reference, "{a:?} vs {b:?}");
        }
        assert!(
            checked_at_word_boundary >= 5,
            "only {checked_at_word_boundary} pairs exercised the 64-char word boundary"
        );
    }

    #[test]
    fn myers_exact_word_boundary_pinned_cases() {
        // short side exactly 64: the `1 << 63` high bit is the score bit.
        let base: String = (0..64).map(|i| (b'a' + (i % 26) as u8) as char).collect();
        assert_eq!(levenshtein(&base, &base), 0);
        let mut one_sub = base.clone().into_bytes();
        one_sub[63] = b'!';
        let one_sub = String::from_utf8(one_sub).unwrap();
        assert_eq!(levenshtein(&base, &one_sub), 1);
        let mut first_sub = base.clone().into_bytes();
        first_sub[0] = b'!';
        let first_sub = String::from_utf8(first_sub).unwrap();
        assert_eq!(levenshtein(&base, &first_sub), 1);
        // 64 vs 65 (one insertion at the end, then at the front).
        let appended = format!("{base}z");
        assert_eq!(levenshtein(&base, &appended), 1);
        let prepended = format!("z{base}");
        assert_eq!(levenshtein(&base, &prepended), 1);
        // Completely disjoint 64-char strings: distance = 64.
        let other: String = std::iter::repeat_n('0', 64).collect();
        assert_eq!(levenshtein(&base, &other), 64);
    }

    #[test]
    fn long_ascii_takes_dp_path() {
        let a = "a".repeat(100);
        let b = format!("{}{}", "a".repeat(99), "b");
        assert_eq!(levenshtein(&a, &b), 1);
        assert_eq!(levenshtein(&a, &a), 0);
        // 65-char short side: just past the Myers word width.
        let c = "x".repeat(65);
        let d = "x".repeat(70);
        assert_eq!(levenshtein(&c, &d), 5);
    }

    #[test]
    fn unrolled_myers_equals_oracle() {
        // Pseudo-random ASCII pairs across the Myers regime, plus block
        // remainders 0..=3 — the unrolled loop must replay the oracle's
        // exact step sequence on every length.
        let mut state = 0x9e37_79b9_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let alphabet = b"abcdef_012";
        for round in 0..600 {
            let la = 1 + round % 64;
            let lb = next() % 80;
            let a: Vec<u8> = (0..la).map(|_| alphabet[next() % alphabet.len()]).collect();
            let b: Vec<u8> = (0..lb).map(|_| alphabet[next() % alphabet.len()]).collect();
            let peq = myers_pattern(&a);
            assert_eq!(
                myers_64_prepared_unrolled(&peq, a.len(), &b),
                myers_64_prepared(&peq, a.len(), &b),
                "{:?} vs {:?}",
                std::str::from_utf8(&a),
                std::str::from_utf8(&b)
            );
        }
    }

    #[test]
    fn mixed_ascii_unicode_consistent() {
        // One ASCII + one non-ASCII input exercises the char DP; distances
        // stay scalar-based.
        assert_eq!(levenshtein("nave", "naïve"), 1);
        assert_eq!(levenshtein("naïve", "nave"), 1);
    }
}

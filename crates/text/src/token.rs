//! Token-set similarity over identifier tokens.
//!
//! These measures first split both names with
//! [`split_identifier`] and then compare the token
//! sets: exact set measures (Jaccard, Dice, overlap) and the Monge–Elkan
//! hybrid that scores each token against its best fuzzy counterpart.

use crate::clamp01;
use crate::jaro::jaro_winkler;
use crate::normalize::{split_identifier, Token};
use std::collections::BTreeSet;

fn token_sets(a: &str, b: &str) -> (BTreeSet<Token>, BTreeSet<Token>) {
    (
        split_identifier(a).into_iter().collect(),
        split_identifier(b).into_iter().collect(),
    )
}

/// Jaccard similarity of the two names' token sets.
///
/// ```
/// assert_eq!(smx_text::jaccard_tokens("order_line", "lineOrder"), 1.0);
/// ```
pub fn jaccard_tokens(a: &str, b: &str) -> f64 {
    let (sa, sb) = token_sets(a, b);
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    clamp01(inter as f64 / union as f64)
}

/// Dice coefficient of the two names' token sets.
pub fn dice_tokens(a: &str, b: &str) -> f64 {
    let (sa, sb) = token_sets(a, b);
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    clamp01(2.0 * inter as f64 / (sa.len() + sb.len()) as f64)
}

/// Overlap coefficient: intersection over the smaller set. `1.0` whenever
/// one token set contains the other (`zip` ⊆ `zipCode`).
pub fn overlap_tokens(a: &str, b: &str) -> f64 {
    let (sa, sb) = token_sets(a, b);
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let min = sa.len().min(sb.len());
    if min == 0 {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count();
    clamp01(inter as f64 / min as f64)
}

/// Monge–Elkan hybrid similarity with Jaro–Winkler as the inner measure,
/// symmetrised by averaging both directions.
///
/// For each token of `a` take the best Jaro–Winkler score against any token
/// of `b`, average over `a`'s tokens; then the same with the roles swapped;
/// return the mean of the two directions.
pub fn monge_elkan(a: &str, b: &str) -> f64 {
    let ta = split_identifier(a);
    let tb = split_identifier(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let directed = |xs: &[Token], ys: &[Token]| -> f64 {
        let total: f64 = xs
            .iter()
            .map(|x| {
                ys.iter()
                    .map(|y| jaro_winkler(x.as_str(), y.as_str()))
                    .fold(0.0_f64, f64::max)
            })
            .sum();
        total / xs.len() as f64
    };
    clamp01((directed(&ta, &tb) + directed(&tb, &ta)) / 2.0)
}

/// The default token-level measure used by the matcher's objective
/// function: the maximum of exact Dice and fuzzy Monge–Elkan, so exact
/// token overlap is never under-scored and near-miss tokens still count.
pub fn token_set_similarity(a: &str, b: &str) -> f64 {
    dice_tokens(a, b).max(monge_elkan(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_set_measures() {
        assert_eq!(jaccard_tokens("a_b", "b_a"), 1.0);
        assert_eq!(dice_tokens("a_b", "b_a"), 1.0);
        assert!((jaccard_tokens("order_line", "order_item") - 1.0 / 3.0).abs() < 1e-12);
        assert!((dice_tokens("order_line", "order_item") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overlap_rewards_containment() {
        assert_eq!(overlap_tokens("zip", "zip_code"), 1.0);
        assert!(jaccard_tokens("zip", "zip_code") < 1.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(jaccard_tokens("", ""), 1.0);
        assert_eq!(dice_tokens("", ""), 1.0);
        assert_eq!(overlap_tokens("", ""), 1.0);
        assert_eq!(monge_elkan("", ""), 1.0);
        assert_eq!(jaccard_tokens("", "x"), 0.0);
        assert_eq!(overlap_tokens("", "x"), 0.0);
        assert_eq!(monge_elkan("", "x"), 0.0);
    }

    #[test]
    fn monge_elkan_fuzzy_matches() {
        // `customer` vs `custmer` (typo) should stay high.
        let s = monge_elkan("customerName", "custmerName");
        assert!(s > 0.9, "got {s}");
        // Unrelated names score low.
        assert!(monge_elkan("price", "author") < 0.6);
    }

    #[test]
    fn all_symmetric() {
        for (a, b) in [("orderLine", "lineItem"), ("isbn", "issn13"), ("a", "")] {
            assert!((jaccard_tokens(a, b) - jaccard_tokens(b, a)).abs() < 1e-12);
            assert!((dice_tokens(a, b) - dice_tokens(b, a)).abs() < 1e-12);
            assert!((overlap_tokens(a, b) - overlap_tokens(b, a)).abs() < 1e-12);
            assert!((monge_elkan(a, b) - monge_elkan(b, a)).abs() < 1e-12);
        }
    }

    #[test]
    fn combined_measure_dominates_dice() {
        for (a, b) in [("custNo", "customerNumber"), ("pubYear", "year")] {
            assert!(token_set_similarity(a, b) >= dice_tokens(a, b));
        }
    }
}

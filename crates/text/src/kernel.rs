//! The batched row kernel: score one query label against many candidate
//! labels without re-deriving any per-label data.
//!
//! The scalar scoring path ([`NameSimilarity`](crate::NameSimilarity)) re-normalises, re-splits,
//! and re-profiles *both* strings on every call — for a `k × n` cost
//! matrix fill that is `O(k·n)` tokenisations and n-gram profile builds
//! of the *same* handful of labels. This module splits that work at the
//! label boundary:
//!
//! * [`LabelProfile`] — everything pair-independent about one label,
//!   computed once: the normalised form and its scalar values, the Myers
//!   bit-vector pattern table (for ASCII labels up to 64 bytes), the
//!   packed SWAR lanes of the normalised form and of every token
//!   (`AsciiLanes`), the identifier tokens with per-token scalar
//!   values, the sorted distinct token set, and the flat hashed trigram
//!   profile ([`GramProfile`]);
//! * [`RowKernel`] — a query label's profile plus the pair loop: stream a
//!   whole row of candidate profiles through it and only the genuinely
//!   pairwise arithmetic (merge-intersections, the Myers advance loop,
//!   Jaro window scans) remains per pair.
//!
//! # Vectorised dispatch
//!
//! The remaining per-pair arithmetic runs under a
//! [`KernelVariant`] selected at kernel
//! construction ([`RowKernel::new`] uses the process-wide
//! [`KernelVariant::active`]; [`RowKernel::with_variant`] pins one).
//! Under the `Swar`/`Arch` tiers, ASCII labels and tokens of at most 64
//! scalars take the Jaro bitset fast path (`jaro_winkler_lanes`), gram
//! profiles merge through the four-lane blocked intersection, and the
//! Myers advance loop runs unrolled; inputs outside the fast-path regime
//! (non-ASCII, longer than a word) fall through to the scalar loops
//! **per measure**, so a single exotic label never disables
//! vectorisation for the rest of the row.
//!
//! # Score-identity contract
//!
//! `RowKernel::similarity(q, c)` is **bitwise identical**
//! (`f64::to_bits`) to `NameSimilarity::default().similarity(q.raw,
//! c.raw)`, and [`RowKernel::distance`] to the corresponding
//! `distance` — under *every* dispatch variant. The kernel replicates
//! the scalar path's exact evaluation order — the same weight sums over
//! [`combined::DEFAULT_NAME_MIX`](crate::combined), the same early
//! returns, the same clamps — and every vectorised leaf replays the
//! scalar leaf's greedy choices and float expressions exactly (see the
//! leaf modules for the per-primitive arguments). The matching crate's
//! effectiveness-bounds methodology rests on this: its repository score
//! store fills cost matrices through row kernels while
//! `compute_direct` re-scores through the scalar path, and
//! `tests/score_identity.rs` asserts the two agree to the bit. Property
//! tests in `crates/text/tests/properties.rs` and the dispatch
//! differential suite in `crates/text/tests/dispatch_differential.rs`
//! assert the contract for the kernel itself, across the whole dispatch
//! table.

use crate::clamp01;
use crate::combined::{SimilarityMeasure, DEFAULT_NAME_MIX};
use crate::dispatch::{eq_mask_fn, EqMaskFn, KernelVariant};
use crate::jaro::{jaro_winkler_chars, jaro_winkler_lanes};
use crate::levenshtein::{
    myers_64_prepared, myers_64_prepared_unrolled, myers_pattern, two_row_dp,
};
use crate::ngram::{dice_profiles, dice_profiles_blocked, GramProfile};
use crate::normalize::split_identifier;
use crate::swar::AsciiLanes;

/// One identifier token of a label: its scalar values (the form the
/// scalar Monge–Elkan loops compare) plus, when the token is ASCII and
/// fits one 64-bit mask, its packed SWAR lanes for the bitset Jaro fast
/// path.
#[derive(Debug, Clone)]
struct TokenData {
    /// The token's scalar values, in order.
    chars: Vec<char>,
    /// Packed lanes, present iff the token is ASCII with 1..=64 bytes.
    lanes: Option<AsciiLanes>,
}

/// Pair-independent preprocessing of one label, shared by every
/// comparison the label participates in.
#[derive(Debug, Clone)]
pub struct LabelProfile {
    /// The label as ingested (what raw-string equality checks compare).
    raw: String,
    /// `normalize_identifier(raw)` — the form character-level measures see.
    norm: String,
    /// Scalar values of `norm` (Jaro windows, non-ASCII edit distance).
    norm_chars: Vec<char>,
    /// Whether `norm` is pure ASCII (selects the byte-level edit paths).
    ascii: bool,
    /// `norm`'s length in scalar values (bytes when ASCII) — the
    /// normalisation denominator of Levenshtein similarity.
    scalar_len: usize,
    /// Myers pattern table of `norm`, present iff ASCII and 1..=64 bytes.
    peq: Option<Box<[u64; 128]>>,
    /// Packed SWAR lanes of `norm`, present under the same condition —
    /// the Jaro bitset fast path's operand.
    lanes: Option<AsciiLanes>,
    /// Identifier tokens of `raw` in split order, duplicates kept, each
    /// pre-collected to scalar values (Monge–Elkan's inner loops) and
    /// packed lanes where eligible.
    tokens: Vec<TokenData>,
    /// Sorted distinct token texts (Dice over token sets).
    token_set: Vec<String>,
    /// Flat hashed trigram profile of `norm`.
    grams: GramProfile,
}

impl LabelProfile {
    /// Preprocess `label`. This is the only place label-level work
    /// happens; everything downstream is pairwise arithmetic.
    pub fn new(label: &str) -> Self {
        let split = split_identifier(label);
        let norm: String = split.iter().map(|t| t.as_str()).collect();
        let norm_chars: Vec<char> = norm.chars().collect();
        let ascii = norm.is_ascii();
        let scalar_len = if ascii { norm.len() } else { norm_chars.len() };
        let peq = (ascii && !norm.is_empty() && norm.len() <= 64)
            .then(|| Box::new(myers_pattern(norm.as_bytes())));
        let lanes = AsciiLanes::pack(norm.as_bytes());
        let grams = GramProfile::trigrams(&norm);
        let mut token_set: Vec<String> = split.iter().map(|t| t.as_str().to_owned()).collect();
        token_set.sort_unstable();
        token_set.dedup();
        let tokens: Vec<TokenData> = split
            .iter()
            .map(|t| TokenData {
                chars: t.as_str().chars().collect(),
                lanes: AsciiLanes::pack(t.as_str().as_bytes()),
            })
            .collect();
        LabelProfile {
            raw: label.to_owned(),
            norm,
            norm_chars,
            ascii,
            scalar_len,
            peq,
            lanes,
            tokens,
            token_set,
            grams,
        }
    }

    /// The label as ingested.
    pub fn raw(&self) -> &str {
        &self.raw
    }

    /// The normalised identifier form.
    pub fn normalized(&self) -> &str {
        &self.norm
    }

    /// `norm`'s length in scalar values — the Levenshtein-similarity
    /// normalisation denominator (bytes when ASCII, chars otherwise;
    /// the two coincide on ASCII input).
    pub fn scalar_len(&self) -> usize {
        self.scalar_len
    }

    /// The flat hashed trigram profile of the normalised form — shared
    /// with candidate-generation filter indexes so ingest builds the
    /// gram lanes once.
    pub fn grams(&self) -> &GramProfile {
        &self.grams
    }

    /// Sorted distinct token texts (the sets Dice-over-tokens compares).
    pub fn token_set(&self) -> &[String] {
        &self.token_set
    }
}

/// Count of common elements of two sorted, deduplicated string slices —
/// the token-set intersection, by linear merge.
fn sorted_intersection(a: &[String], b: &[String]) -> usize {
    let (mut i, mut j) = (0usize, 0usize);
    let mut inter = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    inter
}

/// A query label prepared for streaming a row of candidates through the
/// default name-similarity mix under one dispatch variant.
#[derive(Debug, Clone)]
pub struct RowKernel {
    query: LabelProfile,
    /// The dispatched inner-loop tier (resolved: always supported).
    variant: KernelVariant,
    /// The tier's equality-scan primitive, hoisted out of the pair loop.
    eq: EqMaskFn,
}

impl RowKernel {
    /// Preprocess `label` as the row's query, under the process-wide
    /// [`KernelVariant::active`] dispatch variant.
    pub fn new(label: &str) -> Self {
        RowKernel::with_variant(label, KernelVariant::active())
    }

    /// Preprocess `label` under an explicit dispatch variant (resolved
    /// through [`KernelVariant::resolve`], so an unsupported request
    /// degrades to the scalar oracle instead of failing).
    pub fn with_variant(label: &str, variant: KernelVariant) -> Self {
        RowKernel::from_profile_with_variant(LabelProfile::new(label), variant)
    }

    /// Wrap an existing profile as the query (active dispatch variant).
    pub fn from_profile(query: LabelProfile) -> Self {
        RowKernel::from_profile_with_variant(query, KernelVariant::active())
    }

    /// Wrap an existing profile under an explicit dispatch variant.
    pub fn from_profile_with_variant(query: LabelProfile, variant: KernelVariant) -> Self {
        let variant = variant.resolve();
        RowKernel {
            query,
            variant,
            eq: eq_mask_fn(variant),
        }
    }

    /// The query's profile.
    pub fn profile(&self) -> &LabelProfile {
        &self.query
    }

    /// The dispatch variant this kernel's pair loops run under.
    pub fn variant(&self) -> KernelVariant {
        self.variant
    }

    /// Name similarity of the query and `candidate` — bitwise identical
    /// to `NameSimilarity::default().similarity(query, candidate)`.
    pub fn similarity(&self, candidate: &LabelProfile) -> f64 {
        // Mirrors WeightedSimilarity::eval term for term: raw-equality
        // fast path, weight total and weighted score summed in mix order.
        if self.query.raw == candidate.raw {
            return 1.0;
        }
        let total_weight: f64 = DEFAULT_NAME_MIX.iter().map(|&(_, w)| w).sum();
        let score: f64 = DEFAULT_NAME_MIX
            .iter()
            .map(|&(m, w)| w * self.measure(m, candidate))
            .sum();
        clamp01(score / total_weight)
    }

    /// Name dissimilarity `1 - similarity` — the quantity objective
    /// functions sum; bitwise identical to `NameSimilarity::distance`.
    pub fn distance(&self, candidate: &LabelProfile) -> f64 {
        1.0 - self.similarity(candidate)
    }

    /// Stream a whole candidate row, appending one distance per profile.
    pub fn distances_into(&self, candidates: &[LabelProfile], out: &mut Vec<f64>) {
        out.reserve(candidates.len());
        out.extend(candidates.iter().map(|c| self.distance(c)));
    }

    /// Whether this kernel's pair loops run the vectorised tiers (the
    /// scalar oracle skips every fast path).
    #[inline]
    fn vectorised(&self) -> bool {
        self.variant != KernelVariant::Scalar
    }

    /// One base measure on preprocessed profiles (cf.
    /// `SimilarityMeasure::eval` on raw strings).
    fn measure(&self, measure: SimilarityMeasure, candidate: &LabelProfile) -> f64 {
        let (q, c) = (&self.query, candidate);
        match measure {
            SimilarityMeasure::Trigram => {
                // trigram_similarity(norm_q, norm_c): equal normalised
                // forms short-circuit before the profiles are consulted.
                if q.norm == c.norm {
                    1.0
                } else if self.vectorised() {
                    dice_profiles_blocked(&q.grams, &c.grams)
                } else {
                    dice_profiles(&q.grams, &c.grams)
                }
            }
            SimilarityMeasure::JaroWinkler => {
                if self.vectorised() {
                    if let (Some(a), Some(b)) = (&q.lanes, &c.lanes) {
                        return jaro_winkler_lanes(a, b, self.eq);
                    }
                }
                jaro_winkler_chars(&q.norm_chars, &c.norm_chars)
            }
            SimilarityMeasure::TokenSet => self.dice_tokens(c).max(self.monge_elkan(c)),
            SimilarityMeasure::Levenshtein => self.levenshtein_similarity(c),
        }
    }

    /// Dice over the precomputed distinct token sets (cf. `dice_tokens`).
    fn dice_tokens(&self, c: &LabelProfile) -> f64 {
        let (sa, sb) = (&self.query.token_set, &c.token_set);
        if sa.is_empty() && sb.is_empty() {
            return 1.0;
        }
        let inter = sorted_intersection(sa, sb);
        clamp01(2.0 * inter as f64 / (sa.len() + sb.len()) as f64)
    }

    /// Jaro–Winkler of one token pair: the bitset fast path when both
    /// tokens carry packed lanes and the tier is vectorised, the scalar
    /// window scan otherwise — identical values either way.
    #[inline]
    fn jw_tokens(&self, x: &TokenData, y: &TokenData) -> f64 {
        if self.vectorised() {
            if let (Some(a), Some(b)) = (&x.lanes, &y.lanes) {
                return jaro_winkler_lanes(a, b, self.eq);
            }
        }
        jaro_winkler_chars(&x.chars, &y.chars)
    }

    /// Monge–Elkan over the precomputed token scalar values (cf.
    /// `monge_elkan`): same directed sums, same symmetrisation.
    fn monge_elkan(&self, c: &LabelProfile) -> f64 {
        let (ta, tb) = (&self.query.tokens, &c.tokens);
        if ta.is_empty() && tb.is_empty() {
            return 1.0;
        }
        if ta.is_empty() || tb.is_empty() {
            return 0.0;
        }
        let directed = |xs: &[TokenData], ys: &[TokenData]| -> f64 {
            let total: f64 = xs
                .iter()
                .map(|x| {
                    ys.iter()
                        .map(|y| self.jw_tokens(x, y))
                        .fold(0.0_f64, f64::max)
                })
                .sum();
            total / xs.len() as f64
        };
        clamp01((directed(ta, tb) + directed(tb, ta)) / 2.0)
    }

    /// Normalised Levenshtein similarity over the normalised forms (cf.
    /// `levenshtein_similarity` ∘ `normalize_identifier`).
    fn levenshtein_similarity(&self, c: &LabelProfile) -> f64 {
        let max_len = self.query.scalar_len.max(c.scalar_len);
        if max_len == 0 {
            return 1.0;
        }
        clamp01(1.0 - self.levenshtein_to(c) as f64 / max_len as f64)
    }

    /// Edit distance between the query's and `candidate`'s *normalised*
    /// forms — the tier selection of the scalar `levenshtein` replayed on
    /// preprocessed data: prepared Myers (unrolled under the vectorised
    /// dispatch tiers) when the shorter ASCII side has a pattern table,
    /// byte DP past 64 bytes, scalar-value DP when either side is
    /// non-ASCII. Exposed for the differential tests.
    pub fn levenshtein_to(&self, candidate: &LabelProfile) -> usize {
        let (a, b) = (&self.query, candidate);
        if a.ascii && b.ascii {
            let (short, long) = if a.norm.len() <= b.norm.len() {
                (a, b)
            } else {
                (b, a)
            };
            if short.norm.is_empty() {
                return long.norm.len();
            }
            if let Some(peq) = &short.peq {
                return if self.vectorised() {
                    myers_64_prepared_unrolled(peq, short.norm.len(), long.norm.as_bytes())
                } else {
                    myers_64_prepared(peq, short.norm.len(), long.norm.as_bytes())
                };
            }
            return two_row_dp(short.norm.as_bytes(), long.norm.as_bytes());
        }
        let (short, long) = if a.norm_chars.len() <= b.norm_chars.len() {
            (a, b)
        } else {
            (b, a)
        };
        if short.norm_chars.is_empty() {
            return long.norm_chars.len();
        }
        two_row_dp(&short.norm_chars, &long.norm_chars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combined::NameSimilarity;

    const LABELS: &[&str] = &[
        "",
        "title",
        "bookTitle",
        "Cust_Order-No2",
        "ISBN13",
        "naïve_Name",
        "日本語スキーマ",
        "a",
        "publisher",
        "the_quick_brown_fox_jumps_over_the_lazy_dog_many_many_times_xx",
    ];

    #[test]
    fn kernel_similarity_is_bitwise_scalar() {
        let scalar = NameSimilarity::default();
        for variant in KernelVariant::ALL {
            for &q in LABELS {
                let kernel = RowKernel::with_variant(q, variant);
                for &c in LABELS {
                    let profile = LabelProfile::new(c);
                    assert_eq!(
                        kernel.similarity(&profile).to_bits(),
                        scalar.similarity(q, c).to_bits(),
                        "similarity({q:?}, {c:?}) under {variant:?}"
                    );
                    assert_eq!(
                        kernel.distance(&profile).to_bits(),
                        scalar.distance(q, c).to_bits(),
                        "distance({q:?}, {c:?}) under {variant:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn row_sweep_matches_pointwise() {
        let kernel = RowKernel::new("custOrderNo");
        let profiles: Vec<LabelProfile> = LABELS.iter().map(|l| LabelProfile::new(l)).collect();
        let mut row = Vec::new();
        kernel.distances_into(&profiles, &mut row);
        assert_eq!(row.len(), profiles.len());
        for (p, &d) in profiles.iter().zip(&row) {
            assert_eq!(d.to_bits(), kernel.distance(p).to_bits());
        }
    }

    #[test]
    fn profile_accessors() {
        let p = LabelProfile::new("Cust_Order-No2");
        assert_eq!(p.raw(), "Cust_Order-No2");
        assert_eq!(p.normalized(), "custorderno2");
    }

    #[test]
    fn equal_raw_labels_short_circuit() {
        let kernel = RowKernel::new("bookTitle");
        assert_eq!(kernel.similarity(&LabelProfile::new("bookTitle")), 1.0);
        assert_eq!(kernel.distance(&LabelProfile::new("bookTitle")), 0.0);
    }

    #[test]
    fn default_kernel_runs_the_active_variant() {
        assert_eq!(RowKernel::new("title").variant(), KernelVariant::active());
        // Explicit requests resolve to a supported tier.
        let forced = RowKernel::with_variant("title", KernelVariant::Arch);
        assert!(forced.variant().is_supported());
    }
}

//! Weighted combinations of similarity measures.
//!
//! Real matchers (COMA, Cupid) combine several base measures. A
//! [`WeightedSimilarity`] holds `(measure, weight)` pairs and computes the
//! weighted arithmetic mean; [`NameSimilarity`] is the crate's default mix
//! used by the matching objective function.

use crate::clamp01;
use crate::jaro::jaro_winkler;
use crate::levenshtein::levenshtein_similarity;
use crate::ngram::trigram_similarity;
use crate::normalize::normalize_identifier;
use crate::token::token_set_similarity;

/// A named base measure selectable in a [`WeightedSimilarity`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimilarityMeasure {
    /// Normalised Levenshtein over normalised identifiers.
    Levenshtein,
    /// Jaro–Winkler over normalised identifiers.
    JaroWinkler,
    /// Trigram Dice over normalised identifiers.
    Trigram,
    /// Token-set similarity (Dice ⊔ Monge–Elkan) over raw identifiers.
    TokenSet,
}

impl SimilarityMeasure {
    /// Evaluate this measure on a pair of raw identifier names.
    pub fn eval(self, a: &str, b: &str) -> f64 {
        match self {
            SimilarityMeasure::Levenshtein => {
                levenshtein_similarity(&normalize_identifier(a), &normalize_identifier(b))
            }
            SimilarityMeasure::JaroWinkler => {
                jaro_winkler(&normalize_identifier(a), &normalize_identifier(b))
            }
            SimilarityMeasure::Trigram => {
                trigram_similarity(&normalize_identifier(a), &normalize_identifier(b))
            }
            SimilarityMeasure::TokenSet => token_set_similarity(a, b),
        }
    }
}

/// Weighted arithmetic mean of base measures.
///
/// Weights need not sum to one; they are renormalised at evaluation time.
/// An empty combination scores `0` for distinct inputs and `1` for equal
/// ones (degenerate but total).
#[derive(Debug, Clone)]
pub struct WeightedSimilarity {
    components: Vec<(SimilarityMeasure, f64)>,
}

impl WeightedSimilarity {
    /// Create a combination from `(measure, weight)` pairs. Non-positive
    /// weights are dropped.
    pub fn new(components: impl IntoIterator<Item = (SimilarityMeasure, f64)>) -> Self {
        Self {
            components: components
                .into_iter()
                .filter(|&(_, w)| w > 0.0 && w.is_finite())
                .collect(),
        }
    }

    /// The `(measure, weight)` pairs in this combination.
    pub fn components(&self) -> &[(SimilarityMeasure, f64)] {
        &self.components
    }

    /// Evaluate the weighted mean on a pair of names.
    pub fn eval(&self, a: &str, b: &str) -> f64 {
        if a == b {
            return 1.0;
        }
        let total_weight: f64 = self.components.iter().map(|&(_, w)| w).sum();
        if total_weight <= 0.0 {
            return 0.0;
        }
        let score: f64 = self.components.iter().map(|&(m, w)| w * m.eval(a, b)).sum();
        clamp01(score / total_weight)
    }
}

/// The default name-similarity mix used by the matching objective function:
/// trigram 0.3, Jaro–Winkler 0.3, token-set 0.3, Levenshtein 0.1.
///
/// The exact weights are not load-bearing for the bounds technique (the
/// paper only requires that S1 and S2 share *one* objective function); they
/// are chosen so that both character-level typos and token-level renames
/// score smoothly.
#[derive(Debug, Clone)]
pub struct NameSimilarity {
    inner: WeightedSimilarity,
}

/// The `(measure, weight)` pairs of the default mix, in evaluation order.
///
/// Shared between [`NameSimilarity::default`] and the row kernel
/// ([`crate::RowKernel`]), whose bitwise score-identity contract requires
/// both paths to sum exactly these weights in exactly this order.
pub(crate) const DEFAULT_NAME_MIX: [(SimilarityMeasure, f64); 4] = [
    (SimilarityMeasure::Trigram, 0.3),
    (SimilarityMeasure::JaroWinkler, 0.3),
    (SimilarityMeasure::TokenSet, 0.3),
    (SimilarityMeasure::Levenshtein, 0.1),
];

/// The default mix's `(measure, weight)` pairs, in evaluation order.
///
/// Admissible-bound machinery (candidate-generation filter indexes)
/// reproduces [`NameSimilarity`]'s weighted sum term by term from this
/// slice, so a per-measure upper bound composes into an upper bound on
/// the whole mix. Summing weights in slice order reproduces
/// `WeightedSimilarity::eval`'s exact float total.
pub fn default_name_mix() -> &'static [(SimilarityMeasure, f64)] {
    &DEFAULT_NAME_MIX
}

impl Default for NameSimilarity {
    fn default() -> Self {
        Self {
            inner: WeightedSimilarity::new(DEFAULT_NAME_MIX),
        }
    }
}

impl NameSimilarity {
    /// Similarity of two element names in `[0, 1]`.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        self.inner.eval(a, b)
    }

    /// Dissimilarity `1 - similarity`, the quantity objective functions sum.
    pub fn distance(&self, a: &str, b: &str) -> f64 {
        1.0 - self.similarity(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_renormalised() {
        let half = WeightedSimilarity::new([(SimilarityMeasure::Levenshtein, 0.5)]);
        let twice = WeightedSimilarity::new([(SimilarityMeasure::Levenshtein, 2.0)]);
        assert!((half.eval("order", "ordre") - twice.eval("order", "ordre")).abs() < 1e-12);
    }

    #[test]
    fn nonpositive_weights_dropped() {
        let w = WeightedSimilarity::new([
            (SimilarityMeasure::Levenshtein, -1.0),
            (SimilarityMeasure::Trigram, f64::NAN),
        ]);
        assert!(w.components().is_empty());
        assert_eq!(w.eval("a", "b"), 0.0);
        assert_eq!(w.eval("a", "a"), 1.0);
    }

    #[test]
    fn default_mix_orders_sensibly() {
        let sim = NameSimilarity::default();
        let close = sim.similarity("customerName", "custName");
        let far = sim.similarity("customerName", "isbn");
        assert!(close > far, "close={close} far={far}");
        assert!(close > 0.5);
        assert!(far < 0.4);
    }

    #[test]
    fn identity_and_range() {
        let sim = NameSimilarity::default();
        assert_eq!(sim.similarity("publisher", "publisher"), 1.0);
        for (a, b) in [("a", "b"), ("pubYear", "year"), ("", "x")] {
            let s = sim.similarity(a, b);
            assert!((0.0..=1.0).contains(&s));
            assert!((sim.distance(a, b) - (1.0 - s)).abs() < 1e-12);
        }
    }

    #[test]
    fn symmetric() {
        let sim = NameSimilarity::default();
        for (a, b) in [("orderLine", "lineOrder"), ("title", "subtitle")] {
            assert!((sim.similarity(a, b) - sim.similarity(b, a)).abs() < 1e-12);
        }
    }
}

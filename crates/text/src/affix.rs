//! Prefix/suffix (affix) similarity.
//!
//! Element names in related schemas frequently share stems with differing
//! affixes (`custName` / `customerName`, `zip` / `zipCode`). Affix
//! similarity scores the length of the shared prefix or suffix relative to
//! the shorter input, which is robust against elongation.

use crate::clamp01;

/// Length (in scalar values) of the longest common prefix of `a` and `b`.
pub fn common_prefix_len(a: &str, b: &str) -> usize {
    a.chars().zip(b.chars()).take_while(|(x, y)| x == y).count()
}

/// Length (in scalar values) of the longest common suffix of `a` and `b`.
pub fn common_suffix_len(a: &str, b: &str) -> usize {
    a.chars()
        .rev()
        .zip(b.chars().rev())
        .take_while(|(x, y)| x == y)
        .count()
}

/// Shared-prefix length divided by the shorter string's length.
///
/// Two empty strings are identical, hence `1.0`.
///
/// ```
/// assert_eq!(smx_text::prefix_similarity("zipcode", "zip"), 1.0);
/// assert_eq!(smx_text::prefix_similarity("abc", "xbc"), 0.0);
/// ```
pub fn prefix_similarity(a: &str, b: &str) -> f64 {
    let min_len = a.chars().count().min(b.chars().count());
    if min_len == 0 {
        return if a.is_empty() && b.is_empty() {
            1.0
        } else {
            0.0
        };
    }
    clamp01(common_prefix_len(a, b) as f64 / min_len as f64)
}

/// Shared-suffix length divided by the shorter string's length.
///
/// ```
/// assert_eq!(smx_text::suffix_similarity("custName", "Name"), 1.0);
/// ```
pub fn suffix_similarity(a: &str, b: &str) -> f64 {
    let min_len = a.chars().count().min(b.chars().count());
    if min_len == 0 {
        return if a.is_empty() && b.is_empty() {
            1.0
        } else {
            0.0
        };
    }
    clamp01(common_suffix_len(a, b) as f64 / min_len as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_lengths() {
        assert_eq!(common_prefix_len("", ""), 0);
        assert_eq!(common_prefix_len("abc", "abd"), 2);
        assert_eq!(common_prefix_len("abc", "abc"), 3);
        assert_eq!(common_prefix_len("abc", "xyz"), 0);
    }

    #[test]
    fn suffix_lengths() {
        assert_eq!(common_suffix_len("abc", "xbc"), 2);
        assert_eq!(common_suffix_len("name", "custname"), 4);
        assert_eq!(common_suffix_len("a", "b"), 0);
    }

    #[test]
    fn similarity_range_and_identity() {
        assert_eq!(prefix_similarity("", ""), 1.0);
        assert_eq!(suffix_similarity("", ""), 1.0);
        assert_eq!(prefix_similarity("", "x"), 0.0);
        assert_eq!(prefix_similarity("same", "same"), 1.0);
        assert_eq!(suffix_similarity("same", "same"), 1.0);
    }

    #[test]
    fn symmetric() {
        for (a, b) in [("zip", "zipcode"), ("custno", "custnum"), ("", "z")] {
            assert_eq!(prefix_similarity(a, b), prefix_similarity(b, a));
            assert_eq!(suffix_similarity(a, b), suffix_similarity(b, a));
        }
    }

    #[test]
    fn unicode_scalars() {
        assert_eq!(common_prefix_len("naïve", "naïf"), 3);
        assert_eq!(common_suffix_len("café", "né"), 1);
    }
}

//! Character n-gram similarity.
//!
//! Strings are padded with `#` sentinels so that affixes contribute their
//! own grams (the COMA convention); profiles are multisets, and Jaccard /
//! Dice are computed over multiset intersections.

use crate::clamp01;
use std::collections::HashMap;

/// Sentinel used to pad strings before gram extraction.
const PAD: char = '#';

/// Multiset of character `n`-grams of `s`, with `n-1` sentinel pads on each
/// side. Keys are gram strings, values are occurrence counts.
///
/// For `n == 0` the profile is empty; for an empty string it is empty too.
///
/// ```
/// let p = smx_text::ngram_profile("ab", 2);
/// assert_eq!(p.get("#a"), Some(&1));
/// assert_eq!(p.get("ab"), Some(&1));
/// assert_eq!(p.get("b#"), Some(&1));
/// ```
pub fn ngram_profile(s: &str, n: usize) -> HashMap<String, u32> {
    let mut profile = HashMap::new();
    if n == 0 || s.is_empty() {
        return profile;
    }
    let mut padded: Vec<char> = Vec::with_capacity(s.chars().count() + 2 * (n - 1));
    padded.extend(std::iter::repeat_n(PAD, n - 1));
    padded.extend(s.chars());
    padded.extend(std::iter::repeat_n(PAD, n - 1));
    for window in padded.windows(n) {
        let gram: String = window.iter().collect();
        *profile.entry(gram).or_insert(0) += 1;
    }
    profile
}

fn multiset_sizes(a: &HashMap<String, u32>, b: &HashMap<String, u32>) -> (u64, u64, u64) {
    let inter: u64 = a
        .iter()
        .map(|(g, &ca)| u64::from(ca.min(b.get(g).copied().unwrap_or(0))))
        .sum();
    let size_a: u64 = a.values().map(|&c| u64::from(c)).sum();
    let size_b: u64 = b.values().map(|&c| u64::from(c)).sum();
    (inter, size_a, size_b)
}

/// Multiset Jaccard similarity of the `n`-gram profiles of `a` and `b`.
pub fn jaccard_ngram(a: &str, b: &str, n: usize) -> f64 {
    if a == b {
        return 1.0;
    }
    let (inter, sa, sb) = multiset_sizes(&ngram_profile(a, n), &ngram_profile(b, n));
    let union = sa + sb - inter;
    if union == 0 {
        return 1.0;
    }
    clamp01(inter as f64 / union as f64)
}

/// Multiset Dice coefficient of the `n`-gram profiles of `a` and `b`:
/// `2·|A ∩ B| / (|A| + |B|)`.
pub fn dice_ngram(a: &str, b: &str, n: usize) -> f64 {
    if a == b {
        return 1.0;
    }
    let (inter, sa, sb) = multiset_sizes(&ngram_profile(a, n), &ngram_profile(b, n));
    if sa + sb == 0 {
        return 1.0;
    }
    clamp01(2.0 * inter as f64 / (sa + sb) as f64)
}

/// Trigram Dice similarity — the most common n-gram configuration in the
/// schema-matching literature.
///
/// ```
/// assert!(smx_text::trigram_similarity("telephone", "phone") > 0.3);
/// assert_eq!(smx_text::trigram_similarity("x", "x"), 1.0);
/// ```
pub fn trigram_similarity(a: &str, b: &str) -> f64 {
    dice_ngram(a, b, 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_counts_duplicates() {
        let p = ngram_profile("aaa", 2);
        // #a, aa, aa, a#
        assert_eq!(p.get("aa"), Some(&2));
        assert_eq!(p.get("#a"), Some(&1));
        assert_eq!(p.get("a#"), Some(&1));
    }

    #[test]
    fn profile_edge_cases() {
        assert!(ngram_profile("", 3).is_empty());
        assert!(ngram_profile("abc", 0).is_empty());
        // n=1 means no padding.
        let p = ngram_profile("ab", 1);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn jaccard_and_dice_basics() {
        assert_eq!(jaccard_ngram("", "", 3), 1.0);
        assert_eq!(dice_ngram("", "", 3), 1.0);
        assert_eq!(jaccard_ngram("abc", "abc", 3), 1.0);
        assert_eq!(jaccard_ngram("abc", "xyz", 3), 0.0);
        let j = jaccard_ngram("night", "nacht", 2);
        let d = dice_ngram("night", "nacht", 2);
        assert!(j > 0.0 && j < 1.0);
        // Dice ≥ Jaccard always.
        assert!(d >= j);
    }

    #[test]
    fn symmetric() {
        for (a, b) in [("orders", "order"), ("isbn", "issn"), ("", "q")] {
            assert!((jaccard_ngram(a, b, 3) - jaccard_ngram(b, a, 3)).abs() < 1e-12);
            assert!((dice_ngram(a, b, 3) - dice_ngram(b, a, 3)).abs() < 1e-12);
        }
    }

    #[test]
    fn padding_makes_short_strings_comparable() {
        // Without padding "ab" has no trigram at all; with padding it does.
        assert!(trigram_similarity("ab", "ab") == 1.0);
        assert!(trigram_similarity("ab", "ac") > 0.0);
    }
}

//! Character n-gram similarity.
//!
//! Strings are padded with `#` sentinels so that affixes contribute their
//! own grams (the COMA convention); profiles are multisets, and Jaccard /
//! Dice are computed over multiset intersections.
//!
//! The similarity functions run on [`GramProfile`] — a flat, sorted
//! `Vec<(u64, u32)>` of gram keys and counts — intersected by a linear
//! merge, with no per-call `HashMap<String, u32>` or per-gram `String`
//! allocation. Grams whose UTF-8 form fits in 7 bytes (every ASCII
//! trigram) are packed *injectively* into their key, so the common case
//! is collision-free by construction; longer grams fall back to a
//! 56-bit FNV-1a hash in a disjoint key range. [`ngram_profile`] keeps
//! the original hash-map profile as the reference the tests compare
//! against.

use crate::clamp01;
use std::collections::HashMap;

/// Sentinel used to pad strings before gram extraction.
const PAD: char = '#';

/// Multiset of character `n`-grams of `s`, with `n-1` sentinel pads on each
/// side. Keys are gram strings, values are occurrence counts.
///
/// This is the *reference* profile representation: the similarity
/// functions ([`jaccard_ngram`], [`dice_ngram`]) use the flat
/// [`GramProfile`] instead, and the property tests assert both paths
/// agree. For `n == 0` the profile is empty; for an empty string it is
/// empty too.
///
/// ```
/// let p = smx_text::ngram_profile("ab", 2);
/// assert_eq!(p.get("#a"), Some(&1));
/// assert_eq!(p.get("ab"), Some(&1));
/// assert_eq!(p.get("b#"), Some(&1));
/// ```
pub fn ngram_profile(s: &str, n: usize) -> HashMap<String, u32> {
    let mut profile = HashMap::new();
    if n == 0 || s.is_empty() {
        return profile;
    }
    for window in padded(s, n).windows(n) {
        let gram: String = window.iter().collect();
        *profile.entry(gram).or_insert(0) += 1;
    }
    profile
}

/// The `#`-padded scalar-value sequence gram windows slide over.
fn padded(s: &str, n: usize) -> Vec<char> {
    let mut padded: Vec<char> = Vec::with_capacity(s.chars().count() + 2 * (n - 1));
    padded.extend(std::iter::repeat_n(PAD, n - 1));
    padded.extend(s.chars());
    padded.extend(std::iter::repeat_n(PAD, n - 1));
    padded
}

/// Key of one gram window.
///
/// Grams whose UTF-8 encoding fits in 7 bytes are packed bijectively:
/// byte `i` of the gram occupies bits `8i..8i+8` and the length sits in
/// the top byte (`1..=7`), so *distinct short grams always get distinct
/// keys*. Longer grams (only possible with multiple multi-byte scalars
/// in one window) hash via FNV-1a into a range whose top byte is `0xFF`,
/// disjoint from every packed key.
fn gram_key(window: &[char]) -> u64 {
    let mut buf = [0u8; 7];
    let mut len = 0usize;
    for &c in window {
        let l = c.len_utf8();
        if len + l > buf.len() {
            return gram_key_hashed(window);
        }
        c.encode_utf8(&mut buf[len..]);
        len += l;
    }
    let mut key = (len as u64) << 56;
    for (i, &b) in buf[..len].iter().enumerate() {
        key |= u64::from(b) << (8 * i);
    }
    key
}

/// FNV-1a fallback for grams longer than 7 UTF-8 bytes, tagged into the
/// `0xFF` top-byte range so it can never collide with a packed key.
fn gram_key_hashed(window: &[char]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    let mut utf8 = [0u8; 4];
    for &c in window {
        for &b in c.encode_utf8(&mut utf8).as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    (h & 0x00FF_FFFF_FFFF_FFFF) | (0xFF_u64 << 56)
}

/// Flat multiset of hashed character n-grams, stored
/// structure-of-arrays: gram keys sorted ascending in one flat `u64`
/// lane array, occurrence counts in a parallel array, plus the
/// multiset's total size.
///
/// Building one costs a single sort; intersecting two is a merge over
/// the sorted key lanes with no hashing and no allocation — the
/// representation repository label stores precompute per distinct label
/// at ingest. Two merge implementations exist: the element-at-a-time
/// scalar oracle ([`intersection`](GramProfile::intersection)) and a
/// four-lane block-skipping variant
/// ([`intersection_blocked`](GramProfile::intersection_blocked)) the
/// vectorised kernel tiers dispatch to; both return the same count on
/// every input (property-tested), so similarity values never depend on
/// the tier.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GramProfile {
    /// Distinct gram keys, sorted ascending — the flat compare lanes.
    keys: Vec<u64>,
    /// `counts[i]` is the multiplicity of `keys[i]`.
    counts: Vec<u32>,
    /// Sum of all counts — the multiset's cardinality `|A|`.
    total: u64,
}

/// Lanes per skip block in [`GramProfile::intersection_blocked`]: the
/// whole block is ruled out against the other side's current key with
/// one comparison against its maximum lane.
const GRAM_BLOCK_LANES: usize = 4;

impl GramProfile {
    /// Profile of the `n`-grams of `s` (with `#` padding, like
    /// [`ngram_profile`]). Empty for `n == 0` or an empty string.
    pub fn new(s: &str, n: usize) -> Self {
        if n == 0 || s.is_empty() {
            return GramProfile::default();
        }
        let padded = padded(s, n);
        let mut sorted: Vec<u64> = padded.windows(n).map(gram_key).collect();
        sorted.sort_unstable();
        let total = sorted.len() as u64;
        let mut keys: Vec<u64> = Vec::new();
        let mut counts: Vec<u32> = Vec::new();
        for key in sorted {
            match keys.last() {
                Some(&last) if last == key => *counts.last_mut().expect("parallel arrays") += 1,
                _ => {
                    keys.push(key);
                    counts.push(1);
                }
            }
        }
        GramProfile {
            keys,
            counts,
            total,
        }
    }

    /// Trigram profile — the configuration [`trigram_similarity`] and the
    /// matching row kernel use.
    pub fn trigrams(s: &str) -> Self {
        GramProfile::new(s, 3)
    }

    /// Reassemble a profile from its stored lanes — the inverse of
    /// reading [`keys`](GramProfile::keys) /
    /// [`counts`](GramProfile::counts) / [`total`](GramProfile::total),
    /// used by persistence layers that serialise profiles instead of
    /// re-deriving them from label text. The caller is trusted to hand
    /// back lanes in the invariant shape (`keys` sorted ascending and
    /// distinct, `counts` parallel, `total == counts.sum()`); debug
    /// builds assert it.
    pub fn from_parts(keys: Vec<u64>, counts: Vec<u32>, total: u64) -> Self {
        debug_assert_eq!(keys.len(), counts.len());
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]));
        debug_assert_eq!(total, counts.iter().map(|&c| u64::from(c)).sum::<u64>());
        GramProfile {
            keys,
            counts,
            total,
        }
    }

    /// The sorted distinct gram keys — the flat compare lanes.
    #[inline]
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// Occurrence counts parallel to [`keys`](GramProfile::keys).
    #[inline]
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// The multiset's total size `|A|` (sum of counts).
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether the profile holds no grams.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Number of *distinct* grams.
    pub fn distinct(&self) -> usize {
        self.keys.len()
    }

    /// Multiset intersection size `|A ∩ B|` via an element-at-a-time
    /// linear merge over the two sorted key lanes — the scalar oracle
    /// the blocked variant is differential-tested against.
    pub fn intersection(&self, other: &GramProfile) -> u64 {
        let (mut i, mut j) = (0usize, 0usize);
        let mut inter = 0u64;
        while i < self.keys.len() && j < other.keys.len() {
            let (ka, kb) = (self.keys[i], other.keys[j]);
            match ka.cmp(&kb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    inter += u64::from(self.counts[i].min(other.counts[j]));
                    i += 1;
                    j += 1;
                }
            }
        }
        inter
    }

    /// [`intersection`](GramProfile::intersection) with four-lane block
    /// skipping: whenever the next `GRAM_BLOCK_LANES` (four) keys of one side
    /// all sit strictly below the other side's current key (one compare
    /// against the block's maximum lane — keys are sorted), the whole
    /// block is skipped without touching its lanes individually. Runs of
    /// non-overlapping keys — the common case for distinct labels, whose
    /// profiles share only a few grams — cost one comparison per four
    /// lanes instead of one per element. Matching keys contribute
    /// `min(count_a, count_b)` exactly as the oracle does, so the result
    /// is always identical.
    pub fn intersection_blocked(&self, other: &GramProfile) -> u64 {
        const B: usize = GRAM_BLOCK_LANES;
        let (ak, bk) = (&self.keys[..], &other.keys[..]);
        let (mut i, mut j) = (0usize, 0usize);
        let mut inter = 0u64;
        while i < ak.len() && j < bk.len() {
            while i + B <= ak.len() && ak[i + B - 1] < bk[j] {
                i += B;
            }
            if i >= ak.len() {
                break;
            }
            while j + B <= bk.len() && bk[j + B - 1] < ak[i] {
                j += B;
            }
            if j >= bk.len() {
                break;
            }
            let (ka, kb) = (ak[i], bk[j]);
            if ka == kb {
                inter += u64::from(self.counts[i].min(other.counts[j]));
                i += 1;
                j += 1;
            } else if ka < kb {
                i += 1;
            } else {
                j += 1;
            }
        }
        inter
    }
}

/// `(|A ∩ B|, |A|, |B|)` of two profiles.
fn multiset_sizes(a: &GramProfile, b: &GramProfile) -> (u64, u64, u64) {
    (a.intersection(b), a.total, b.total)
}

/// Multiset Jaccard similarity of the `n`-gram profiles of `a` and `b`.
pub fn jaccard_ngram(a: &str, b: &str, n: usize) -> f64 {
    if a == b {
        return 1.0;
    }
    jaccard_profiles(&GramProfile::new(a, n), &GramProfile::new(b, n))
}

/// Jaccard over prebuilt profiles. Callers must handle the `a == b` fast
/// path themselves (equal strings short-circuit to `1.0` in
/// [`jaccard_ngram`] *before* profiles are consulted).
pub(crate) fn jaccard_profiles(pa: &GramProfile, pb: &GramProfile) -> f64 {
    let (inter, sa, sb) = multiset_sizes(pa, pb);
    let union = sa + sb - inter;
    if union == 0 {
        return 1.0;
    }
    clamp01(inter as f64 / union as f64)
}

/// Multiset Dice coefficient of the `n`-gram profiles of `a` and `b`:
/// `2·|A ∩ B| / (|A| + |B|)`.
pub fn dice_ngram(a: &str, b: &str, n: usize) -> f64 {
    if a == b {
        return 1.0;
    }
    dice_profiles(&GramProfile::new(a, n), &GramProfile::new(b, n))
}

/// Dice over prebuilt profiles (same fast-path contract as
/// [`jaccard_profiles`]).
pub(crate) fn dice_profiles(pa: &GramProfile, pb: &GramProfile) -> f64 {
    let (inter, sa, sb) = multiset_sizes(pa, pb);
    if sa + sb == 0 {
        return 1.0;
    }
    clamp01(2.0 * inter as f64 / (sa + sb) as f64)
}

/// [`dice_profiles`] with the intersection computed by the blocked
/// (four-lane skipping) merge — what the vectorised kernel tiers call.
/// Identical result by the intersection equivalence.
pub(crate) fn dice_profiles_blocked(pa: &GramProfile, pb: &GramProfile) -> f64 {
    let (inter, sa, sb) = (pa.intersection_blocked(pb), pa.total, pb.total);
    if sa + sb == 0 {
        return 1.0;
    }
    clamp01(2.0 * inter as f64 / (sa + sb) as f64)
}

/// Trigram Dice similarity — the most common n-gram configuration in the
/// schema-matching literature.
///
/// ```
/// assert!(smx_text::trigram_similarity("telephone", "phone") > 0.3);
/// assert_eq!(smx_text::trigram_similarity("x", "x"), 1.0);
/// ```
pub fn trigram_similarity(a: &str, b: &str) -> f64 {
    dice_ngram(a, b, 3)
}

/// Test-only reference implementations over the original
/// `HashMap<String, u32>` profiles ([`ngram_profile`]). Not part of the
/// supported API — kept so differential tests can assert the flat
/// [`GramProfile`] path reproduces the hash-map path exactly.
#[doc(hidden)]
pub mod reference {
    use super::{clamp01, ngram_profile};
    use std::collections::HashMap;

    fn multiset_sizes(a: &HashMap<String, u32>, b: &HashMap<String, u32>) -> (u64, u64, u64) {
        let inter: u64 = a
            .iter()
            .map(|(g, &ca)| u64::from(ca.min(b.get(g).copied().unwrap_or(0))))
            .sum();
        let size_a: u64 = a.values().map(|&c| u64::from(c)).sum();
        let size_b: u64 = b.values().map(|&c| u64::from(c)).sum();
        (inter, size_a, size_b)
    }

    /// Reference [`super::jaccard_ngram`].
    pub fn jaccard_ngram(a: &str, b: &str, n: usize) -> f64 {
        if a == b {
            return 1.0;
        }
        let (inter, sa, sb) = multiset_sizes(&ngram_profile(a, n), &ngram_profile(b, n));
        let union = sa + sb - inter;
        if union == 0 {
            return 1.0;
        }
        clamp01(inter as f64 / union as f64)
    }

    /// Reference [`super::dice_ngram`].
    pub fn dice_ngram(a: &str, b: &str, n: usize) -> f64 {
        if a == b {
            return 1.0;
        }
        let (inter, sa, sb) = multiset_sizes(&ngram_profile(a, n), &ngram_profile(b, n));
        if sa + sb == 0 {
            return 1.0;
        }
        clamp01(2.0 * inter as f64 / (sa + sb) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_counts_duplicates() {
        let p = ngram_profile("aaa", 2);
        // #a, aa, aa, a#
        assert_eq!(p.get("aa"), Some(&2));
        assert_eq!(p.get("#a"), Some(&1));
        assert_eq!(p.get("a#"), Some(&1));
        let flat = GramProfile::new("aaa", 2);
        assert_eq!(flat.total(), 4);
        assert_eq!(flat.distinct(), 3);
    }

    #[test]
    fn profile_edge_cases() {
        assert!(ngram_profile("", 3).is_empty());
        assert!(ngram_profile("abc", 0).is_empty());
        assert!(GramProfile::new("", 3).is_empty());
        assert!(GramProfile::new("abc", 0).is_empty());
        // n=1 means no padding.
        let p = ngram_profile("ab", 1);
        assert_eq!(p.len(), 2);
        assert_eq!(GramProfile::new("ab", 1).distinct(), 2);
    }

    #[test]
    fn packed_keys_are_injective_for_short_grams() {
        // Distinct ASCII trigrams must never share a key (packing is
        // bijective below 8 UTF-8 bytes).
        let grams = ["#ab", "ab#", "abc", "abd", "ba#", "###", "a#b"];
        let keys: Vec<u64> = grams
            .iter()
            .map(|g| gram_key(&g.chars().collect::<Vec<char>>()))
            .collect();
        for i in 0..keys.len() {
            for j in 0..i {
                assert_ne!(keys[i], keys[j], "{} vs {}", grams[i], grams[j]);
            }
        }
        // Multi-byte windows beyond 7 bytes land in the hashed range.
        let wide: Vec<char> = "日本語".chars().collect();
        assert_eq!(gram_key(&wide) >> 56, 0xFF);
        // Packed and hashed ranges are disjoint.
        assert!(keys.iter().all(|k| (k >> 56) <= 7));
    }

    #[test]
    fn flat_matches_reference_on_fixtures() {
        let pairs = [
            ("night", "nacht"),
            ("orders", "order"),
            ("", "q"),
            ("aaa", "aa"),
            ("naïve", "naive"),
            ("日本語スキーマ", "日本スキーマ"),
            ("custOrderNo", "custordernum"),
        ];
        for n in 1..=4 {
            for (a, b) in pairs {
                assert_eq!(
                    jaccard_ngram(a, b, n).to_bits(),
                    reference::jaccard_ngram(a, b, n).to_bits(),
                    "jaccard {a:?} {b:?} n={n}"
                );
                assert_eq!(
                    dice_ngram(a, b, n).to_bits(),
                    reference::dice_ngram(a, b, n).to_bits(),
                    "dice {a:?} {b:?} n={n}"
                );
            }
        }
    }

    #[test]
    fn jaccard_and_dice_basics() {
        assert_eq!(jaccard_ngram("", "", 3), 1.0);
        assert_eq!(dice_ngram("", "", 3), 1.0);
        assert_eq!(jaccard_ngram("abc", "abc", 3), 1.0);
        assert_eq!(jaccard_ngram("abc", "xyz", 3), 0.0);
        let j = jaccard_ngram("night", "nacht", 2);
        let d = dice_ngram("night", "nacht", 2);
        assert!(j > 0.0 && j < 1.0);
        // Dice ≥ Jaccard always.
        assert!(d >= j);
    }

    #[test]
    fn symmetric() {
        for (a, b) in [("orders", "order"), ("isbn", "issn"), ("", "q")] {
            assert!((jaccard_ngram(a, b, 3) - jaccard_ngram(b, a, 3)).abs() < 1e-12);
            assert!((dice_ngram(a, b, 3) - dice_ngram(b, a, 3)).abs() < 1e-12);
        }
    }

    #[test]
    fn padding_makes_short_strings_comparable() {
        // Without padding "ab" has no trigram at all; with padding it does.
        assert!(trigram_similarity("ab", "ab") == 1.0);
        assert!(trigram_similarity("ab", "ac") > 0.0);
    }

    #[test]
    fn blocked_intersection_equals_scalar_merge() {
        // Mixed lengths force every block-skip branch: short-vs-long,
        // block remainders, disjoint runs, heavy overlaps, duplicates.
        let inputs = [
            "",
            "a",
            "aaa",
            "night",
            "nacht",
            "custOrderNo",
            "custordernum",
            "the_quick_brown_fox_jumps_over_the_lazy_dog",
            "日本語スキーマ",
            "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
            "zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz",
        ];
        for n in 1..=4 {
            for a in inputs {
                for b in inputs {
                    let (pa, pb) = (GramProfile::new(a, n), GramProfile::new(b, n));
                    assert_eq!(
                        pa.intersection_blocked(&pb),
                        pa.intersection(&pb),
                        "{a:?} vs {b:?} n={n}"
                    );
                    assert_eq!(
                        dice_profiles_blocked(&pa, &pb).to_bits(),
                        dice_profiles(&pa, &pb).to_bits(),
                        "dice {a:?} vs {b:?} n={n}"
                    );
                }
            }
        }
    }
}

//! SWAR (SIMD-within-a-register) primitives for the row kernel's
//! vectorised inner loops — stable Rust, no `std::simd`, no intrinsics.
//!
//! The central type is [`AsciiLanes`]: an ASCII string of 1..=64 bytes
//! packed into eight `u64` lanes, eight bytes per lane, little-endian
//! within each lane (byte `i` of the string sits at bits `8·(i%8)` of
//! lane `i/8`). Packing once per label lets every later comparison run
//! eight characters at a time: [`AsciiLanes::eq_mask`] broadcasts a
//! needle byte across a lane, XORs, and runs an exact zero-byte detector
//! to produce a **position bitmask** — bit `j` set iff byte `j` of the
//! string equals the needle. The Jaro matching window, used-position
//! bookkeeping, and greedy first-match selection then all collapse to
//! single bitwise operations on those masks (see
//! [`jaro_winkler_lanes`](crate::jaro)).
//!
//! The zero-byte detector is the *exact* variant: for each byte `b` of
//! `x`, `t = (b & 0x7f) + 0x7f` sets bit 7 iff the low seven bits are
//! non-zero, so `!(t | x | 0x7f)` has bit 7 set iff `b == 0` — per byte,
//! with no inter-byte carries and no false positives (the classic
//! `(x - LO) & !x & HI` trick can flag a `0x01` byte sitting above a
//! genuine zero; that would silently corrupt greedy match selection).

/// Low seven bits of every byte.
const LO7: u64 = 0x7f7f_7f7f_7f7f_7f7f;
/// Bit 7 of every byte.
const HI: u64 = 0x8080_8080_8080_8080;
/// 0x01 in every byte — the broadcast multiplier.
const ONES: u64 = 0x0101_0101_0101_0101;

/// Gather multiplier: for `x` with at most one bit per byte, at bit
/// `8k`, `(x * GATHER) >> 56` has bit `k` set iff byte `k` was flagged.
/// Exact — every partial product `2^(8k + 7(j+1))` lands on a distinct
/// bit (a collision would need `8Δk = 7Δj` with both deltas in
/// `-7..=7`), so no carries, and bit `56 + k` receives exactly the
/// `(k, j = 7-k)` term.
const GATHER: u64 = 0x0102_0408_1020_4080;

/// Collapse per-byte flags (any of bits 8k+7 set, nothing else) into a
/// dense low byte: bit `k` set iff byte `k` was flagged.
#[inline]
pub(crate) fn collapse_byte_flags(flags: u64) -> u64 {
    debug_assert_eq!(flags & !HI, 0);
    ((flags >> 7).wrapping_mul(GATHER)) >> 56
}

/// An ASCII byte string of length 1..=64 packed into eight `u64` lanes
/// for SWAR and `std::arch` comparisons.
///
/// Unused bytes are zero; every mask-producing operation clips its
/// result with [`len_mask`](AsciiLanes::len_mask), so padding can never
/// alias a real position (even for a `0x00` needle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsciiLanes {
    /// The packed bytes; `lanes[i / 8] >> (8 * (i % 8))` holds byte `i`.
    lanes: [u64; 8],
    /// String length in bytes (1..=64).
    len: u8,
}

impl AsciiLanes {
    /// Pack `bytes` if they are pure ASCII with length 1..=64; `None`
    /// otherwise (callers fall back to the scalar path).
    pub fn pack(bytes: &[u8]) -> Option<Self> {
        if bytes.is_empty() || bytes.len() > 64 || !bytes.is_ascii() {
            return None;
        }
        let mut lanes = [0u64; 8];
        for (i, &b) in bytes.iter().enumerate() {
            lanes[i / 8] |= u64::from(b) << (8 * (i % 8));
        }
        Some(AsciiLanes {
            lanes,
            len: bytes.len() as u8,
        })
    }

    /// String length in bytes (1..=64 — packing rejects empty strings,
    /// so there is no `is_empty`).
    #[inline]
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// The raw lanes, for `std::arch` loads (64 contiguous bytes).
    #[inline]
    pub(crate) fn lanes(&self) -> &[u64; 8] {
        &self.lanes
    }

    /// Byte `i` of the packed string. `i` must be `< len`.
    #[inline]
    pub fn byte(&self, i: usize) -> u8 {
        debug_assert!(i < self.len());
        (self.lanes[i / 8] >> (8 * (i % 8))) as u8
    }

    /// Bitmask with one bit per valid position: bits `0..len`.
    #[inline]
    pub fn len_mask(&self) -> u64 {
        if self.len == 64 {
            !0
        } else {
            (1u64 << self.len) - 1
        }
    }

    /// Position bitmask of `needle`: bit `j` set iff byte `j` equals
    /// `needle`. Eight positions are compared per lane via broadcast +
    /// XOR + exact zero-byte detection, and the per-byte flags collapse
    /// to position bits with one branch-free gather multiply per lane.
    #[inline]
    pub fn eq_mask(&self, needle: u8) -> u64 {
        let bcast = u64::from(needle).wrapping_mul(ONES);
        let occupied = usize::from(self.len).div_ceil(8);
        let mut mask = 0u64;
        for (lane_idx, &lane) in self.lanes[..occupied].iter().enumerate() {
            let x = lane ^ bcast;
            // Exact per-byte zero detect: bit 7 of z set iff the byte
            // of x is zero (see module docs for why the exact form).
            let t = (x & LO7).wrapping_add(LO7);
            let z = !(t | x | LO7) & HI;
            mask |= collapse_byte_flags(z) << (8 * lane_idx);
        }
        mask & self.len_mask()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Oracle: positions of `needle` by a plain scan.
    fn eq_mask_scalar(bytes: &[u8], needle: u8) -> u64 {
        bytes
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b == needle)
            .fold(0u64, |m, (i, _)| m | 1 << i)
    }

    #[test]
    fn pack_rejects_invalid() {
        assert!(AsciiLanes::pack(b"").is_none());
        assert!(AsciiLanes::pack("naïve".as_bytes()).is_none());
        assert!(AsciiLanes::pack(&[b'a'; 65]).is_none());
        assert!(AsciiLanes::pack(&[b'a'; 64]).is_some());
    }

    #[test]
    fn bytes_round_trip() {
        let s = b"customer_order_no2";
        let lanes = AsciiLanes::pack(s).unwrap();
        assert_eq!(lanes.len(), s.len());
        for (i, &b) in s.iter().enumerate() {
            assert_eq!(lanes.byte(i), b, "byte {i}");
        }
    }

    #[test]
    fn eq_mask_matches_scalar_scan() {
        let cases: &[&[u8]] = &[
            b"a",
            b"abcabcabc",
            b"zzzzzzzz",
            b"the_quick_brown_fox_jumps_over_the_lazy_dog_0123456789_abcdef",
            &[b'q'; 64],
            b"ababababababababababababababababababababababababababababababab",
        ];
        for &s in cases {
            let lanes = AsciiLanes::pack(s).unwrap();
            for needle in 0u8..128 {
                assert_eq!(
                    lanes.eq_mask(needle),
                    eq_mask_scalar(s, needle),
                    "needle {needle:?} in {:?}",
                    std::str::from_utf8(s).unwrap()
                );
            }
        }
    }

    #[test]
    fn zero_needle_never_matches_padding() {
        // Padding bytes are 0x00; a 0x00 needle must still produce an
        // empty mask because len_mask clips it.
        let lanes = AsciiLanes::pack(b"abc").unwrap();
        assert_eq!(lanes.eq_mask(0), 0);
    }

    #[test]
    fn exact_detector_has_no_false_positive_above_a_match() {
        // The inexact haszero trick flags a 0x01 byte right above a zero
        // byte; after XOR with the broadcast needle this corresponds to a
        // byte whose value is needle^0x01 adjacent to a genuine match.
        let s = [b'b', b'b' ^ 0x01, b'x'];
        let lanes = AsciiLanes::pack(&s).unwrap();
        assert_eq!(lanes.eq_mask(b'b'), 0b001);
    }

    #[test]
    fn len_mask_boundaries() {
        assert_eq!(AsciiLanes::pack(b"a").unwrap().len_mask(), 1);
        assert_eq!(AsciiLanes::pack(&[b'x'; 64]).unwrap().len_mask(), !0);
        assert_eq!(AsciiLanes::pack(&[b'x'; 63]).unwrap().len_mask(), !0 >> 1);
    }
}

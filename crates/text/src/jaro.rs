//! Jaro and Jaro–Winkler similarity.
//!
//! Jaro similarity rewards matching characters within a sliding window and
//! penalises transpositions; Winkler's variant boosts pairs sharing a common
//! prefix, which suits identifier names (`custNo` vs `custNum`).

use crate::clamp01;

/// Jaro similarity in `[0, 1]`.
///
/// Matching window is `max(|a|,|b|)/2 - 1` as in the original definition.
///
/// ```
/// let s = smx_text::jaro("martha", "marhta");
/// assert!((s - 0.944_444_444).abs() < 1e-6);
/// ```
pub fn jaro(a: &str, b: &str) -> f64 {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    jaro_chars(&ac, &bc)
}

/// [`jaro`] over pre-collected scalar-value slices — the allocation the
/// string entry point pays per call is hoisted to the caller, so row
/// kernels can score one query against many candidates without
/// re-collecting either side. Bitwise identical to [`jaro`] on the
/// corresponding strings.
pub(crate) fn jaro_chars(ac: &[char], bc: &[char]) -> f64 {
    let (n, m) = (ac.len(), bc.len());
    if n == 0 && m == 0 {
        return 1.0;
    }
    if n == 0 || m == 0 {
        return 0.0;
    }
    let window = (n.max(m) / 2).saturating_sub(1);
    let mut b_matched = vec![false; m];
    let mut a_matches: Vec<char> = Vec::new();
    for (i, ai) in ac.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(m);
        for j in lo..hi {
            if !b_matched[j] && bc[j] == *ai {
                b_matched[j] = true;
                a_matches.push(*ai);
                break;
            }
        }
    }
    let matches = a_matches.len();
    if matches == 0 {
        return 0.0;
    }
    // Count transpositions: compare the matched characters in order.
    let b_matches: Vec<char> = bc
        .iter()
        .zip(b_matched.iter())
        .filter_map(|(c, &hit)| hit.then_some(*c))
        .collect();
    let transpositions = a_matches
        .iter()
        .zip(b_matches.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let mf = matches as f64;
    clamp01((mf / n as f64 + mf / m as f64 + (mf - transpositions as f64) / mf) / 3.0)
}

/// Jaro–Winkler similarity with the standard scaling factor `p = 0.1` and
/// prefix length capped at 4.
///
/// ```
/// assert!(smx_text::jaro_winkler("price", "prices") > smx_text::jaro("price", "prices"));
/// ```
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    jaro_winkler_chars(&ac, &bc)
}

/// [`jaro_winkler`] over pre-collected scalar-value slices (see
/// [`jaro_chars`]). Bitwise identical to the string entry point.
pub(crate) fn jaro_winkler_chars(ac: &[char], bc: &[char]) -> f64 {
    const SCALING: f64 = 0.1;
    const MAX_PREFIX: usize = 4;
    let j = jaro_chars(ac, bc);
    let prefix = ac
        .iter()
        .zip(bc.iter())
        .take(MAX_PREFIX)
        .take_while(|(x, y)| x == y)
        .count();
    clamp01(j + prefix as f64 * SCALING * (1.0 - j))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaro_known_values() {
        assert!((jaro("dwayne", "duane") - 0.822_222_222).abs() < 1e-6);
        assert!((jaro("dixon", "dicksonx") - 0.766_666_666).abs() < 1e-6);
    }

    #[test]
    fn jaro_edge_cases() {
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("", "abc"), 0.0);
        assert_eq!(jaro("abc", ""), 0.0);
        assert_eq!(jaro("abc", "abc"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_is_symmetric() {
        for (a, b) in [("martha", "marhta"), ("crate", "trace"), ("a", "ab")] {
            assert!((jaro(a, b) - jaro(b, a)).abs() < 1e-12);
        }
    }

    #[test]
    fn winkler_boost_only_with_shared_prefix() {
        // No shared prefix: winkler equals jaro.
        assert_eq!(jaro_winkler("abcd", "xbcd"), jaro("abcd", "xbcd"));
        // Shared prefix: strictly boosted (unless already 1).
        assert!(jaro_winkler("orderline", "orderitem") > jaro("orderline", "orderitem"));
        assert_eq!(jaro_winkler("same", "same"), 1.0);
    }

    #[test]
    fn winkler_prefix_capped_at_four() {
        let a = "abcdefgh";
        let b = "abcdefxx";
        let j = jaro(a, b);
        let expected = j + 4.0 * 0.1 * (1.0 - j);
        assert!((jaro_winkler(a, b) - expected).abs() < 1e-12);
    }
}

//! Jaro and Jaro–Winkler similarity.
//!
//! Jaro similarity rewards matching characters within a sliding window and
//! penalises transpositions; Winkler's variant boosts pairs sharing a common
//! prefix, which suits identifier names (`custNo` vs `custNum`).
//!
//! Two implementations coexist: the scalar window scan (`jaro_chars`,
//! the bitwise oracle) and a bitset fast path over packed
//! `AsciiLanes` for ASCII inputs of at most 64 scalars
//! (`jaro_winkler_lanes`), where match flags live in one `u64` per
//! side and the greedy window scan collapses to mask arithmetic. The
//! bitset path replays the oracle's exact greedy choices and final
//! float expression, so the two agree **bitwise** — the property suites
//! and the kernel dispatch differential tests enforce it.

use crate::clamp01;
use crate::dispatch::EqMaskFn;
use crate::swar::AsciiLanes;

/// Jaro similarity in `[0, 1]`.
///
/// Matching window is `max(|a|,|b|)/2 - 1` as in the original definition.
///
/// ```
/// let s = smx_text::jaro("martha", "marhta");
/// assert!((s - 0.944_444_444).abs() < 1e-6);
/// ```
pub fn jaro(a: &str, b: &str) -> f64 {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    jaro_chars(&ac, &bc)
}

/// [`jaro`] over pre-collected scalar-value slices — the allocation the
/// string entry point pays per call is hoisted to the caller, so row
/// kernels can score one query against many candidates without
/// re-collecting either side. Bitwise identical to [`jaro`] on the
/// corresponding strings.
pub(crate) fn jaro_chars(ac: &[char], bc: &[char]) -> f64 {
    let (n, m) = (ac.len(), bc.len());
    if n == 0 && m == 0 {
        return 1.0;
    }
    if n == 0 || m == 0 {
        return 0.0;
    }
    let window = (n.max(m) / 2).saturating_sub(1);
    let mut b_matched = vec![false; m];
    let mut a_matches: Vec<char> = Vec::new();
    for (i, ai) in ac.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(m);
        for j in lo..hi {
            if !b_matched[j] && bc[j] == *ai {
                b_matched[j] = true;
                a_matches.push(*ai);
                break;
            }
        }
    }
    let matches = a_matches.len();
    if matches == 0 {
        return 0.0;
    }
    // Count transpositions: compare the matched characters in order.
    let b_matches: Vec<char> = bc
        .iter()
        .zip(b_matched.iter())
        .filter_map(|(c, &hit)| hit.then_some(*c))
        .collect();
    let transpositions = a_matches
        .iter()
        .zip(b_matches.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let mf = matches as f64;
    clamp01((mf / n as f64 + mf / m as f64 + (mf - transpositions as f64) / mf) / 3.0)
}

/// Jaro–Winkler similarity with the standard scaling factor `p = 0.1` and
/// prefix length capped at 4.
///
/// ```
/// assert!(smx_text::jaro_winkler("price", "prices") > smx_text::jaro("price", "prices"));
/// ```
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    jaro_winkler_chars(&ac, &bc)
}

/// [`jaro_winkler`] over pre-collected scalar-value slices (see
/// [`jaro_chars`]). Bitwise identical to the string entry point.
pub(crate) fn jaro_winkler_chars(ac: &[char], bc: &[char]) -> f64 {
    const SCALING: f64 = 0.1;
    const MAX_PREFIX: usize = 4;
    let j = jaro_chars(ac, bc);
    let prefix = ac
        .iter()
        .zip(bc.iter())
        .take(MAX_PREFIX)
        .take_while(|(x, y)| x == y)
        .count();
    clamp01(j + prefix as f64 * SCALING * (1.0 - j))
}

/// Bitmask of positions `0..k` (callers guarantee `k <= 64`).
#[inline]
fn mask_below(k: usize) -> u64 {
    debug_assert!(k <= 64);
    if k >= 64 {
        !0
    } else {
        (1u64 << k) - 1
    }
}

/// [`jaro_chars`] over packed ASCII lanes: the greedy window scan with
/// match flags in one `u64` per side.
///
/// Per query character, the candidate set is a single expression —
/// `eq_mask & window_mask & !matched` — and its lowest set bit is
/// exactly the first eligible position the scalar loop would take, so
/// the greedy assignment (and therefore the match and transposition
/// counts, and the final float) is identical to the oracle's bit for
/// bit. The transposition count walks the two match masks in position
/// order, which reproduces the oracle's "compare matched characters in
/// order" pass via popcount-bounded prefix iteration.
///
/// `eq` is the equality-scan implementation of the dispatched variant
/// (SWAR or `std::arch`) — both produce identical masks.
pub(crate) fn jaro_lanes(a: &AsciiLanes, b: &AsciiLanes, eq: EqMaskFn) -> f64 {
    let (n, m) = (a.len(), b.len());
    let window = (n.max(m) / 2).saturating_sub(1);
    let mut a_matched = 0u64;
    let mut b_matched = 0u64;
    for i in 0..n {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(m);
        let window_mask = mask_below(hi) & !mask_below(lo);
        let candidates = eq(b, a.byte(i)) & window_mask & !b_matched;
        if candidates != 0 {
            // Lowest set bit = the scalar loop's first eligible j.
            b_matched |= candidates & candidates.wrapping_neg();
            a_matched |= 1u64 << i;
        }
    }
    let matches = a_matched.count_ones() as usize;
    if matches == 0 {
        return 0.0;
    }
    // Transpositions: zip the matched characters of both sides in
    // position order and count disagreeing pairs (the masks have equal
    // popcount by construction).
    let mut transpositions = 0usize;
    let (mut am, mut bm) = (a_matched, b_matched);
    while am != 0 {
        let i = am.trailing_zeros() as usize;
        let j = bm.trailing_zeros() as usize;
        if a.byte(i) != b.byte(j) {
            transpositions += 1;
        }
        am &= am - 1;
        bm &= bm - 1;
    }
    let transpositions = transpositions / 2;
    let mf = matches as f64;
    clamp01((mf / n as f64 + mf / m as f64 + (mf - transpositions as f64) / mf) / 3.0)
}

/// [`jaro_winkler_chars`] over packed ASCII lanes (see [`jaro_lanes`]).
/// Bitwise identical to the scalar path on the corresponding strings.
pub(crate) fn jaro_winkler_lanes(a: &AsciiLanes, b: &AsciiLanes, eq: EqMaskFn) -> f64 {
    const SCALING: f64 = 0.1;
    const MAX_PREFIX: usize = 4;
    let j = jaro_lanes(a, b, eq);
    // Common prefix within the first lane: the XOR's lowest differing
    // byte bounds it; clip by both lengths and the Winkler cap.
    let diff = a.lanes()[0] ^ b.lanes()[0];
    let same = if diff == 0 {
        8
    } else {
        (diff.trailing_zeros() >> 3) as usize
    };
    let prefix = same.min(MAX_PREFIX).min(a.len()).min(b.len());
    clamp01(j + prefix as f64 * SCALING * (1.0 - j))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaro_known_values() {
        assert!((jaro("dwayne", "duane") - 0.822_222_222).abs() < 1e-6);
        assert!((jaro("dixon", "dicksonx") - 0.766_666_666).abs() < 1e-6);
    }

    #[test]
    fn jaro_edge_cases() {
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("", "abc"), 0.0);
        assert_eq!(jaro("abc", ""), 0.0);
        assert_eq!(jaro("abc", "abc"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_is_symmetric() {
        for (a, b) in [("martha", "marhta"), ("crate", "trace"), ("a", "ab")] {
            assert!((jaro(a, b) - jaro(b, a)).abs() < 1e-12);
        }
    }

    #[test]
    fn winkler_boost_only_with_shared_prefix() {
        // No shared prefix: winkler equals jaro.
        assert_eq!(jaro_winkler("abcd", "xbcd"), jaro("abcd", "xbcd"));
        // Shared prefix: strictly boosted (unless already 1).
        assert!(jaro_winkler("orderline", "orderitem") > jaro("orderline", "orderitem"));
        assert_eq!(jaro_winkler("same", "same"), 1.0);
    }

    #[test]
    fn winkler_prefix_capped_at_four() {
        let a = "abcdefgh";
        let b = "abcdefxx";
        let j = jaro(a, b);
        let expected = j + 4.0 * 0.1 * (1.0 - j);
        assert!((jaro_winkler(a, b) - expected).abs() < 1e-12);
    }

    /// The bitset fast path must replay the scalar oracle bit for bit —
    /// including transposition-heavy, repeated-character, and exactly
    /// 64-byte inputs where the mask arithmetic saturates a whole word.
    #[test]
    fn lanes_path_bitwise_matches_scalar() {
        let word64: String = (0..64).map(|i| (b'a' + (i % 26) as u8) as char).collect();
        let transposed64: String = word64.chars().rev().collect();
        let cases = [
            "a",
            "martha",
            "marhta",
            "dixon",
            "dicksonx",
            "aaaaaa",
            "aaabaaa",
            "custorderno2",
            "custordernum",
            "zyx",
            word64.as_str(),
            transposed64.as_str(),
        ];
        for a in cases {
            for b in cases {
                let (la, lb) = (
                    AsciiLanes::pack(a.as_bytes()).unwrap(),
                    AsciiLanes::pack(b.as_bytes()).unwrap(),
                );
                let (ac, bc): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
                assert_eq!(
                    jaro_lanes(&la, &lb, AsciiLanes::eq_mask).to_bits(),
                    jaro_chars(&ac, &bc).to_bits(),
                    "jaro({a:?}, {b:?})"
                );
                assert_eq!(
                    jaro_winkler_lanes(&la, &lb, AsciiLanes::eq_mask).to_bits(),
                    jaro_winkler_chars(&ac, &bc).to_bits(),
                    "jaro_winkler({a:?}, {b:?})"
                );
            }
        }
    }
}

//! Identifier tokenisation and normalisation.
//!
//! Schema element names are identifiers (`custOrderLine`, `Cust_Order_No`,
//! `ISBN13`); before any token-level comparison they must be split into
//! word tokens and case-folded. The splitter understands camelCase,
//! PascalCase, snake_case, kebab-case, digit runs, and acronym runs
//! (`XMLSchema` → `xml`, `schema`).

use serde::{Deserialize, Serialize};

/// A normalised (lower-cased) word token extracted from an identifier.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Token(pub String);

impl Token {
    /// The token's text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for Token {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

#[derive(Clone, Copy, PartialEq)]
enum CharClass {
    Lower,
    Upper,
    Digit,
    Other,
}

fn classify(c: char) -> CharClass {
    if c.is_lowercase() {
        CharClass::Lower
    } else if c.is_uppercase() {
        CharClass::Upper
    } else if c.is_ascii_digit() {
        CharClass::Digit
    } else {
        CharClass::Other
    }
}

/// Split an identifier into lower-cased word tokens.
///
/// Boundaries: any non-alphanumeric character; lower→Upper transitions
/// (`custName`); Upper-run→lower transitions keep the last upper with the
/// following lowers (`XMLSchema` → `xml` + `schema`); letter↔digit
/// transitions (`isbn13` → `isbn` + `13`).
///
/// ```
/// use smx_text::split_identifier;
/// let toks: Vec<String> = split_identifier("custOrder_No2")
///     .into_iter().map(|t| t.0).collect();
/// assert_eq!(toks, vec!["cust", "order", "no", "2"]);
/// ```
pub fn split_identifier(name: &str) -> Vec<Token> {
    let chars: Vec<char> = name.chars().collect();
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let flush = |cur: &mut String, tokens: &mut Vec<Token>| {
        if !cur.is_empty() {
            tokens.push(Token(cur.to_lowercase()));
            cur.clear();
        }
    };
    for i in 0..chars.len() {
        let c = chars[i];
        let class = classify(c);
        if class == CharClass::Other {
            flush(&mut cur, &mut tokens);
            continue;
        }
        if !cur.is_empty() {
            // When `cur` is non-empty the previous char was pushed, so it is
            // `chars[i - 1]` (an Other char would have flushed and skipped).
            let prev = classify(chars[i - 1]);
            let boundary = match (prev, class) {
                (CharClass::Lower, CharClass::Upper) => true,
                (CharClass::Upper, CharClass::Upper) => {
                    // Acronym run ending: `XMLS|chema` — break before the
                    // upper that is followed by a lower.
                    matches!(
                        chars.get(i + 1).map(|&n| classify(n)),
                        Some(CharClass::Lower)
                    )
                }
                (CharClass::Digit, CharClass::Lower | CharClass::Upper) => true,
                (CharClass::Lower | CharClass::Upper, CharClass::Digit) => true,
                _ => false,
            };
            if boundary {
                flush(&mut cur, &mut tokens);
            }
        }
        cur.push(c);
    }
    flush(&mut cur, &mut tokens);
    tokens
}

/// Normalise an identifier into a single spaceless lower-case string of its
/// tokens — the canonical form compared by character-level measures.
///
/// ```
/// assert_eq!(smx_text::normalize_identifier("Cust_Order-No"), "custorderno");
/// ```
pub fn normalize_identifier(name: &str) -> String {
    split_identifier(name)
        .into_iter()
        .map(|t| t.0)
        .collect::<Vec<_>>()
        .concat()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        split_identifier(s).into_iter().map(|t| t.0).collect()
    }

    #[test]
    fn camel_and_pascal() {
        assert_eq!(toks("custName"), vec!["cust", "name"]);
        assert_eq!(toks("CustName"), vec!["cust", "name"]);
        assert_eq!(toks("orderLineItem"), vec!["order", "line", "item"]);
    }

    #[test]
    fn snake_kebab_and_spaces() {
        assert_eq!(toks("cust_name"), vec!["cust", "name"]);
        assert_eq!(toks("cust-name"), vec!["cust", "name"]);
        assert_eq!(toks("cust name"), vec!["cust", "name"]);
        assert_eq!(toks("__x__"), vec!["x"]);
    }

    #[test]
    fn acronym_runs() {
        assert_eq!(toks("XMLSchema"), vec!["xml", "schema"]);
        assert_eq!(toks("parseXML"), vec!["parse", "xml"]);
        assert_eq!(toks("HTTPSPort"), vec!["https", "port"]);
    }

    #[test]
    fn digit_runs() {
        assert_eq!(toks("isbn13"), vec!["isbn", "13"]);
        assert_eq!(toks("i18n"), vec!["i", "18", "n"]);
        assert_eq!(toks("42"), vec!["42"]);
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(toks("").is_empty());
        assert!(toks("--__--").is_empty());
    }

    #[test]
    fn normalize_concatenates() {
        assert_eq!(normalize_identifier("OrderLine"), "orderline");
        assert_eq!(normalize_identifier("ISBN_13"), "isbn13");
        assert_eq!(normalize_identifier(""), "");
    }

    #[test]
    fn idempotent_on_normalized() {
        let n = normalize_identifier("PubYear2004");
        assert_eq!(normalize_identifier(&n), n);
    }
}

//! Concurrent memoisation of pairwise similarity scores.
//!
//! A matcher evaluates the same name pair many times (the same repository
//! element is a candidate for several personal-schema elements, across
//! thresholds and across S1/S2 runs). [`SimilarityCache`] wraps any
//! `Fn(&str, &str) -> f64` and memoises results under a canonicalised
//! (sorted) key so the symmetric pair is stored once.
//!
//! This is the *fallback* memoisation for callers that do not intern
//! their labels (ad-hoc API use, one-off comparisons). The matching
//! pipeline's hot path instead precomputes per-problem cost matrices over
//! interned labels (`smx-match`'s `CostMatrix`), and deliberately does
//! **not** route through this cache: the sorted-key canonicalisation
//! returns `f(min(a,b), max(a,b))`, which is only safe for functions
//! that are *bitwise* symmetric — the matchers' score-identity invariant
//! demands exact argument order instead.

use parking_lot::RwLock;
use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Borrowed view of a canonicalised (sorted) string pair, used to probe
/// the memo table without allocating owned keys on the hit path.
///
/// The `Hash` implementation must match the derived `Hash` of
/// `(String, String)` exactly (hash the first string, then the second),
/// so a `&dyn PairKey` probe finds entries inserted under owned keys.
trait PairKey {
    fn first(&self) -> &str;
    fn second(&self) -> &str;
}

impl PairKey for (String, String) {
    fn first(&self) -> &str {
        &self.0
    }
    fn second(&self) -> &str {
        &self.1
    }
}

impl PairKey for (&str, &str) {
    fn first(&self) -> &str {
        self.0
    }
    fn second(&self) -> &str {
        self.1
    }
}

impl Hash for dyn PairKey + '_ {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.first().hash(state);
        self.second().hash(state);
    }
}

impl PartialEq for dyn PairKey + '_ {
    fn eq(&self, other: &Self) -> bool {
        self.first() == other.first() && self.second() == other.second()
    }
}

impl Eq for dyn PairKey + '_ {}

impl<'a> Borrow<dyn PairKey + 'a> for (String, String) {
    fn borrow(&self) -> &(dyn PairKey + 'a) {
        self
    }
}

/// A thread-safe memo table for a symmetric string-pair similarity.
pub struct SimilarityCache<F> {
    func: F,
    map: RwLock<HashMap<(String, String), f64>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl<F: Fn(&str, &str) -> f64> SimilarityCache<F> {
    /// Wrap `func` (assumed symmetric) in a cache.
    pub fn new(func: F) -> Self {
        Self {
            func,
            map: RwLock::new(HashMap::new()),
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Cached similarity of `(a, b)`. Hits allocate nothing: the map is
    /// probed through a borrowed canonicalised key; owned `String`s are
    /// built only when inserting a freshly computed miss.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        use std::sync::atomic::Ordering::Relaxed;
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        if let Some(&v) = self.map.read().get(&(lo, hi) as &dyn PairKey) {
            self.hits.fetch_add(1, Relaxed);
            return v;
        }
        let v = (self.func)(a, b);
        self.map.write().insert((lo.to_owned(), hi.to_owned()), v);
        self.misses.fetch_add(1, Relaxed);
        v
    }

    /// Number of entries currently memoised.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// `(hits, misses)` counters since creation or the last [`clear`](Self::clear).
    pub fn stats(&self) -> (u64, u64) {
        use std::sync::atomic::Ordering::Relaxed;
        (self.hits.load(Relaxed), self.misses.load(Relaxed))
    }

    /// Drop all memoised entries and reset counters.
    pub fn clear(&self) {
        use std::sync::atomic::Ordering::Relaxed;
        self.map.write().clear();
        self.hits.store(0, Relaxed);
        self.misses.store(0, Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn caches_symmetric_pairs_once() {
        let calls = AtomicUsize::new(0);
        let cache = SimilarityCache::new(|a: &str, b: &str| {
            calls.fetch_add(1, Ordering::Relaxed);
            if a == b {
                1.0
            } else {
                0.5
            }
        });
        assert_eq!(cache.similarity("x", "y"), 0.5);
        assert_eq!(cache.similarity("y", "x"), 0.5);
        assert_eq!(cache.similarity("x", "y"), 0.5);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(cache.len(), 1);
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (2, 1));
    }

    #[test]
    fn clear_resets() {
        let cache = SimilarityCache::new(|_: &str, _: &str| 0.0);
        cache.similarity("a", "b");
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), (0, 0));
    }

    #[test]
    fn borrowed_probe_matches_owned_key() {
        // A hit through the &dyn PairKey probe must find entries inserted
        // under owned (String, String) keys — i.e. the Hash/Eq impls agree.
        let calls = AtomicUsize::new(0);
        let cache = SimilarityCache::new(|_: &str, _: &str| {
            calls.fetch_add(1, Ordering::Relaxed);
            0.75
        });
        for (a, b) in [("alpha", "beta"), ("beta", "alpha"), ("", "x"), ("x", "")] {
            cache.similarity(a, b);
            cache.similarity(a, b);
        }
        // Two distinct canonical pairs → exactly two underlying calls.
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        assert_eq!(cache.stats().0, 6);
    }

    #[test]
    fn usable_across_threads() {
        let cache = std::sync::Arc::new(SimilarityCache::new(|a: &str, b: &str| {
            smx_levenshtein(a, b)
        }));
        fn smx_levenshtein(a: &str, b: &str) -> f64 {
            crate::levenshtein_similarity(a, b)
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = cache.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let a = format!("name{}", i % 5);
                    let b = format!("name{}", (i + 1) % 5);
                    let _ = c.similarity(&a, &b);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= 5);
    }
}

//! Concurrent memoisation of pairwise similarity scores.
//!
//! A matcher evaluates the same name pair many times (the same repository
//! element is a candidate for several personal-schema elements, across
//! thresholds and across S1/S2 runs). [`SimilarityCache`] wraps any
//! `Fn(&str, &str) -> f64` and memoises results under a canonicalised
//! (sorted) key so the symmetric pair is stored once.

use parking_lot::RwLock;
use std::collections::HashMap;

/// A thread-safe memo table for a symmetric string-pair similarity.
pub struct SimilarityCache<F> {
    func: F,
    map: RwLock<HashMap<(String, String), f64>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl<F: Fn(&str, &str) -> f64> SimilarityCache<F> {
    /// Wrap `func` (assumed symmetric) in a cache.
    pub fn new(func: F) -> Self {
        Self {
            func,
            map: RwLock::new(HashMap::new()),
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
        }
    }

    fn key(a: &str, b: &str) -> (String, String) {
        if a <= b {
            (a.to_owned(), b.to_owned())
        } else {
            (b.to_owned(), a.to_owned())
        }
    }

    /// Cached similarity of `(a, b)`.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        use std::sync::atomic::Ordering::Relaxed;
        let key = Self::key(a, b);
        if let Some(&v) = self.map.read().get(&key) {
            self.hits.fetch_add(1, Relaxed);
            return v;
        }
        let v = (self.func)(a, b);
        self.map.write().insert(key, v);
        self.misses.fetch_add(1, Relaxed);
        v
    }

    /// Number of entries currently memoised.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// `(hits, misses)` counters since creation or the last [`clear`](Self::clear).
    pub fn stats(&self) -> (u64, u64) {
        use std::sync::atomic::Ordering::Relaxed;
        (self.hits.load(Relaxed), self.misses.load(Relaxed))
    }

    /// Drop all memoised entries and reset counters.
    pub fn clear(&self) {
        use std::sync::atomic::Ordering::Relaxed;
        self.map.write().clear();
        self.hits.store(0, Relaxed);
        self.misses.store(0, Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn caches_symmetric_pairs_once() {
        let calls = AtomicUsize::new(0);
        let cache = SimilarityCache::new(|a: &str, b: &str| {
            calls.fetch_add(1, Ordering::Relaxed);
            if a == b {
                1.0
            } else {
                0.5
            }
        });
        assert_eq!(cache.similarity("x", "y"), 0.5);
        assert_eq!(cache.similarity("y", "x"), 0.5);
        assert_eq!(cache.similarity("x", "y"), 0.5);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(cache.len(), 1);
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (2, 1));
    }

    #[test]
    fn clear_resets() {
        let cache = SimilarityCache::new(|_: &str, _: &str| 0.0);
        cache.similarity("a", "b");
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), (0, 0));
    }

    #[test]
    fn usable_across_threads() {
        let cache = std::sync::Arc::new(SimilarityCache::new(|a: &str, b: &str| {
            smx_levenshtein(a, b)
        }));
        fn smx_levenshtein(a: &str, b: &str) -> f64 {
            crate::levenshtein_similarity(a, b)
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = cache.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let a = format!("name{}", i % 5);
                    let b = format!("name{}", (i + 1) % 5);
                    let _ = c.similarity(&a, &b);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= 5);
    }
}

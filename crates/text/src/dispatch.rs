//! Runtime dispatch over the row kernel's vectorised inner-loop
//! variants.
//!
//! Three tiers implement the kernel's per-pair arithmetic, all on stable
//! Rust:
//!
//! * [`KernelVariant::Scalar`] — the original per-character loops. This
//!   tier is the **bitwise oracle**: every other tier must reproduce its
//!   `f64` results to the bit (the dispatch differential suites assert
//!   it), so correctness never depends on which tier runs.
//! * [`KernelVariant::Swar`] — SIMD-within-a-register on plain `u64`s:
//!   the Jaro window scan runs on packed `AsciiLanes` bitmasks, the
//!   gram-profile merge uses four-lane block skipping, and the Myers
//!   advance loop is unrolled four candidate bytes per iteration.
//!   Available everywhere.
//! * [`KernelVariant::Arch`] — `std::arch` specialisations (SSE2 on
//!   x86_64, NEON on aarch64) of the hottest primitive, behind runtime
//!   feature detection; everything else shares the SWAR paths.
//!
//! # Selection
//!
//! [`KernelVariant::active`] picks the best supported tier once per
//! process. The `SMX_KERNEL_FORCE` environment variable overrides it:
//! `scalar`, `swar`, or `arch` (case-insensitive). Forcing `arch` on
//! hardware without an `std::arch` implementation degrades gracefully to
//! the scalar oracle rather than failing; unrecognised values are
//! ignored. [`RowKernel::with_variant`](crate::RowKernel::with_variant)
//! pins a variant explicitly (how the differential tests cover the whole
//! dispatch table in one process).

use crate::arch;
use crate::swar::AsciiLanes;
use std::sync::OnceLock;

/// Name of the environment variable that forces a kernel variant.
pub const FORCE_ENV: &str = "SMX_KERNEL_FORCE";

/// One tier of the row kernel's inner-loop implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelVariant {
    /// Per-character reference loops — the bitwise oracle.
    Scalar,
    /// SWAR-on-`u64` fast paths; supported on every architecture.
    Swar,
    /// `std::arch` (SSE2/NEON) specialisations behind feature detection.
    Arch,
}

impl KernelVariant {
    /// Whether this variant has an implementation on the running CPU.
    pub fn is_supported(self) -> bool {
        match self {
            KernelVariant::Scalar | KernelVariant::Swar => true,
            KernelVariant::Arch => arch::supported(),
        }
    }

    /// This variant if supported, otherwise the scalar oracle — the
    /// graceful fallback used for explicit/forced selections.
    pub fn resolve(self) -> KernelVariant {
        if self.is_supported() {
            self
        } else {
            KernelVariant::Scalar
        }
    }

    /// The fastest supported variant on this CPU.
    pub fn best_available() -> KernelVariant {
        KernelVariant::Arch.resolve_or(KernelVariant::Swar)
    }

    /// This variant if supported, otherwise `fallback`.
    fn resolve_or(self, fallback: KernelVariant) -> KernelVariant {
        if self.is_supported() {
            self
        } else {
            fallback
        }
    }

    /// Resolve a forced-variant request (the value of
    /// [`FORCE_ENV`], if set) to the variant that will actually run:
    ///
    /// * `"scalar"` / `"swar"` / `"arch"` (any case) select that tier,
    ///   with an unsupported `arch` degrading to the scalar oracle;
    /// * anything else — including no override — selects
    ///   [`best_available`](KernelVariant::best_available).
    ///
    /// Pure function of its input, so tests cover the whole table
    /// without touching process environment.
    pub fn from_force(force: Option<&str>) -> KernelVariant {
        match force.map(|s| s.trim().to_ascii_lowercase()).as_deref() {
            Some("scalar") => KernelVariant::Scalar,
            Some("swar") => KernelVariant::Swar,
            Some("arch") => KernelVariant::Arch.resolve(),
            _ => KernelVariant::best_available(),
        }
    }

    /// The process-wide active variant: [`FORCE_ENV`] override if set,
    /// else the best supported tier. Resolved once and cached — every
    /// [`RowKernel::new`](crate::RowKernel::new) (and therefore every
    /// repository score-store sweep) reads this.
    pub fn active() -> KernelVariant {
        static ACTIVE: OnceLock<KernelVariant> = OnceLock::new();
        *ACTIVE.get_or_init(|| KernelVariant::from_force(std::env::var(FORCE_ENV).ok().as_deref()))
    }

    /// Stable lowercase name (`scalar` / `swar` / `arch`), matching the
    /// [`FORCE_ENV`] syntax.
    pub fn name(self) -> &'static str {
        match self {
            KernelVariant::Scalar => "scalar",
            KernelVariant::Swar => "swar",
            KernelVariant::Arch => "arch",
        }
    }

    /// Every variant, in escalation order — what the differential suites
    /// iterate to cover the dispatch table.
    pub const ALL: [KernelVariant; 3] = [
        KernelVariant::Scalar,
        KernelVariant::Swar,
        KernelVariant::Arch,
    ];
}

/// The position-bitmask equality scan for one vectorised tier.
pub(crate) type EqMaskFn = fn(&AsciiLanes, u8) -> u64;

/// The equality-scan implementation of a (resolved, non-scalar)
/// variant. `Scalar` never asks for one — its Jaro path has no lanes —
/// so it maps to the SWAR scan, which is bit-identical regardless.
pub(crate) fn eq_mask_fn(variant: KernelVariant) -> EqMaskFn {
    match variant {
        KernelVariant::Arch => arch::eq_mask,
        _ => AsciiLanes::eq_mask,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_and_swar_always_supported() {
        assert!(KernelVariant::Scalar.is_supported());
        assert!(KernelVariant::Swar.is_supported());
        assert_eq!(KernelVariant::Scalar.resolve(), KernelVariant::Scalar);
        assert_eq!(KernelVariant::Swar.resolve(), KernelVariant::Swar);
    }

    #[test]
    fn force_strings_resolve_to_supported_variants() {
        assert_eq!(
            KernelVariant::from_force(Some("scalar")),
            KernelVariant::Scalar
        );
        assert_eq!(
            KernelVariant::from_force(Some("SWAR ")),
            KernelVariant::Swar
        );
        let arch = KernelVariant::from_force(Some("arch"));
        if KernelVariant::Arch.is_supported() {
            assert_eq!(arch, KernelVariant::Arch);
        } else {
            // Graceful scalar fallback for an unsupported forced tier.
            assert_eq!(arch, KernelVariant::Scalar);
        }
        assert!(arch.is_supported());
        for garbage in [None, Some("avx999"), Some("")] {
            assert_eq!(
                KernelVariant::from_force(garbage),
                KernelVariant::best_available()
            );
        }
    }

    #[test]
    fn best_available_is_supported_and_not_scalar() {
        let best = KernelVariant::best_available();
        assert!(best.is_supported());
        // SWAR exists everywhere, so the default never regresses to the
        // scalar oracle.
        assert_ne!(best, KernelVariant::Scalar);
    }

    #[test]
    fn names_round_trip_through_force() {
        for v in KernelVariant::ALL {
            let resolved = KernelVariant::from_force(Some(v.name()));
            assert_eq!(resolved, v.resolve());
        }
    }

    #[test]
    fn active_is_cached_and_supported() {
        assert_eq!(KernelVariant::active(), KernelVariant::active());
        assert!(KernelVariant::active().is_supported());
    }
}

#![warn(missing_docs)]

//! String-similarity primitives for schema matching.
//!
//! Schema matchers score candidate mappings with an *objective function*
//! that is, at its leaves, built from element-name similarity heuristics
//! (Rahm & Bernstein's survey catalogue: edit distance, n-grams, affixes,
//! token sets, hybrids). This crate provides those leaves:
//!
//! * [`mod@levenshtein`] — edit distance and its normalised similarity,
//! * [`mod@jaro`] — Jaro and Jaro–Winkler similarity,
//! * [`ngram`] — character n-gram profiles and set similarities,
//! * [`affix`] — common-prefix/suffix similarity,
//! * [`token`] — tokeniser-aware set measures (Jaccard, Dice, overlap,
//!   Monge–Elkan hybrid),
//! * [`normalize`] — identifier tokenisation (camelCase, snake_case, digits)
//!   and normalisation,
//! * [`combined`] — weighted combinations with a sensible schema-matching
//!   default,
//! * [`kernel`] — the batched row kernel: per-label preprocessing
//!   ([`LabelProfile`]) plus a streaming evaluator ([`RowKernel`]) that is
//!   bitwise identical to the default combined measure,
//! * [`dispatch`] — runtime selection of the kernel's vectorised inner
//!   loops ([`KernelVariant`]: scalar oracle, SWAR-on-`u64`, or
//!   `std::arch` SSE2/NEON behind feature detection; `SMX_KERNEL_FORCE`
//!   overrides),
//! * [`cache`] — a concurrent memo table so repeated pairs are scored once.
//!
//! Every similarity function returns a score in `[0, 1]`, is symmetric in
//! its arguments, and returns exactly `1.0` for equal inputs — invariants
//! enforced by the property tests in `tests/properties.rs`.

pub mod affix;
mod arch;
pub mod cache;
pub mod combined;
pub mod dispatch;
pub mod jaro;
pub mod kernel;
pub mod levenshtein;
pub mod ngram;
pub mod normalize;
mod swar;
pub mod token;

pub use affix::{common_prefix_len, common_suffix_len, prefix_similarity, suffix_similarity};
pub use cache::SimilarityCache;
pub use combined::{default_name_mix, NameSimilarity, SimilarityMeasure, WeightedSimilarity};
pub use dispatch::KernelVariant;
pub use jaro::{jaro, jaro_winkler};
pub use kernel::{LabelProfile, RowKernel};
pub use levenshtein::{damerau_levenshtein, levenshtein, levenshtein_similarity};
pub use ngram::{dice_ngram, jaccard_ngram, ngram_profile, trigram_similarity, GramProfile};
pub use normalize::{normalize_identifier, split_identifier, Token};
pub use token::{dice_tokens, jaccard_tokens, monge_elkan, overlap_tokens, token_set_similarity};

/// Clamp a floating-point score into `[0, 1]`, mapping NaN to `0`.
///
/// All public similarity functions funnel their result through this so the
/// crate-wide range invariant holds even under pathological inputs.
#[inline]
pub fn clamp01(x: f64) -> f64 {
    if x.is_nan() {
        0.0
    } else {
        x.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::clamp01;

    #[test]
    fn clamp01_handles_nan_and_range() {
        assert_eq!(clamp01(f64::NAN), 0.0);
        assert_eq!(clamp01(-0.5), 0.0);
        assert_eq!(clamp01(1.5), 1.0);
        assert_eq!(clamp01(0.25), 0.25);
    }
}

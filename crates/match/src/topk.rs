//! S2 variant: top-k early termination (Theobald et al. style, \[17\] in
//! the paper).
//!
//! Branch-and-bound like S1, but the pruning threshold *shrinks* as good
//! answers accumulate: once `k` answers are held, branches that cannot
//! beat the current k-th best score are cut. The result is exactly the
//! top-k of S1's ranking (ties at the boundary resolved by answer id),
//! so the answer-size ratio is 1 up to the k-th score and 0 beyond — the
//! sharpest possible ratio cliff.

use crate::mapping::{Mapping, MappingRegistry};
use crate::matcher::Matcher;
use crate::objective::ObjectiveFunction;
use crate::problem::MatchProblem;
use smx_eval::{AnswerId, AnswerSet};
use smx_xml::NodeId;
use std::collections::BinaryHeap;

/// Max-heap entry so the worst of the current top-k sits on top.
#[derive(PartialEq)]
struct Held {
    score: f64,
    id: AnswerId,
}

impl Eq for Held {}

impl PartialOrd for Held {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Held {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Higher score = worse = greater; ties by id ascending so the
        // *larger* id is evicted first, matching AnswerSet's (score, id)
        // ranking.
        self.score
            .partial_cmp(&other.score)
            .expect("finite scores")
            .then(self.id.cmp(&other.id))
    }
}

/// Top-k early-termination matcher.
#[derive(Debug, Clone)]
pub struct TopKMatcher {
    objective: ObjectiveFunction,
    k: usize,
}

impl TopKMatcher {
    /// Build with a shared objective function and `k ≥ 1`.
    pub fn new(objective: ObjectiveFunction, k: usize) -> Self {
        TopKMatcher {
            objective,
            k: k.max(1),
        }
    }

    /// The result-list size.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl TopKMatcher {
    /// Lift into a terminal [`pipeline`](crate::pipeline) refine stage.
    /// Note the dynamic budget stays *global* across the surviving
    /// schemas, so upstream pruning can promote deeper-ranked answers
    /// into the top k — see the certified-matrix suite for what the
    /// certificate does and does not claim here.
    pub fn into_refine_stage(self) -> crate::pipeline::RefineStage<Self> {
        crate::pipeline::RefineStage::new(self)
    }
}

impl Matcher for TopKMatcher {
    fn name(&self) -> &str {
        "S2-topk"
    }

    fn run(&self, problem: &MatchProblem, delta_max: f64, registry: &MappingRegistry) -> AnswerSet {
        let k = problem.personal_size();
        let matrix = problem.cost_matrix(&self.objective);
        let mut heap: BinaryHeap<Held> = BinaryHeap::new();
        for (sid, schema) in problem.repository().iter() {
            if schema.len() < k || !problem.is_active(sid) {
                continue;
            }
            let table = matrix.table(sid);
            let mut chosen: Vec<usize> = Vec::with_capacity(k);

            #[allow(clippy::too_many_arguments)]
            fn dfs(
                m: &TopKMatcher,
                problem: &MatchProblem,
                sid: smx_repo::SchemaId,
                schema: &smx_xml::Schema,
                matrix: &crate::cost_matrix::CostMatrix,
                table: &crate::cost_matrix::SchemaTable,
                delta_max: f64,
                registry: &MappingRegistry,
                partial: f64,
                chosen: &mut Vec<usize>,
                heap: &mut BinaryHeap<Held>,
            ) {
                let k = problem.personal_size();
                // Dynamic budget: δ_max, or the current k-th best score once
                // the heap is full.
                let dynamic = if heap.len() >= m.k {
                    heap.peek().expect("non-empty").score.min(delta_max)
                } else {
                    delta_max
                };
                let budget = dynamic * matrix.denom() + 1e-12;
                if chosen.len() == k {
                    let assignment: Vec<NodeId> =
                        chosen.iter().map(|&i| NodeId(i as u32)).collect();
                    let score = matrix.mapping_cost(problem, sid, &assignment);
                    if score <= delta_max {
                        let id = registry.intern(Mapping {
                            schema: sid,
                            targets: assignment,
                        });
                        heap.push(Held { score, id });
                        if heap.len() > m.k {
                            heap.pop();
                        }
                    }
                    return;
                }
                let level = chosen.len();
                let pid = problem.personal_order()[level];
                let parent = problem.personal().node(pid).parent;
                let suffix = table.suffix_min()[level + 1];
                let row = table.row(level);
                for (cand, &node_cost) in row.iter().enumerate() {
                    if chosen.contains(&cand) {
                        continue;
                    }
                    let mut step = node_cost;
                    if let Some(p) = parent {
                        let parent_target = NodeId(chosen[p.index()] as u32);
                        step += m.objective.config().structure_weight
                            * m.objective
                                .edge_penalty(schema, parent_target, NodeId(cand as u32));
                    }
                    if partial + step + suffix > budget {
                        continue;
                    }
                    chosen.push(cand);
                    dfs(
                        m,
                        problem,
                        sid,
                        schema,
                        matrix,
                        table,
                        delta_max,
                        registry,
                        partial + step,
                        chosen,
                        heap,
                    );
                    chosen.pop();
                }
            }
            dfs(
                self,
                problem,
                sid,
                schema,
                &matrix,
                table,
                delta_max,
                registry,
                0.0,
                &mut chosen,
                &mut heap,
            );
        }
        AnswerSet::new(heap.into_iter().map(|h| (h.id, h.score)))
            .expect("finite costs, unique interned ids")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::ExhaustiveMatcher;
    use smx_synth::{Scenario, ScenarioConfig};

    fn scenario_problem() -> MatchProblem {
        let sc = Scenario::generate(ScenarioConfig {
            derived_schemas: 4,
            noise_schemas: 2,
            personal_nodes: 4,
            host_nodes: 7,
            ..Default::default()
        });
        MatchProblem::new(sc.personal, sc.repository).unwrap()
    }

    #[test]
    fn returns_exactly_the_top_k_of_s1() {
        let problem = scenario_problem();
        let registry = MappingRegistry::new();
        let s1 = ExhaustiveMatcher::default().run(&problem, 0.5, &registry);
        for k in [1, 5, 20, 100] {
            let s2 =
                TopKMatcher::new(ObjectiveFunction::default(), k).run(&problem, 0.5, &registry);
            assert_eq!(s2.len(), k.min(s1.len()), "k={k}");
            // Identical prefix: same ids and scores as S1's head.
            let expect = s1.top_n(k);
            assert_eq!(s2.answers(), expect, "k={k}");
        }
    }

    #[test]
    fn topk_is_subset_with_same_scores() {
        let problem = scenario_problem();
        let registry = MappingRegistry::new();
        let s1 = ExhaustiveMatcher::default().run(&problem, 0.5, &registry);
        let s2 = TopKMatcher::new(ObjectiveFunction::default(), 10).run(&problem, 0.5, &registry);
        s2.is_subset_of(&s1).expect("top-k ⊆ exhaustive");
        assert!(s2.scores_consistent_with(&s1));
    }

    #[test]
    fn k_clamped_to_one() {
        assert_eq!(TopKMatcher::new(ObjectiveFunction::default(), 0).k(), 1);
    }
}

#![warn(missing_docs)]

//! Schema matchers: an exhaustive system S1 and several non-exhaustive
//! improvements S2, all sharing **one objective function** Δ — the
//! precondition of the effectiveness-bounds technique.
//!
//! A schema mapping assigns every element of the personal schema to a
//! distinct element of one repository schema; its quality is the
//! difference score Δ ∈ [0, 1] (lower = better) computed by
//! [`ObjectiveFunction`] from name similarity, type compatibility, and
//! structural coherence. The search space is exponential in the personal
//! schema's size ([`space`] counts it), which is why the paper needs
//! non-exhaustive improvements:
//!
//! * [`exhaustive`] — S1: branch-and-bound enumeration, provably complete
//!   for every threshold δ ≤ δ_max (the admissible bound only prunes
//!   branches that cannot reach δ_max); [`brute_force`] is the
//!   no-pruning reference it is tested against;
//! * [`beam`] — S2-one style: per-schema beam search; loses answers
//!   smoothly as δ grows (compare Figure 10's S2-one);
//! * [`cluster_search`] — S2-two style (\[16\] in the paper): match only
//!   inside the top-ranked clusters' fragments; loses whole score bands
//!   (Figure 10's S2-two);
//! * [`topk`] — \[17\]-style early termination: exactly the top-k answers;
//! * [`sampler`] — the per-increment random selector of §3.4, used to
//!   validate Equations (9)–(10) empirically;
//! * [`parallel`] — scoped-thread work-stealing version of S1 (identical
//!   output, faster wall-clock);
//! * [`batch`] — the bulk serving path: N personal schemas against one
//!   repository, distinct labels deduped across the batch and swept in
//!   one pass over the stored label profiles, then any matcher above
//!   dispatched per problem (optionally across scoped workers) —
//!   bitwise identical to solo runs (`tests/batch_identity.rs`);
//! * [`candidates`] + [`certified`] — the certified non-exhaustive
//!   tier: an inverted-index filter stage ([`smx_repo::FilterIndex`])
//!   computes an *admissible lower bound* on every schema's best
//!   possible mapping cost, certifies hopeless schemas empty before
//!   any exact scoring, and restricts the problem (and its matrix
//!   fill) to the survivors. [`CertifiedMatcher`] wraps any matcher
//!   above and attaches a [`RecallCertificate`]: a machine-checkable
//!   lower bound on recall vs the exhaustive oracle, valid with no
//!   ground truth — and pluggable straight into `smx-core`'s
//!   effectiveness-bounds envelope as a certified answer-size ratio.
//!   With no budget the restriction is loss-free and the restricted
//!   answers are **bitwise identical** to the unrestricted run
//!   (`tests/candidate_differential.rs`).
//!
//! # Pipelines
//!
//! [`pipeline`] generalises the certified tier into *composable*
//! matching processes: a [`Pipeline`] chains filter stages (candidate
//! certification, survivor truncation, beam-as-filter) in front of any
//! terminal matcher, accumulates every stage's certificate charges,
//! and — because it implements [`Matcher`] itself — drops into
//! [`BatchMatcher`], [`CertifiedMatcher`], persistence and the benches
//! unchanged. A small rewrite layer ([`Pipeline::normalize`]) fuses,
//! dedups and reorders stages without changing a single answer bit:
//!
//! ```
//! use smx_match::{ExhaustiveMatcher, MappingRegistry, MatchProblem,
//!                 ObjectiveFunction, Pipeline};
//! use smx_synth::{Scenario, ScenarioConfig};
//!
//! let sc = Scenario::generate(ScenarioConfig::default());
//! let problem = MatchProblem::new(sc.personal, sc.repository).unwrap();
//!
//! // candidates → keep the 8 most promising → beam-filter → exhaustive.
//! let pipe = Pipeline::builder(ObjectiveFunction::default())
//!     .candidate_filter()
//!     .truncate(8)
//!     .beam_filter(16)
//!     .refine(ExhaustiveMatcher::default());
//!
//! let registry = MappingRegistry::new();
//! let run = pipe.run_certified(&problem, 0.3, &registry);
//! // The composed certificate multiplies per-stage factors …
//! let cert = &run.certificate;
//! assert!(cert.factor_breakdown().reproduces(cert.certified_recall(), 1e-9));
//! // … and lower-bounds recall against the exhaustive oracle.
//! assert!(cert.certified_recall() <= 1.0);
//! ```
//!
//! Stage pruning decisions all read one shared, full-precision bounds
//! table computed per run, which is what makes the rewrite algebra
//! sound — see the [`pipeline`] module docs. The pipeline-algebra
//! differential suites (`tests/pipeline_differential.rs`,
//! `tests/pipeline_algebra.rs`) hold `normalize` to bitwise answer
//! identity and composed certificates to admissibility across random
//! stage compositions and budgets.
//!
//! # The scoring engine
//!
//! All matchers score through the problem's precomputed
//! [`CostMatrix`] ([`cost_matrix`]): at first use per
//! [`MatchProblem`], one name-distance row per *distinct* personal
//! label is fetched from the repository's score store
//! ([`smx_repo::LabelStore`]) — swept by a batched row kernel
//! (`smx_text::RowKernel`) over per-label profiles precomputed at
//! ingest, and cached on the repository so repeated problems against
//! the same repository refill without evaluating a single string pair.
//! The dense `k × n` node-cost table per schema, per-level row minima,
//! and their suffix sums (the admissible branch-and-bound bounds) are
//! then plain `Vec<f64>` lookups. The engine lives behind a `OnceLock`
//! in the problem, so post-initialisation reads are lock-free and
//! allocation-free — safe to share across the parallel matcher's
//! workers.
//!
//! **Score-identity invariant.** The bounds methodology requires S1 and
//! every S2 to share Δ *exactly*. The store's rows are bitwise identical
//! to [`ObjectiveFunction::name_distance`] (the row kernel's contract),
//! the matrix fill reuses [`ObjectiveFunction::blend`], and
//! [`CostMatrix::mapping_cost`] replicates
//! [`ObjectiveFunction::mapping_cost`] term by term, so matrix-backed
//! scores are **bitwise identical** (`f64::to_bits`) to direct
//! evaluation. `ExhaustiveMatcher::direct` /
//! `BruteForceMatcher::direct` keep the recompute-every-time path alive
//! as the reference; `tests/score_identity.rs` asserts the invariant
//! across all matchers, and `benches/matching.rs` measures the speedup
//! the engine buys.
//!
//! All matchers return [`smx_eval::AnswerSet`]s whose ids come from a
//! shared [`MappingRegistry`], so S1's and S2's answers are directly
//! comparable — the invariant `A_S2^δ ⊆ A_S1^δ` is asserted in tests.

pub mod batch;
pub mod beam;
pub mod brute_force;
pub mod candidates;
pub mod certified;
pub mod cluster_search;
pub mod cost_matrix;
pub mod error;
pub mod exhaustive;
pub mod mapping;
pub mod matcher;
pub mod objective;
pub mod parallel;
pub mod pipeline;
pub mod problem;
pub mod sampler;
pub mod space;
pub mod test_support;
pub mod topk;

pub use batch::{BatchMatcher, BatchProblem};
pub use beam::BeamMatcher;
pub use brute_force::BruteForceMatcher;
pub use candidates::{ActiveSet, CandidateConfig, CandidateGenerator, CandidateSet, CERT_SLACK};
pub use certified::{CertifiedAnswer, CertifiedMatcher, RecallCertificate};
pub use cluster_search::ClusterMatcher;
pub use cost_matrix::{CostMatrix, SchemaTable};
pub use error::MatchError;
pub use exhaustive::{ExhaustiveMatcher, ScoringMode};
pub use mapping::{Mapping, MappingRegistry};
pub use matcher::Matcher;
pub use objective::{ObjectiveConfig, ObjectiveFunction};
pub use parallel::ParallelExhaustiveMatcher;
pub use pipeline::{
    BeamFilter, CandidateFilter, Pipeline, PipelineAnswer, PipelineBuilder, PipelineCertificate,
    PredicateId, RefineStage, SizeFilter, Stage, StageContext, StageKind, StageOutput, StageReport,
    Truncate,
};
pub use problem::MatchProblem;
pub use sampler::random_selection;
pub use space::{falling_factorial, search_space_size};
pub use topk::TopKMatcher;

//! No-pruning reference enumerator.
//!
//! Enumerates *every* injective assignment of personal nodes into every
//! repository schema and keeps those with Δ ≤ δ_max. Exponential with no
//! mercy — usable only on tiny instances, which is exactly its job: the
//! ground truth against which [`ExhaustiveMatcher`](crate::exhaustive)'s
//! pruning is proven complete.

use crate::exhaustive::ScoringMode;
use crate::mapping::{Mapping, MappingRegistry};
use crate::matcher::Matcher;
use crate::objective::ObjectiveFunction;
use crate::problem::MatchProblem;
use smx_eval::AnswerSet;
use smx_xml::NodeId;

/// The no-pruning reference matcher.
#[derive(Debug, Clone, Default)]
pub struct BruteForceMatcher {
    objective: ObjectiveFunction,
    mode: ScoringMode,
}

impl BruteForceMatcher {
    /// Build with a shared objective function (matrix-backed scoring).
    pub fn new(objective: ObjectiveFunction) -> Self {
        BruteForceMatcher {
            objective,
            mode: ScoringMode::Precomputed,
        }
    }

    /// Build a matcher that scores through the raw
    /// [`ObjectiveFunction`] path instead of the precomputed matrix —
    /// the fully independent reference for score-identity tests.
    pub fn direct(objective: ObjectiveFunction) -> Self {
        BruteForceMatcher {
            objective,
            mode: ScoringMode::Direct,
        }
    }

    /// The scoring mode.
    pub fn mode(&self) -> ScoringMode {
        self.mode
    }
}

impl BruteForceMatcher {
    /// Lift into a terminal [`pipeline`](crate::pipeline) refine stage
    /// (mostly useful to differential-test pipelines against the
    /// no-pruning reference).
    pub fn into_refine_stage(self) -> crate::pipeline::RefineStage<Self> {
        crate::pipeline::RefineStage::new(self)
    }
}

impl Matcher for BruteForceMatcher {
    fn name(&self) -> &str {
        "brute-force"
    }

    fn run(&self, problem: &MatchProblem, delta_max: f64, registry: &MappingRegistry) -> AnswerSet {
        let k = problem.personal_size();
        let matrix = match self.mode {
            ScoringMode::Precomputed => Some(problem.cost_matrix(&self.objective)),
            ScoringMode::Direct => None,
        };
        let mut found: Vec<(smx_eval::AnswerId, f64)> = Vec::new();
        for (sid, schema) in problem.repository().iter() {
            if !problem.is_active(sid) {
                continue;
            }
            let nodes: Vec<NodeId> = schema.node_ids().collect();
            if nodes.len() < k {
                continue;
            }
            // Odometer over k positions with injectivity check.
            let mut idx = vec![0usize; k];
            'outer: loop {
                // Injectivity.
                let mut used = vec![false; nodes.len()];
                let mut injective = true;
                for &i in &idx {
                    if used[i] {
                        injective = false;
                        break;
                    }
                    used[i] = true;
                }
                if injective {
                    let targets: Vec<NodeId> = idx.iter().map(|&i| nodes[i]).collect();
                    let cost = match &matrix {
                        Some(m) => m.mapping_cost(problem, sid, &targets),
                        None => self.objective.mapping_cost(problem, sid, &targets),
                    };
                    if cost <= delta_max {
                        let id = registry.intern(Mapping {
                            schema: sid,
                            targets,
                        });
                        found.push((id, cost));
                    }
                }
                // Advance odometer.
                let mut pos = k;
                loop {
                    if pos == 0 {
                        break 'outer;
                    }
                    pos -= 1;
                    idx[pos] += 1;
                    if idx[pos] < nodes.len() {
                        break;
                    }
                    idx[pos] = 0;
                }
            }
        }
        AnswerSet::new(found).expect("finite costs, unique interned ids")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_repo::Repository;
    use smx_xml::{PrimitiveType, SchemaBuilder};

    fn tiny_problem() -> MatchProblem {
        let personal = SchemaBuilder::new("p")
            .root("book")
            .leaf("title", PrimitiveType::String)
            .build();
        let mut repo = Repository::new();
        repo.add(
            SchemaBuilder::new("bib")
                .root("bib")
                .child("book", |b| b.leaf("title", PrimitiveType::String))
                .build(),
        );
        MatchProblem::new(personal, repo).unwrap()
    }

    #[test]
    fn enumerates_all_injective_assignments() {
        let problem = tiny_problem();
        let registry = MappingRegistry::new();
        let answers = BruteForceMatcher::default().run(&problem, 1.0, &registry);
        // 3 schema nodes, k = 2 → P(3,2) = 6 injective assignments.
        assert_eq!(answers.len(), 6);
        // Every answer is injective and scored in range.
        for a in answers.answers() {
            let m = registry.resolve(a.id).unwrap();
            assert!(m.is_injective());
            assert!((0.0..=1.0).contains(&a.score));
        }
    }

    #[test]
    fn threshold_filters() {
        let problem = tiny_problem();
        let registry = MappingRegistry::new();
        let all = BruteForceMatcher::default().run(&problem, 1.0, &registry);
        let some = BruteForceMatcher::default().run(&problem, 0.2, &registry);
        assert!(some.len() < all.len());
        assert!(some.is_subset_of(&all).is_ok());
        // The perfect mapping (book→book, title→title) survives δ=0.2.
        assert!(!some.is_empty());
    }

    #[test]
    fn small_schemas_skipped() {
        let personal = SchemaBuilder::new("p")
            .root("a")
            .leaf("b", PrimitiveType::String)
            .leaf("c", PrimitiveType::String)
            .build();
        let mut repo = Repository::new();
        let mut tiny = smx_xml::Schema::new("tiny");
        tiny.add_root(smx_xml::Node::element("only")).unwrap();
        repo.add(tiny); // 1 node < k = 3 → no assignments
        let problem = MatchProblem::new(personal, repo).unwrap();
        let registry = MappingRegistry::new();
        let answers = BruteForceMatcher::default().run(&problem, 1.0, &registry);
        assert!(answers.is_empty());
    }
}

//! Certified non-exhaustive matching: run any matcher on the candidate
//! subset and attach a machine-checkable recall bound to the answers.
//!
//! [`CertifiedMatcher`] composes a [`CandidateGenerator`] with any inner
//! [`Matcher`]: generate the candidate set for the query's threshold,
//! restrict the problem to it ([`MatchProblem::with_candidates`]), run
//! the inner matcher, and wrap the result in a [`RecallCertificate`].
//! The certificate is *analytic*, not measured — it follows from the
//! admissible caps on the pruned schemas (see [`crate::candidates`]) and
//! needs no ground truth and no exhaustive reference run:
//!
//! * the exhaustive oracle's answer set on this problem has at most
//!   `answers + caps_sum` members, so
//! * `certified_recall = answers / (answers + caps_sum)` lower-bounds
//!   the fraction of the oracle's answers the restricted run retained,
//!   and equally lower-bounds the paper's answer-size ratio
//!   `Â = |A_S2| / |A_S1|` — the single experimental input the
//!   effectiveness-bounds machinery (`smx-core`) consumes.
//!
//! [`RecallCertificate::worst_case_envelope`] plugs that ratio lower
//! bound straight into [`BoundsEnvelope::fixed_ratio`]: given S1's
//! measured P/R curve, it yields guaranteed best/worst P/R bounds for
//! the certified run. Because the plugged-in ratio is a lower bound on
//! the true ratio and the worst-case bounds are monotone in the ratio,
//! the resulting envelope is conservative — the truth can only be
//! better.
//!
//! **Soundness scope.** The certificate bounds the loss *introduced by
//! the restriction*. That equals the total loss vs the exhaustive
//! oracle exactly when the inner matcher is complete on the restricted
//! problem ([`ExhaustiveMatcher`](crate::exhaustive::ExhaustiveMatcher),
//! its parallel twin, or the brute-force reference). Wrapping a lossy
//! S2 heuristic (beam, cluster, top-k) still works — the answers stay a
//! subset of the oracle with identical scores — but the heuristic's own
//! losses are *not* covered by the bound; only the tier's pruning is.

use crate::candidates::{CandidateGenerator, CandidateSet};
use crate::mapping::MappingRegistry;
use crate::matcher::Matcher;
use crate::problem::MatchProblem;
use smx_core::{BoundsEnvelope, BoundsError, SizeRatio};
use smx_eval::{AnswerSet, PrCurve};

/// A certified answer set: what the restricted run found, plus the
/// analytic bound on what it could have missed.
#[derive(Debug, Clone)]
pub struct CertifiedAnswer {
    /// The restricted run's answers — each one scored by the shared Δ,
    /// bitwise identical to the exhaustive oracle's score for the same
    /// mapping.
    pub answers: AnswerSet,
    /// The recall certificate.
    pub certificate: RecallCertificate,
}

/// Machine-checkable lower bound on a candidate-restricted run's recall
/// relative to the exhaustive oracle at the same threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct RecallCertificate {
    answer_count: usize,
    caps_sum: f64,
    active_schemas: usize,
    cert_empty_schemas: usize,
    total_schemas: usize,
    pruned_pairs: u64,
    scored_pairs: u64,
    delta_max: f64,
}

impl RecallCertificate {
    /// Derive the certificate for a run that found `answer_count`
    /// mappings under `candidates`' restriction.
    pub fn new(candidates: &CandidateSet, answer_count: usize) -> Self {
        RecallCertificate {
            answer_count,
            caps_sum: candidates.caps_sum(),
            active_schemas: candidates.active_count(),
            cert_empty_schemas: candidates.cert_empty_count(),
            total_schemas: candidates.total_schemas(),
            pruned_pairs: candidates.pruned_pairs(),
            scored_pairs: candidates.scored_pairs(),
            delta_max: candidates.delta_max(),
        }
    }

    /// The certified recall: at least this fraction of the exhaustive
    /// oracle's answers is present. Exactly `1.0` when only
    /// certified-empty schemas were pruned.
    pub fn certified_recall(&self) -> f64 {
        if self.caps_sum == 0.0 {
            1.0
        } else {
            self.answer_count as f64 / (self.answer_count as f64 + self.caps_sum)
        }
    }

    /// The same bound as a validated [`SizeRatio`]: a lower bound on
    /// the answer-size ratio `Â = |A_S2|/|A_S1|` the paper's bounds
    /// take as input.
    pub fn ratio_lower_bound(&self) -> SizeRatio {
        SizeRatio::new(self.certified_recall()).expect("certified recall is always in [0, 1]")
    }

    /// Conservative effectiveness bounds for the certified run: S1's
    /// measured P/R curve combined with the certified ratio lower bound
    /// through [`BoundsEnvelope::fixed_ratio`]. The worst-case curve is
    /// a guarantee; the true run can only sit above it.
    pub fn worst_case_envelope(&self, s1_curve: &PrCurve) -> Result<BoundsEnvelope, BoundsError> {
        BoundsEnvelope::fixed_ratio(s1_curve, self.ratio_lower_bound())
    }

    /// Answers the restricted run found.
    pub fn answer_count(&self) -> usize {
        self.answer_count
    }

    /// Upper bound on the answers the pruned schemas could hold.
    pub fn missed_cap(&self) -> f64 {
        self.caps_sum
    }

    /// Schemas scored exactly.
    pub fn active_schemas(&self) -> usize {
        self.active_schemas
    }

    /// Schemas certified to contain no answer at the threshold.
    pub fn cert_empty_schemas(&self) -> usize {
        self.cert_empty_schemas
    }

    /// Repository size in schemas.
    pub fn total_schemas(&self) -> usize {
        self.total_schemas
    }

    /// `(personal node, schema node)` cost pairs the restricted fill
    /// never scored.
    pub fn pruned_pairs(&self) -> u64 {
        self.pruned_pairs
    }

    /// Cost pairs the restricted fill did score.
    pub fn scored_pairs(&self) -> u64 {
        self.scored_pairs
    }

    /// The threshold the certificate holds at.
    pub fn delta_max(&self) -> f64 {
        self.delta_max
    }
}

/// Any matcher, candidate-restricted and certificate-carrying.
#[derive(Debug, Clone)]
pub struct CertifiedMatcher<M> {
    inner: M,
    generator: CandidateGenerator,
    name: String,
}

impl<M: Matcher> CertifiedMatcher<M> {
    /// Wrap `inner` behind `generator`'s filter tier.
    pub fn new(inner: M, generator: CandidateGenerator) -> Self {
        let name = format!("certified({})", inner.name());
        CertifiedMatcher {
            inner,
            generator,
            name,
        }
    }

    /// The wrapped matcher.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The filter tier.
    pub fn generator(&self) -> &CandidateGenerator {
        &self.generator
    }

    /// Run candidate-restricted and return the answers *with* their
    /// certificate. The restricted problem shares the repository (and
    /// its score store) with `problem`, so repeated certified queries
    /// amortise exactly like exhaustive ones.
    pub fn run_certified(
        &self,
        problem: &MatchProblem,
        delta_max: f64,
        registry: &MappingRegistry,
    ) -> CertifiedAnswer {
        let mut span = smx_obs::span("certified.run");
        let candidates = self.generator.generate(problem, delta_max);
        let restricted = problem.with_candidates(&candidates);
        let answers = {
            let mut refine = smx_obs::span("certified.refine");
            let answers = self.inner.run(&restricted, delta_max, registry);
            if refine.is_active() {
                refine.attr("matcher", self.inner.name());
                refine.attr("answers", answers.len());
            }
            answers
        };
        let certificate = RecallCertificate::new(&candidates, answers.len());
        if span.is_active() {
            span.attr("active_schemas", certificate.active_schemas());
            span.attr("cert_empty", certificate.cert_empty_schemas());
            span.attr("certified_recall", certificate.certified_recall());
            span.attr("missed_cap", certificate.missed_cap());
        }
        CertifiedAnswer {
            answers,
            certificate,
        }
    }
}

impl<M: Matcher + Send + Sync + std::fmt::Debug + 'static> CertifiedMatcher<M> {
    /// Re-express this monolithic filter→refine pair as a declarative
    /// [`Pipeline`](crate::pipeline::Pipeline): the generator becomes
    /// its filter stages (certified-empty prune, plus survivor
    /// truncation under an explicit budget) and the inner matcher the
    /// terminal refine stage.
    ///
    /// Answer-equivalent, not bookkeeping-identical: pipeline stages
    /// prune against the shared full-precision bounds table, so active
    /// sets and budget-mode survivor rankings can differ from
    /// [`CandidateGenerator::generate`]'s lazily refined sweep (see
    /// [`CandidateGenerator::into_stages`]).
    pub fn into_pipeline(self) -> crate::pipeline::Pipeline {
        let objective = self.generator.objective().clone();
        let mut builder = crate::pipeline::Pipeline::builder(objective);
        for stage in self.generator.into_stages() {
            builder = builder.stage_arc(stage);
        }
        builder.refine(self.inner)
    }
}

impl<M: Matcher> Matcher for CertifiedMatcher<M> {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&self, problem: &MatchProblem, delta_max: f64, registry: &MappingRegistry) -> AnswerSet {
        self.run_certified(problem, delta_max, registry).answers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::CandidateConfig;
    use crate::exhaustive::ExhaustiveMatcher;
    use crate::objective::ObjectiveFunction;
    use smx_synth::{Scenario, ScenarioConfig};

    fn scenario_problem() -> MatchProblem {
        let sc = Scenario::generate(ScenarioConfig {
            derived_schemas: 6,
            noise_schemas: 6,
            personal_nodes: 4,
            host_nodes: 8,
            perturbation_strength: 0.7,
            ..Default::default()
        });
        MatchProblem::new(sc.personal, sc.repository).unwrap()
    }

    #[test]
    fn auto_budget_is_bitwise_identical_with_certificate_one() {
        let problem = scenario_problem();
        let delta_max = 0.3;
        let registry = MappingRegistry::new();
        let oracle = ExhaustiveMatcher::default().run(&problem, delta_max, &registry);
        let certified = CertifiedMatcher::new(
            ExhaustiveMatcher::default(),
            CandidateGenerator::auto(ObjectiveFunction::default()),
        )
        .run_certified(&problem, delta_max, &registry);
        assert_eq!(certified.answers, oracle);
        assert_eq!(certified.certificate.certified_recall(), 1.0);
        assert!(certified.certificate.ratio_lower_bound().is_one());
        assert_eq!(certified.certificate.answer_count(), oracle.len());
    }

    #[test]
    fn certificate_never_exceeds_measured_recall() {
        let problem = scenario_problem();
        let delta_max = 0.3;
        let registry = MappingRegistry::new();
        let oracle = ExhaustiveMatcher::default().run(&problem, delta_max, &registry);
        for budget in [0, 1, 2, 5, usize::MAX] {
            let certified = CertifiedMatcher::new(
                ExhaustiveMatcher::default(),
                CandidateGenerator::new(
                    ObjectiveFunction::default(),
                    CandidateConfig {
                        budget: Some(budget),
                    },
                ),
            )
            .run_certified(&problem, delta_max, &registry);
            certified
                .answers
                .is_subset_of(&oracle)
                .expect("restricted ⊆ oracle");
            let measured = if oracle.is_empty() {
                1.0
            } else {
                let kept = certified
                    .answers
                    .ids()
                    .filter(|&id| oracle.score_of(id).is_some())
                    .count();
                kept as f64 / oracle.len() as f64
            };
            let cert = certified.certificate.certified_recall();
            assert!(
                cert <= measured + 1e-12,
                "budget {budget}: certified {cert} > measured {measured}"
            );
        }
    }

    #[test]
    fn matcher_impl_returns_the_restricted_answers() {
        let problem = scenario_problem();
        let registry = MappingRegistry::new();
        let matcher = CertifiedMatcher::new(
            ExhaustiveMatcher::default(),
            CandidateGenerator::auto(ObjectiveFunction::default()),
        );
        assert_eq!(matcher.name(), "certified(S1-exhaustive)");
        let direct = matcher.run(&problem, 0.3, &registry);
        let full = matcher.run_certified(&problem, 0.3, &registry);
        assert_eq!(direct, full.answers);
        assert_eq!(matcher.inner().name(), "S1-exhaustive");
        assert!(matcher.generator().config().budget.is_none());
    }
}

//! The per-increment random selector of §3.4.
//!
//! Not a real matcher — a *hypothetical* improvement used as a baseline:
//! it executes S1 and keeps, within each threshold increment, a uniformly
//! random subset of the answers, sized to match a target system's counts.
//! Its expected P/R is given by Equations (9)–(10); the empirical runs
//! produced here let tests and benches confirm that.

use rand::prelude::*;
use rand::rngs::StdRng;
use smx_eval::{AnswerSet, ScoredAnswer};

/// Randomly select, per increment of `grid`, `sizes[i]` answers from S1's
/// answers in that increment (`sizes` are cumulative counts aligned with
/// `grid`, exactly like the bounds API takes them).
///
/// Panics if `sizes` is not a feasible cumulative profile for `s1` (more
/// selected than available in some increment) — callers derive sizes from
/// a real S2 run, where feasibility holds by construction.
pub fn random_selection(
    s1: &AnswerSet,
    grid: &[f64],
    sizes: &[usize],
    rng: &mut StdRng,
) -> AnswerSet {
    assert_eq!(grid.len(), sizes.len(), "grid and sizes must align");
    let mut selected: Vec<ScoredAnswer> = Vec::new();
    let mut prev_threshold = f64::NEG_INFINITY;
    let mut prev_cum = 0usize;
    for (&threshold, &cum) in grid.iter().zip(sizes) {
        let take = cum
            .checked_sub(prev_cum)
            .expect("sizes must be non-decreasing");
        let band: Vec<ScoredAnswer> = s1
            .answers()
            .iter()
            .filter(|a| a.score > prev_threshold && a.score <= threshold)
            .copied()
            .collect();
        assert!(
            take <= band.len(),
            "cannot select {take} answers from an increment of {}",
            band.len()
        );
        let picked = band.choose_multiple(rng, take);
        selected.extend(picked.copied());
        prev_threshold = threshold;
        prev_cum = cum;
    }
    selected.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_eval::AnswerId;

    fn s1() -> AnswerSet {
        // Scores 0.25/0.5/0.75/1.0 — exactly representable, so threshold
        // slicing is crisp.
        AnswerSet::new((0..20).map(|i| (AnswerId(i), (i / 5 + 1) as f64 * 0.25))).unwrap()
    }

    #[test]
    fn respects_increment_sizes() {
        // 4 increments of 5 answers each (scores 0.25, 0.5, 0.75, 1.0).
        let s1 = s1();
        let grid = [0.25, 0.5, 0.75, 1.0];
        let sizes = [3, 7, 8, 12];
        let mut rng = StdRng::seed_from_u64(5);
        let s2 = random_selection(&s1, &grid, &sizes, &mut rng);
        for (&t, &c) in grid.iter().zip(&sizes) {
            assert_eq!(s2.count_at(t), c, "at δ={t}");
        }
        s2.is_subset_of(&s1).unwrap();
        assert!(s2.scores_consistent_with(&s1));
    }

    #[test]
    fn deterministic_per_seed() {
        let s1 = s1();
        let grid = [0.5, 1.0];
        let sizes = [4, 9];
        let a = random_selection(&s1, &grid, &sizes, &mut StdRng::seed_from_u64(1));
        let b = random_selection(&s1, &grid, &sizes, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "cannot select")]
    fn infeasible_sizes_panic() {
        let s1 = s1();
        random_selection(&s1, &[0.25], &[9], &mut StdRng::seed_from_u64(1));
    }

    #[test]
    fn empirical_mean_matches_equation_9_and_10() {
        use smx_core::random_baseline_from_counts;
        use smx_eval::{Counts, GroundTruth, PrCurve};
        // S1 with known composition: correct ids are multiples of 3.
        let s1 = s1();
        let truth = GroundTruth::new((0..20).filter(|i| i % 3 == 0).map(AnswerId));
        let grid = [0.25, 0.5, 0.75, 1.0];
        let sizes = [2, 6, 10, 14];
        let s1_curve = PrCurve::measure(&s1, &truth, &grid).unwrap();
        let predicted = random_baseline_from_counts(&s1_curve, &sizes).unwrap();
        // Monte Carlo.
        let runs = 3000;
        let mut mean_correct = vec![0.0f64; grid.len()];
        for seed in 0..runs {
            let s2 = random_selection(&s1, &grid, &sizes, &mut StdRng::seed_from_u64(seed));
            for (j, &t) in grid.iter().enumerate() {
                mean_correct[j] += Counts::measure(&s2, &truth, t).correct as f64;
            }
        }
        for (j, p) in predicted.iter().enumerate() {
            let empirical = mean_correct[j] / runs as f64;
            assert!(
                (empirical - p.expected_correct).abs() < 0.15,
                "increment {j}: empirical {empirical} vs predicted {}",
                p.expected_correct
            );
        }
    }
}

//! Parallel exhaustive matcher — identical output to S1, faster wall
//! clock.
//!
//! Repository schemas are distributed over `std::thread::scope` workers
//! pulling from an atomic cursor; each worker runs the same
//! branch-and-bound per schema; results are merged. Because scoring goes
//! through the shared precomputed cost matrix and
//! [`ObjectiveFunction`] code path, the merged
//! answer set is *equal* (ids and scores) to the sequential matcher's —
//! asserted by a test, since the entire bounds methodology rests on
//! score-identical runs.

use crate::exhaustive::ExhaustiveMatcher;
use crate::mapping::MappingRegistry;
use crate::matcher::Matcher;
use crate::objective::ObjectiveFunction;
use crate::problem::MatchProblem;
use smx_eval::{AnswerId, AnswerSet};
use smx_repo::SchemaId;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Multi-threaded S1.
#[derive(Debug, Clone)]
pub struct ParallelExhaustiveMatcher {
    inner: ExhaustiveMatcher,
    threads: usize,
}

impl ParallelExhaustiveMatcher {
    /// Build with a shared objective function and a worker count
    /// (`0` = number of available CPUs).
    pub fn new(objective: ObjectiveFunction, threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(2, |n| n.get())
        } else {
            threads
        };
        ParallelExhaustiveMatcher {
            inner: ExhaustiveMatcher::new(objective),
            threads,
        }
    }
}

impl ParallelExhaustiveMatcher {
    /// Lift into a terminal [`pipeline`](crate::pipeline) refine stage:
    /// the surviving schemas are searched across scoped workers.
    pub fn into_refine_stage(self) -> crate::pipeline::RefineStage<Self> {
        crate::pipeline::RefineStage::new(self)
    }
}

impl Matcher for ParallelExhaustiveMatcher {
    fn name(&self) -> &str {
        "S1-parallel"
    }

    fn run(&self, problem: &MatchProblem, delta_max: f64, registry: &MappingRegistry) -> AnswerSet {
        let schema_ids: Vec<SchemaId> = problem.active_schema_ids();
        // Build (or fetch) the shared engine once, before fanning out, so
        // workers only perform lock-free reads.
        let matrix = self.inner.engine(problem);
        let next = AtomicUsize::new(0);
        let mut all: Vec<(AnswerId, f64)> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..self.threads.min(schema_ids.len().max(1)) {
                let next = &next;
                let schema_ids = &schema_ids;
                let inner = &self.inner;
                let matrix = matrix.as_deref();
                handles.push(scope.spawn(move || {
                    let mut local: Vec<(AnswerId, f64)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&sid) = schema_ids.get(i) else { break };
                        inner.search_schema(problem, sid, matrix, delta_max, registry, &mut local);
                    }
                    local
                }));
            }
            for h in handles {
                all.extend(h.join().expect("worker panicked"));
            }
        });
        AnswerSet::new(all).expect("finite costs, unique interned ids")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_synth::{Scenario, ScenarioConfig};

    #[test]
    fn parallel_equals_sequential() {
        let sc = Scenario::generate(ScenarioConfig {
            derived_schemas: 6,
            noise_schemas: 4,
            personal_nodes: 4,
            host_nodes: 8,
            ..Default::default()
        });
        let problem = MatchProblem::new(sc.personal, sc.repository).unwrap();
        // One shared registry so ids are comparable.
        let registry = MappingRegistry::new();
        let sequential = ExhaustiveMatcher::default().run(&problem, 0.45, &registry);
        for threads in [1, 2, 4] {
            let parallel = ParallelExhaustiveMatcher::new(ObjectiveFunction::default(), threads)
                .run(&problem, 0.45, &registry);
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }

    #[test]
    fn zero_threads_means_auto() {
        let m = ParallelExhaustiveMatcher::new(ObjectiveFunction::default(), 0);
        assert!(m.threads >= 1);
    }
}

//! The precomputed cost-matrix scoring engine.
//!
//! Every matcher scores mappings from the same leaves: per-node
//! assignment costs (name dissimilarity blended with type
//! incompatibility) and per-edge structural penalties. The node costs are
//! by far the expensive part — full string similarity per
//! `(personal_name, repo_name)` pair — and the same *distinct* pair
//! recurs across schemas, matchers, and runs. [`CostMatrix`] evaluates
//! them exactly once:
//!
//! 1. all element names are interned through
//!    [`smx_repo::LabelInterner`], so a name distance is computed per
//!    distinct label pair, not per node pair;
//! 2. per repository schema, the dense `k × n` node-cost table is filled
//!    from the memoised distances plus the (cheap) type blend;
//! 3. per-level row minima and their suffix sums — the admissible
//!    branch-and-bound bounds — are precomputed alongside.
//!
//! Matchers read costs and bounds with plain indexed loads (no locks, no
//! string traffic, no allocation). The engine is cached inside
//! [`MatchProblem`] behind a `OnceLock`, so S1 and every S2 variant share
//! one fill.
//!
//! **Score identity.** The bounds methodology requires S1 and S2 to share
//! Δ *exactly*. The matrix fill funnels through the same
//! [`ObjectiveFunction::blend`] / `name_distance` code the direct
//! [`ObjectiveFunction::node_cost`] path uses, and
//! [`CostMatrix::mapping_cost`] replicates
//! [`ObjectiveFunction::mapping_cost`]'s summation order term by term —
//! so matrix-backed scores are **bitwise identical** to direct
//! evaluation. `tests/score_identity.rs` asserts this for all matchers.

use crate::objective::{ObjectiveConfig, ObjectiveFunction};
use crate::problem::MatchProblem;
use smx_repo::{LabelId, LabelInterner, SchemaId};
use smx_xml::{NodeId, Schema};

/// Dense per-schema node-cost table with branch-and-bound bounds.
#[derive(Debug, Clone)]
pub struct SchemaTable {
    /// Number of schema nodes (columns).
    n: usize,
    /// `k × n` node costs, level-major: `costs[level * n + node]`.
    costs: Vec<f64>,
    /// Per-level minimum node cost (the admissible per-node bound).
    row_min: Vec<f64>,
    /// Suffix sums of `row_min`: `suffix_min[i] = Σ_{j≥i} row_min[j]`,
    /// with `suffix_min[k] = 0` — the optimistic completion cost used to
    /// prune.
    suffix_min: Vec<f64>,
}

impl SchemaTable {
    fn from_costs(k: usize, n: usize, costs: Vec<f64>) -> Self {
        debug_assert_eq!(costs.len(), k * n);
        let row_min: Vec<f64> = (0..k)
            .map(|level| {
                costs[level * n..(level + 1) * n]
                    .iter()
                    .copied()
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let mut suffix_min = vec![0.0f64; k + 1];
        for i in (0..k).rev() {
            suffix_min[i] = suffix_min[i + 1] + row_min[i];
        }
        SchemaTable { n, costs, row_min, suffix_min }
    }

    /// Direct (non-memoised) fill: every cell goes through
    /// [`ObjectiveFunction::node_cost`] on raw strings. This is the
    /// pre-engine evaluation path, kept as the baseline the benches and
    /// the score-identity tests compare the matrix against.
    pub fn compute_direct(
        problem: &MatchProblem,
        schema: &Schema,
        objective: &ObjectiveFunction,
    ) -> Self {
        let personal = problem.personal();
        let k = problem.personal_size();
        let n = schema.len();
        let mut costs = Vec::with_capacity(k * n);
        for &pid in problem.personal_order() {
            for t in schema.node_ids() {
                costs.push(objective.node_cost(personal, pid, schema, t));
            }
        }
        SchemaTable::from_costs(k, n, costs)
    }

    /// Number of schema nodes (columns).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Node cost of assigning personal level `level` to the schema node
    /// with arena index `node` — one indexed load.
    #[inline]
    pub fn cost(&self, level: usize, node: usize) -> f64 {
        self.costs[level * self.n + node]
    }

    /// The whole cost row of `level`.
    #[inline]
    pub fn row(&self, level: usize) -> &[f64] {
        &self.costs[level * self.n..(level + 1) * self.n]
    }

    /// Minimum node cost at `level` — replaces the `O(n)` rescan of
    /// `ObjectiveFunction::min_node_cost`.
    #[inline]
    pub fn row_min(&self, level: usize) -> f64 {
        self.row_min[level]
    }

    /// Suffix sums of per-level minima (`suffix_min()[k] == 0`).
    #[inline]
    pub fn suffix_min(&self) -> &[f64] {
        &self.suffix_min
    }
}

/// Precomputed node costs and admissible bounds for one
/// [`MatchProblem`] under one [`ObjectiveFunction`].
#[derive(Debug, Clone)]
pub struct CostMatrix {
    objective: ObjectiveFunction,
    /// Normalisation denominator `k + e · structure_weight`.
    denom: f64,
    /// One table per repository schema, indexed by `SchemaId`.
    tables: Vec<SchemaTable>,
}

impl CostMatrix {
    /// Precompute the engine: intern labels, evaluate each distinct
    /// `(personal_label, repo_label)` name distance once, fill every
    /// schema's cost table and bounds.
    pub fn build(problem: &MatchProblem, objective: &ObjectiveFunction) -> Self {
        let personal = problem.personal();
        let k = problem.personal_size();
        let mut interner = LabelInterner::new();
        // Personal labels first: their ids form the distance-table rows.
        let personal_labels: Vec<LabelId> = problem
            .personal_order()
            .iter()
            .map(|&pid| interner.intern(&personal.node(pid).name))
            .collect();
        let personal_distinct = interner.len();
        // Intern every repository label (per-schema, arena order).
        let schema_labels: Vec<Vec<LabelId>> = problem
            .repository()
            .iter()
            .map(|(_, schema)| interner.intern_schema(schema))
            .collect();
        // One name distance per distinct (personal label, any label) pair.
        let total = interner.len();
        let mut name_dist = vec![0.0f64; personal_distinct * total];
        for p in 0..personal_distinct {
            let p_name = interner.resolve(LabelId(p as u32));
            for t in 0..total {
                name_dist[p * total + t] =
                    objective.name_distance(p_name, interner.resolve(LabelId(t as u32)));
            }
        }
        // Fill each schema's k × n table from the memoised distances.
        let personal_types: Vec<_> = problem
            .personal_order()
            .iter()
            .map(|&pid| personal.node(pid).ty)
            .collect();
        let tables: Vec<SchemaTable> = problem
            .repository()
            .iter()
            .zip(&schema_labels)
            .map(|((_, schema), labels)| {
                let n = schema.len();
                let mut costs = Vec::with_capacity(k * n);
                for level in 0..k {
                    let p_row = personal_labels[level].index() * total;
                    let p_ty = personal_types[level];
                    for (t, target) in schema.node_ids().enumerate() {
                        let nd = name_dist[p_row + labels[t].index()];
                        let td = 1.0 - p_ty.compatibility(schema.node(target).ty);
                        costs.push(objective.blend(nd, td));
                    }
                }
                SchemaTable::from_costs(k, n, costs)
            })
            .collect();
        let denom = k as f64
            + problem.personal_edges() as f64 * objective.config().structure_weight;
        CostMatrix { objective: objective.clone(), denom, tables }
    }

    /// The objective the matrix was built for.
    pub fn objective(&self) -> &ObjectiveFunction {
        &self.objective
    }

    /// The objective's weights (used to detect config mismatches).
    pub fn config(&self) -> ObjectiveConfig {
        self.objective.config()
    }

    /// The shared normalisation denominator `k + e · structure_weight`.
    #[inline]
    pub fn denom(&self) -> f64 {
        self.denom
    }

    /// The table of `sid`.
    #[inline]
    pub fn table(&self, sid: SchemaId) -> &SchemaTable {
        &self.tables[sid.index()]
    }

    /// Δ of a full assignment, read from the matrix. Term order replicates
    /// [`ObjectiveFunction::mapping_cost`] exactly, so the result is
    /// bitwise identical to direct evaluation.
    pub fn mapping_cost(
        &self,
        problem: &MatchProblem,
        schema_id: SchemaId,
        targets: &[NodeId],
    ) -> f64 {
        let personal = problem.personal();
        let schema = problem.repository().schema(schema_id);
        let table = self.table(schema_id);
        debug_assert_eq!(targets.len(), problem.personal_size());
        let structure_weight = self.objective.config().structure_weight;
        let mut total = 0.0;
        for (i, &pid) in problem.personal_order().iter().enumerate() {
            total += table.cost(i, targets[i].index());
            if let Some(parent) = personal.node(pid).parent {
                let parent_target = targets[parent.index()];
                total += structure_weight
                    * self.objective.edge_penalty(schema, parent_target, targets[i]);
            }
        }
        total / self.denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_repo::Repository;
    use smx_xml::{PrimitiveType, SchemaBuilder};

    fn fixture() -> MatchProblem {
        let personal = SchemaBuilder::new("p")
            .root("book")
            .leaf("title", PrimitiveType::String)
            .leaf("year", PrimitiveType::Integer)
            .build();
        let mut repo = Repository::new();
        repo.add(
            SchemaBuilder::new("bib")
                .root("bibliography")
                .child("book", |b| {
                    b.leaf("title", PrimitiveType::String)
                        .leaf("year", PrimitiveType::Integer)
                        .leaf("price", PrimitiveType::Decimal)
                })
                .build(),
        );
        repo.add(
            SchemaBuilder::new("shop")
                .root("store")
                .child("book", |o| o.leaf("title", PrimitiveType::String))
                .build(),
        );
        MatchProblem::new(personal, repo).unwrap()
    }

    #[test]
    fn matrix_cells_match_direct_node_cost_bitwise() {
        let problem = fixture();
        let objective = ObjectiveFunction::default();
        let matrix = CostMatrix::build(&problem, &objective);
        let personal = problem.personal();
        for (sid, schema) in problem.repository().iter() {
            let table = matrix.table(sid);
            assert_eq!(table.node_count(), schema.len());
            for (level, &pid) in problem.personal_order().iter().enumerate() {
                for t in schema.node_ids() {
                    let direct = objective.node_cost(personal, pid, schema, t);
                    let precomputed = table.cost(level, t.index());
                    assert_eq!(
                        precomputed.to_bits(),
                        direct.to_bits(),
                        "{sid} level {level} target {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn row_min_matches_min_node_cost_bitwise() {
        let problem = fixture();
        let objective = ObjectiveFunction::default();
        let matrix = CostMatrix::build(&problem, &objective);
        let personal = problem.personal();
        for (sid, schema) in problem.repository().iter() {
            let table = matrix.table(sid);
            for (level, &pid) in problem.personal_order().iter().enumerate() {
                let direct = objective.min_node_cost(personal, pid, schema);
                assert_eq!(table.row_min(level).to_bits(), direct.to_bits());
            }
        }
    }

    #[test]
    fn suffix_min_is_admissible() {
        let problem = fixture();
        let matrix = CostMatrix::build(&problem, &ObjectiveFunction::default());
        for (sid, schema) in problem.repository().iter() {
            let table = matrix.table(sid);
            let k = problem.personal_size();
            assert_eq!(table.suffix_min().len(), k + 1);
            assert_eq!(table.suffix_min()[k], 0.0);
            for level in 0..k {
                // Suffix is the sum of minima, hence ≤ any concrete
                // completion's node costs.
                let any_completion: f64 =
                    (level..k).map(|l| table.cost(l, l % schema.len())).sum();
                assert!(table.suffix_min()[level] <= any_completion + 1e-12);
                assert!(table.suffix_min()[level] >= table.suffix_min()[level + 1]);
            }
        }
    }

    #[test]
    fn mapping_cost_matches_objective_bitwise() {
        let problem = fixture();
        let objective = ObjectiveFunction::default();
        let matrix = CostMatrix::build(&problem, &objective);
        let sid = SchemaId(0);
        for targets in [
            [NodeId(1), NodeId(2), NodeId(3)],
            [NodeId(4), NodeId(0), NodeId(1)],
            [NodeId(0), NodeId(4), NodeId(2)],
        ] {
            let direct = objective.mapping_cost(&problem, sid, &targets);
            let precomputed = matrix.mapping_cost(&problem, sid, &targets);
            assert_eq!(precomputed.to_bits(), direct.to_bits(), "{targets:?}");
        }
    }

    #[test]
    fn direct_table_equals_memoised_table() {
        let problem = fixture();
        let objective = ObjectiveFunction::default();
        let matrix = CostMatrix::build(&problem, &objective);
        for (sid, schema) in problem.repository().iter() {
            let direct = SchemaTable::compute_direct(&problem, schema, &objective);
            let fast = matrix.table(sid);
            assert_eq!(direct.costs.len(), fast.costs.len());
            for (a, b) in direct.costs.iter().zip(&fast.costs) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in direct.suffix_min.iter().zip(&fast.suffix_min) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}

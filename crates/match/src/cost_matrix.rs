//! The precomputed cost-matrix scoring engine.
//!
//! Every matcher scores mappings from the same leaves: per-node
//! assignment costs (name dissimilarity blended with type
//! incompatibility) and per-edge structural penalties. The node costs
//! are by far the expensive part — full string similarity per
//! `(personal_name, repo_name)` pair — and the same *distinct* pair
//! recurs across schemas, matchers, runs, and *problems*. [`CostMatrix`]
//! pulls them from the repository's score store
//! ([`smx_repo::LabelStore`]):
//!
//! 1. per *distinct* personal label, one dense distance row against
//!    every repository label is fetched from the store — computed by a
//!    batched row-kernel sweep on first sight of the label and **cached
//!    on the repository**, so a repeated query against the same
//!    repository refills its matrix without evaluating a single string
//!    pair;
//! 2. per repository schema, the dense `k × n` node-cost table is filled
//!    from those rows (indexed through the store's per-schema label
//!    column maps) plus the (cheap) type blend;
//! 3. per-level row minima and their suffix sums — the admissible
//!    branch-and-bound bounds — are precomputed alongside.
//!
//! Matchers read costs and bounds with plain indexed loads (no locks, no
//! string traffic, no allocation). The engine is cached inside
//! [`MatchProblem`] behind a `OnceLock`, so S1 and every S2 variant share
//! one fill.
//!
//! **Score identity.** The bounds methodology requires S1 and S2 to share
//! Δ *exactly*. The store's rows are bitwise identical to
//! [`ObjectiveFunction::name_distance`] (the row kernel's contract, see
//! `smx_text::kernel`), the fill blends them through the same
//! [`ObjectiveFunction::blend`] the direct
//! [`ObjectiveFunction::node_cost`] path uses, and
//! [`CostMatrix::mapping_cost`] replicates
//! [`ObjectiveFunction::mapping_cost`]'s summation order term by term —
//! so matrix-backed scores are **bitwise identical** to direct
//! evaluation. `tests/score_identity.rs` asserts this for all matchers;
//! [`SchemaTable::compute_direct`] stays as the oracle.

use crate::objective::{ObjectiveConfig, ObjectiveFunction};
use crate::problem::MatchProblem;
use smx_repo::SchemaId;
use smx_xml::{NodeId, Schema};
use std::collections::HashMap;
use std::sync::Arc;

/// Dense per-schema node-cost table with branch-and-bound bounds.
#[derive(Debug, Clone)]
pub struct SchemaTable {
    /// Number of schema nodes (columns).
    n: usize,
    /// `k × n` node costs, level-major: `costs[level * n + node]`.
    costs: Vec<f64>,
    /// Per-level minimum node cost (the admissible per-node bound).
    row_min: Vec<f64>,
    /// Suffix sums of `row_min`: `suffix_min[i] = Σ_{j≥i} row_min[j]`,
    /// with `suffix_min[k] = 0` — the optimistic completion cost used to
    /// prune.
    suffix_min: Vec<f64>,
}

/// The shared zero-column table served for candidate-pruned schemas:
/// matchers check `MatchProblem::is_active` (or see `n == 0`) and skip
/// such schemas before touching any table accessor, so one static
/// placeholder serves every pruned schema of every restricted matrix
/// without a per-schema allocation.
static EMPTY_TABLE: SchemaTable = SchemaTable {
    n: 0,
    costs: Vec::new(),
    row_min: Vec::new(),
    suffix_min: Vec::new(),
};

impl SchemaTable {
    fn from_costs(k: usize, n: usize, costs: Vec<f64>) -> Self {
        debug_assert_eq!(costs.len(), k * n);
        let row_min: Vec<f64> = (0..k)
            .map(|level| {
                costs[level * n..(level + 1) * n]
                    .iter()
                    .copied()
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let mut suffix_min = vec![0.0f64; k + 1];
        for i in (0..k).rev() {
            suffix_min[i] = suffix_min[i + 1] + row_min[i];
        }
        SchemaTable {
            n,
            costs,
            row_min,
            suffix_min,
        }
    }

    /// Direct (non-memoised) fill: every cell goes through
    /// [`ObjectiveFunction::node_cost`] on raw strings. This is the
    /// pre-engine evaluation path, kept as the baseline the benches and
    /// the score-identity tests compare the matrix against.
    pub fn compute_direct(
        problem: &MatchProblem,
        schema: &Schema,
        objective: &ObjectiveFunction,
    ) -> Self {
        let personal = problem.personal();
        let k = problem.personal_size();
        let n = schema.len();
        let mut costs = Vec::with_capacity(k * n);
        for &pid in problem.personal_order() {
            for t in schema.node_ids() {
                costs.push(objective.node_cost(personal, pid, schema, t));
            }
        }
        SchemaTable::from_costs(k, n, costs)
    }

    /// Number of schema nodes (columns).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Node cost of assigning personal level `level` to the schema node
    /// with arena index `node` — one indexed load.
    #[inline]
    pub fn cost(&self, level: usize, node: usize) -> f64 {
        self.costs[level * self.n + node]
    }

    /// The whole cost row of `level`.
    #[inline]
    pub fn row(&self, level: usize) -> &[f64] {
        &self.costs[level * self.n..(level + 1) * self.n]
    }

    /// Minimum node cost at `level` — replaces the `O(n)` rescan of
    /// `ObjectiveFunction::min_node_cost`.
    #[inline]
    pub fn row_min(&self, level: usize) -> f64 {
        self.row_min[level]
    }

    /// Suffix sums of per-level minima (`suffix_min()[k] == 0`).
    #[inline]
    pub fn suffix_min(&self) -> &[f64] {
        &self.suffix_min
    }
}

/// Precomputed node costs and admissible bounds for one
/// [`MatchProblem`] under one [`ObjectiveFunction`].
#[derive(Debug, Clone)]
pub struct CostMatrix {
    objective: ObjectiveFunction,
    /// Normalisation denominator `k + e · structure_weight`.
    denom: f64,
    /// Unrestricted fill: one table per repository schema, indexed by
    /// `SchemaId`. Candidate-restricted fill: only the *active* schemas'
    /// tables, addressed through `sparse`.
    tables: Vec<SchemaTable>,
    /// `None` for a dense (unrestricted) matrix. For a restricted one,
    /// `sparse[sid.index()]` is the schema's slot in `tables`, or
    /// `u32::MAX` for pruned schemas — those are served the shared
    /// [`EMPTY_TABLE`] instead of materialising a struct each.
    sparse: Option<Vec<u32>>,
}

impl CostMatrix {
    /// Precompute the engine: fetch one score row per distinct personal
    /// label from the repository's [`smx_repo::LabelStore`] — all in one
    /// batched [`score_rows`](smx_repo::LabelStore::score_rows) call, so
    /// every missing row is computed by a single shared sweep over the
    /// stored profiles — then fill every schema's cost table and bounds
    /// from those rows.
    pub fn build(problem: &MatchProblem, objective: &ObjectiveFunction) -> Self {
        Self::build_pinned(problem, objective, &HashMap::new())
    }

    /// [`build`](Self::build), but rows already in the caller's hand —
    /// the batch subsystem's prefetched `Arc`s — are used directly
    /// instead of being looked up again in the store. This is what
    /// closes the cross-batch row-sharing hazard: an LRU bound below the
    /// batch vocabulary can evict a prefetched row from the *cache*, but
    /// it cannot take it out of the caller's `Arc`, so the fill neither
    /// recomputes nor re-sweeps it.
    ///
    /// Pinned rows must come from this problem's repository store (the
    /// batch guarantees that); entries of the wrong length (the store
    /// grew since the prefetch) are ignored and fetched fresh, so the
    /// result is always bitwise identical to [`build`](Self::build).
    pub fn build_pinned(
        problem: &MatchProblem,
        objective: &ObjectiveFunction,
        pinned: &HashMap<&str, Arc<Vec<f64>>>,
    ) -> Self {
        let mut span = smx_obs::span("cost_matrix.build");
        let personal = problem.personal();
        let k = problem.personal_size();
        let store = problem.repository().store();
        // One store row per *distinct* personal label; `level_rows[level]`
        // indexes into `rows` so duplicate personal names share a sweep.
        let names = problem.distinct_personal_labels();
        let expected = store.len();
        let mut rows: Vec<Option<Arc<Vec<f64>>>> = names
            .iter()
            .map(|name| {
                pinned
                    .get(name)
                    .filter(|row| row.len() == expected)
                    .map(Arc::clone)
            })
            .collect();
        let missing: Vec<&str> = names
            .iter()
            .zip(&rows)
            .filter(|(_, row)| row.is_none())
            .map(|(&name, _)| name)
            .collect();
        let row_of: HashMap<&str, usize> = names
            .iter()
            .enumerate()
            .map(|(i, &name)| (name, i))
            .collect();
        let level_rows: Vec<usize> = problem
            .personal_order()
            .iter()
            .map(|&pid| row_of[personal.node(pid).name.as_str()])
            .collect();
        let personal_types: Vec<_> = problem
            .personal_order()
            .iter()
            .map(|&pid| personal.node(pid).ty)
            .collect();
        let repo = problem.repository();
        // The windowed fill: an unrestricted problem whose distinct
        // vocabulary exceeds a bounded store's row cap would otherwise
        // sweep every missing row in one batch and hold all of them
        // live at once — the LRU evicts each row as the next lands, so
        // nothing useful survives in the cache while peak memory still
        // scales with the whole vocabulary. Instead, fetch missing rows
        // in windows of the cap and stripe-fill pre-allocated cost
        // tables window by window: each window's `Arc`s drop before the
        // next sweep, bounding live rows by the cap. Every cell is the
        // same pure `blend` of the same score-row value, written to the
        // same position — bitwise identical to the one-shot fill (the
        // `windowed_fill_matches_one_shot_bitwise` test).
        let window = match problem.active_set() {
            None => store
                .config()
                .max_cached_rows
                .filter(|&cap| missing.len() > cap.max(1))
                .map(|cap| cap.max(1)),
            Some(_) => None,
        };
        let (tables, sparse, fill_windows): (Vec<SchemaTable>, _, u64) = if let Some(w) = window {
            // Which personal levels read each distinct-label row — a
            // row's stripe touches exactly those levels of every table.
            let mut levels_of: Vec<Vec<usize>> = vec![Vec::new(); names.len()];
            for (level, &ri) in level_rows.iter().enumerate() {
                levels_of[ri].push(level);
            }
            let mut costs: Vec<Vec<f64>> =
                repo.iter().map(|(_, s)| vec![0.0; k * s.len()]).collect();
            let mut stripe = |ri: usize, row: &[f64]| {
                for &level in &levels_of[ri] {
                    let p_ty = personal_types[level];
                    for (sid, schema) in repo.iter() {
                        let labels = store.schema_labels(sid);
                        let n = schema.len();
                        let base = level * n;
                        let table = &mut costs[sid.index()];
                        for (t, target) in schema.node_ids().enumerate() {
                            let nd = row[labels[t].index()];
                            let td = 1.0 - p_ty.compatibility(schema.node(target).ty);
                            table[base + t] = objective.blend(nd, td);
                        }
                    }
                }
            };
            // Rows already in hand (the batch's pinned `Arc`s) stripe
            // immediately; only the missing ones are windowed.
            for (ri, row) in rows.iter().enumerate() {
                if let Some(row) = row {
                    stripe(ri, row);
                }
            }
            let missing_ri: Vec<usize> = rows
                .iter()
                .enumerate()
                .filter(|(_, row)| row.is_none())
                .map(|(ri, _)| ri)
                .collect();
            let mut windows = 0u64;
            for chunk in missing_ri.chunks(w) {
                let queries: Vec<&str> = chunk.iter().map(|&ri| names[ri]).collect();
                let fetched = store.score_rows(&queries);
                for (&ri, row) in chunk.iter().zip(&fetched) {
                    stripe(ri, row);
                }
                windows += 1;
            }
            let tables = repo
                .iter()
                .zip(costs)
                .map(|((_, schema), c)| SchemaTable::from_costs(k, schema.len(), c))
                .collect();
            (tables, None, windows)
        } else {
            if !missing.is_empty() {
                // A candidate-restricted problem scores only the label
                // columns its active schemas reference: missing rows come
                // back as coverage-masked partial rows (every column an
                // active schema's fill reads is covered, and covered
                // positions are bitwise identical to a full sweep's).
                let fetched = match problem.active_set() {
                    None => store.score_rows(&missing),
                    Some(active) => {
                        let mut cols: Vec<usize> = active
                            .ids()
                            .iter()
                            .flat_map(|&sid| store.schema_labels(sid))
                            .map(|lid| lid.index())
                            .collect();
                        cols.sort_unstable();
                        cols.dedup();
                        store.score_rows_subset(&missing, &cols)
                    }
                };
                let mut fetched = fetched.into_iter();
                for row in rows.iter_mut().filter(|row| row.is_none()) {
                    *row = fetched.next();
                }
            }
            let rows: Vec<Arc<Vec<f64>>> = rows
                .into_iter()
                .map(|row| row.expect("every name resolved"))
                .collect();
            // Fill each schema's k × n table from the store rows, mapping
            // arena columns to label ids through the store's column maps.
            let fill_table = |sid: SchemaId, schema: &Schema| {
                let labels = store.schema_labels(sid);
                let n = schema.len();
                let mut costs = Vec::with_capacity(k * n);
                for level in 0..k {
                    let row = rows[level_rows[level]].as_slice();
                    let p_ty = personal_types[level];
                    for (t, target) in schema.node_ids().enumerate() {
                        let nd = row[labels[t].index()];
                        let td = 1.0 - p_ty.compatibility(schema.node(target).ty);
                        costs.push(objective.blend(nd, td));
                    }
                }
                SchemaTable::from_costs(k, n, costs)
            };
            match problem.active_set() {
                None => (
                    repo.iter()
                        .map(|(sid, schema)| fill_table(sid, schema))
                        .collect(),
                    None,
                    0,
                ),
                Some(active) => {
                    let mut map = vec![u32::MAX; repo.len()];
                    let mut tables = Vec::with_capacity(active.ids().len());
                    for &sid in active.ids() {
                        map[sid.index()] = tables.len() as u32;
                        tables.push(fill_table(sid, repo.schema(sid)));
                    }
                    (tables, Some(map), 0)
                }
            }
        };
        if span.is_active() {
            span.attr("k", k);
            span.attr("distinct_labels", names.len());
            span.attr("pinned_rows", names.len() - missing.len());
            span.attr("missing_rows", missing.len());
            span.attr("restricted", problem.active_set().is_some());
            span.attr("schemas_filled", tables.len());
            span.attr("fill_windows", fill_windows);
        }
        let denom =
            k as f64 + problem.personal_edges() as f64 * objective.config().structure_weight;
        CostMatrix {
            objective: objective.clone(),
            denom,
            tables,
            sparse,
        }
    }

    /// The objective the matrix was built for.
    pub fn objective(&self) -> &ObjectiveFunction {
        &self.objective
    }

    /// The objective's weights (used to detect config mismatches).
    pub fn config(&self) -> ObjectiveConfig {
        self.objective.config()
    }

    /// The shared normalisation denominator `k + e · structure_weight`.
    #[inline]
    pub fn denom(&self) -> f64 {
        self.denom
    }

    /// The table of `sid`.
    #[inline]
    pub fn table(&self, sid: SchemaId) -> &SchemaTable {
        match &self.sparse {
            None => &self.tables[sid.index()],
            Some(map) => match map[sid.index()] {
                u32::MAX => &EMPTY_TABLE,
                slot => &self.tables[slot as usize],
            },
        }
    }

    /// Δ of a full assignment, read from the matrix. Term order replicates
    /// [`ObjectiveFunction::mapping_cost`] exactly, so the result is
    /// bitwise identical to direct evaluation.
    pub fn mapping_cost(
        &self,
        problem: &MatchProblem,
        schema_id: SchemaId,
        targets: &[NodeId],
    ) -> f64 {
        let personal = problem.personal();
        let schema = problem.repository().schema(schema_id);
        let table = self.table(schema_id);
        debug_assert_eq!(targets.len(), problem.personal_size());
        let structure_weight = self.objective.config().structure_weight;
        let mut total = 0.0;
        for (i, &pid) in problem.personal_order().iter().enumerate() {
            total += table.cost(i, targets[i].index());
            if let Some(parent) = personal.node(pid).parent {
                let parent_target = targets[parent.index()];
                total += structure_weight
                    * self
                        .objective
                        .edge_penalty(schema, parent_target, targets[i]);
            }
        }
        total / self.denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_repo::Repository;
    use smx_xml::{PrimitiveType, SchemaBuilder};

    fn fixture() -> MatchProblem {
        let personal = SchemaBuilder::new("p")
            .root("book")
            .leaf("title", PrimitiveType::String)
            .leaf("year", PrimitiveType::Integer)
            .build();
        let mut repo = Repository::new();
        repo.add(
            SchemaBuilder::new("bib")
                .root("bibliography")
                .child("book", |b| {
                    b.leaf("title", PrimitiveType::String)
                        .leaf("year", PrimitiveType::Integer)
                        .leaf("price", PrimitiveType::Decimal)
                })
                .build(),
        );
        repo.add(
            SchemaBuilder::new("shop")
                .root("store")
                .child("book", |o| o.leaf("title", PrimitiveType::String))
                .build(),
        );
        MatchProblem::new(personal, repo).unwrap()
    }

    #[test]
    fn matrix_cells_match_direct_node_cost_bitwise() {
        let problem = fixture();
        let objective = ObjectiveFunction::default();
        let matrix = CostMatrix::build(&problem, &objective);
        let personal = problem.personal();
        for (sid, schema) in problem.repository().iter() {
            let table = matrix.table(sid);
            assert_eq!(table.node_count(), schema.len());
            for (level, &pid) in problem.personal_order().iter().enumerate() {
                for t in schema.node_ids() {
                    let direct = objective.node_cost(personal, pid, schema, t);
                    let precomputed = table.cost(level, t.index());
                    assert_eq!(
                        precomputed.to_bits(),
                        direct.to_bits(),
                        "{sid} level {level} target {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn windowed_fill_matches_one_shot_bitwise() {
        // A vocabulary (6 distinct personal labels) above the row cap
        // (2) takes the windowed fill path; an unbounded store takes
        // the one-shot path. Same schemas, same objective — every cell
        // must be bitwise identical, and the bounded store must end the
        // build holding no more rows than its cap.
        let personal = SchemaBuilder::new("p")
            .root("catalogue")
            .leaf("title", PrimitiveType::String)
            .leaf("author", PrimitiveType::String)
            .leaf("year", PrimitiveType::Integer)
            .leaf("price", PrimitiveType::Decimal)
            .leaf("isbn", PrimitiveType::String)
            .build();
        let schemas = || {
            [
                SchemaBuilder::new("bib")
                    .root("bibliography")
                    .child("book", |b| {
                        b.leaf("bookTitle", PrimitiveType::String)
                            .leaf("authorName", PrimitiveType::String)
                            .leaf("publicationYear", PrimitiveType::Integer)
                    })
                    .build(),
                SchemaBuilder::new("shop")
                    .root("store")
                    .child("item", |o| {
                        o.leaf("title", PrimitiveType::String)
                            .leaf("cost", PrimitiveType::Decimal)
                    })
                    .build(),
            ]
        };
        let cap = 2;
        let mut unbounded = Repository::new();
        let mut bounded = Repository::with_store_config(smx_repo::StoreConfig {
            max_cached_rows: Some(cap),
            batch_threads: 1,
            shards: 0,
        });
        for s in schemas() {
            unbounded.add(s);
        }
        for s in schemas() {
            bounded.add(s);
        }
        let objective = ObjectiveFunction::default();
        let one_shot = CostMatrix::build(
            &MatchProblem::new(personal.clone(), unbounded).unwrap(),
            &objective,
        );
        let bounded_problem = MatchProblem::new(personal, bounded).unwrap();
        assert!(bounded_problem.distinct_personal_labels().len() > cap);
        let windowed = CostMatrix::build(&bounded_problem, &objective);
        for (sid, schema) in bounded_problem.repository().iter() {
            let (a, b) = (one_shot.table(sid), windowed.table(sid));
            assert_eq!(a.node_count(), b.node_count());
            for level in 0..bounded_problem.personal_size() {
                for t in 0..schema.len() {
                    assert_eq!(
                        a.cost(level, t).to_bits(),
                        b.cost(level, t).to_bits(),
                        "{sid} level {level} target {t}"
                    );
                }
                assert_eq!(a.row_min(level).to_bits(), b.row_min(level).to_bits());
            }
            assert_eq!(
                a.suffix_min()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                b.suffix_min()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>()
            );
        }
        assert!(bounded_problem.repository().store().cached_rows() <= cap);
    }

    #[test]
    fn row_min_matches_min_node_cost_bitwise() {
        let problem = fixture();
        let objective = ObjectiveFunction::default();
        let matrix = CostMatrix::build(&problem, &objective);
        let personal = problem.personal();
        for (sid, schema) in problem.repository().iter() {
            let table = matrix.table(sid);
            for (level, &pid) in problem.personal_order().iter().enumerate() {
                let direct = objective.min_node_cost(personal, pid, schema);
                assert_eq!(table.row_min(level).to_bits(), direct.to_bits());
            }
        }
    }

    #[test]
    fn suffix_min_is_admissible() {
        let problem = fixture();
        let matrix = CostMatrix::build(&problem, &ObjectiveFunction::default());
        for (sid, schema) in problem.repository().iter() {
            let table = matrix.table(sid);
            let k = problem.personal_size();
            assert_eq!(table.suffix_min().len(), k + 1);
            assert_eq!(table.suffix_min()[k], 0.0);
            for level in 0..k {
                // Suffix is the sum of minima, hence ≤ any concrete
                // completion's node costs.
                let any_completion: f64 = (level..k).map(|l| table.cost(l, l % schema.len())).sum();
                assert!(table.suffix_min()[level] <= any_completion + 1e-12);
                assert!(table.suffix_min()[level] >= table.suffix_min()[level + 1]);
            }
        }
    }

    #[test]
    fn mapping_cost_matches_objective_bitwise() {
        let problem = fixture();
        let objective = ObjectiveFunction::default();
        let matrix = CostMatrix::build(&problem, &objective);
        let sid = SchemaId(0);
        for targets in [
            [NodeId(1), NodeId(2), NodeId(3)],
            [NodeId(4), NodeId(0), NodeId(1)],
            [NodeId(0), NodeId(4), NodeId(2)],
        ] {
            let direct = objective.mapping_cost(&problem, sid, &targets);
            let precomputed = matrix.mapping_cost(&problem, sid, &targets);
            assert_eq!(precomputed.to_bits(), direct.to_bits(), "{targets:?}");
        }
    }

    #[test]
    fn direct_table_equals_memoised_table() {
        let problem = fixture();
        let objective = ObjectiveFunction::default();
        let matrix = CostMatrix::build(&problem, &objective);
        for (sid, schema) in problem.repository().iter() {
            let direct = SchemaTable::compute_direct(&problem, schema, &objective);
            let fast = matrix.table(sid);
            assert_eq!(direct.costs.len(), fast.costs.len());
            for (a, b) in direct.costs.iter().zip(&fast.costs) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in direct.suffix_min.iter().zip(&fast.suffix_min) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}

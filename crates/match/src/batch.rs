//! Batch matching: many personal schemas against one repository.
//!
//! The paper's non-exhaustive bounds are about *serving* — one large
//! repository answering a stream of personal-schema queries. Matching
//! each [`MatchProblem`] alone repeats work the queries share: their
//! label vocabularies overlap heavily (personal schemas come from the
//! same domain), yet every solo cost-matrix fill fetches its rows
//! one problem at a time. This module builds the bulk path:
//!
//! * [`BatchProblem`] — N personal schemas against one
//!   [`Repository`]. All N problems share the repository's label score
//!   store (`Arc`-shared via cloning), and
//!   [`BatchProblem::prefill_rows`] dedups the batch's distinct labels
//!   and fetches every missing score row in **one** call to
//!   [`LabelStore::score_rows`](smx_repo::LabelStore::score_rows) — a
//!   single profile-major sweep over the stored label profiles (one
//!   pass per repository label column), optionally chunked across
//!   scoped worker threads, instead of one pass per query label.
//! * [`BatchMatcher`] — dispatches every problem in the batch to any
//!   inner [`Matcher`] (exhaustive, parallel, beam, cluster, top-k,
//!   brute-force), sequentially or across `std::thread::scope` workers.
//!
//! # Identity contract
//!
//! Batching is an *execution* strategy, never a scoring one: the
//! batched sweep computes the same per-pair values as solo fills
//! (per-pair independence; see `smx_repo::store`), so every answer set
//! returned by [`BatchMatcher::run_batch`] is **bitwise identical** —
//! scores and, under sequential dispatch with a shared registry, even
//! answer ids — to running each problem alone through the same
//! matcher. `tests/batch_identity.rs` gates this differentially across
//! all six matchers. Threaded dispatch can intern mappings in a
//! different order, so only ids may differ there; resolved mappings
//! and scores still match bitwise.
//!
//! The candidate tier composes freely with batching: wrap the inner
//! matcher in a [`CertifiedMatcher`](crate::certified::CertifiedMatcher)
//! (or restrict each problem via
//! [`MatchProblem::with_candidates`] before dispatch). Restricted
//! fills go through the store's subset sweep, which shares the same
//! cached rows the batched prefill populates — per-pair values are
//! identical either way, so the identity contract is unaffected.
//!
//! # Memory pressure: pinned rows and batch-aware admission
//!
//! A store LRU bound below the batch's distinct label count used to
//! reopen the amortisation gap: a prefetched row could be evicted
//! before the per-problem fills read it, and each fill would re-sweep
//! it. Two mechanisms close the gap:
//!
//! * [`BatchProblem::build_matrices`] keeps the `Arc` rows returned by
//!   the prefetch and fills every matrix **directly from them**
//!   ([`CostMatrix::build_pinned`](crate::CostMatrix::build_pinned)) —
//!   eviction can drop a row from the cache but not from the batch's
//!   hands, so the one-sweep-per-distinct-label invariant holds under
//!   *any* bound.
//! * [`BatchMatcher::run_batch`] practices **batch-aware admission**:
//!   when the store is bounded, [`BatchProblem::admission_chunks`]
//!   splits the batch into contiguous chunks whose union vocabulary
//!   fits `max_cached_rows`, and each chunk is prefetched and matched
//!   before the next is admitted. Within a chunk the prefilled rows
//!   are the most recently used, so the LRU never evicts them before
//!   the chunk's fills read them — zero within-chunk evictions (the
//!   admission tests assert this via `StoreCounters`). Only a *single
//!   problem* whose own vocabulary exceeds the bound can still thrash.
//!
//! Either way results are unaffected — bounded, chunked, pinned, or
//! plain, every path computes bitwise-identical rows.

use crate::error::MatchError;
use crate::mapping::MappingRegistry;
use crate::matcher::Matcher;
use crate::objective::ObjectiveFunction;
use crate::problem::MatchProblem;
use smx_eval::AnswerSet;
use smx_repo::Repository;
use smx_xml::Schema;
use std::collections::HashMap;
use std::sync::Arc;

/// N personal schemas to be matched against one repository.
///
/// Construction is cheap: every contained [`MatchProblem`] clones the
/// repository, and repository clones share both the schema list and
/// the label store — profiles, token index, and cached score rows —
/// through `Arc`s, so no schema data is duplicated per problem.
#[derive(Debug, Clone)]
pub struct BatchProblem {
    repository: Repository,
    problems: Vec<MatchProblem>,
}

impl BatchProblem {
    /// Wrap `personals` against `repository`. Fails on the first empty
    /// personal schema; an empty batch is valid.
    pub fn new(personals: Vec<Schema>, repository: Repository) -> Result<Self, MatchError> {
        let problems = personals
            .into_iter()
            .map(|personal| MatchProblem::new(personal, repository.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BatchProblem {
            repository,
            problems,
        })
    }

    /// Number of problems in the batch.
    pub fn len(&self) -> usize {
        self.problems.len()
    }

    /// Whether the batch holds no problems.
    pub fn is_empty(&self) -> bool {
        self.problems.is_empty()
    }

    /// The shared repository.
    pub fn repository(&self) -> &Repository {
        &self.repository
    }

    /// The contained problems, batch order.
    pub fn problems(&self) -> &[MatchProblem] {
        &self.problems
    }

    /// One problem by batch index.
    pub fn problem(&self, index: usize) -> &MatchProblem {
        &self.problems[index]
    }

    /// The batch's distinct personal labels, first-seen order across
    /// problems — what one shared sweep must cover.
    pub fn distinct_labels(&self) -> Vec<&str> {
        Self::distinct_labels_of(&self.problems)
    }

    /// Distinct personal labels of a slice of problems, first-seen
    /// order — the per-chunk variant of [`distinct_labels`](Self::distinct_labels).
    fn distinct_labels_of(problems: &[MatchProblem]) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for problem in problems {
            for name in problem.distinct_personal_labels() {
                if !names.contains(&name) {
                    names.push(name);
                }
            }
        }
        names
    }

    /// Fetch every distinct personal label's score row from the shared
    /// store in one batched call — missing rows are computed by a
    /// single sweep over the stored profiles instead of one sweep per
    /// label per problem. Returns the number of distinct labels served.
    ///
    /// After this, each problem's cost-matrix fill is pure cached-row
    /// lookups (unless the store's LRU bound evicted rows in between —
    /// [`build_matrices`](Self::build_matrices) pins the rows instead,
    /// which no bound can undo).
    pub fn prefill_rows(&self) -> usize {
        let names = self.distinct_labels();
        if !names.is_empty() {
            self.repository.store().score_rows(&names);
        }
        names.len()
    }

    /// Prefill the distinct labels of the problems in `chunk` only —
    /// the admission path ([`BatchMatcher::run_batch`]) serves a
    /// bounded store chunk by chunk so no chunk's vocabulary outgrows
    /// the row cache. Returns the number of distinct labels served.
    pub fn prefill_chunk(&self, chunk: std::ops::Range<usize>) -> usize {
        let names = Self::distinct_labels_of(&self.problems[chunk]);
        if !names.is_empty() {
            self.repository.store().score_rows(&names);
        }
        names.len()
    }

    /// The batch's distinct score rows, prefetched in one call and
    /// returned as `Arc`s keyed by label — the pinned form
    /// [`build_matrices`](Self::build_matrices) fills from, immune to
    /// LRU eviction between prefetch and fill.
    pub fn pinned_rows(&self) -> HashMap<&str, Arc<Vec<f64>>> {
        let names = self.distinct_labels();
        if names.is_empty() {
            return HashMap::new();
        }
        let rows = self.repository.store().score_rows(&names);
        names.into_iter().zip(rows).collect()
    }

    /// Prefill the shared rows, then build every problem's
    /// [`CostMatrix`](crate::CostMatrix) for `objective` directly from
    /// the prefetched `Arc` rows (warm, lookup-free fills). Matchers
    /// running afterwards find their engine ready. Because the rows are
    /// pinned, an LRU bound below the batch vocabulary cannot force a
    /// re-sweep: the batch still costs exactly one sweep per distinct
    /// label.
    pub fn build_matrices(&self, objective: &ObjectiveFunction) {
        let pinned = self.pinned_rows();
        for problem in &self.problems {
            problem.cost_matrix_pinned(objective, &pinned);
        }
    }

    /// Split the batch into contiguous chunks whose union label
    /// vocabularies each fit the store's row-cache bound — the
    /// admission schedule [`BatchMatcher::run_batch`] follows on a
    /// bounded store so prefilled rows are never evicted before the
    /// chunk that prefilled them is done. Unbounded stores (and batches
    /// that fit whole) get one chunk. Every chunk holds at least one
    /// problem, so a single problem with more distinct labels than the
    /// bound still gets admitted (and documented-ly thrashes).
    pub fn admission_chunks(&self) -> Vec<std::ops::Range<usize>> {
        if self.problems.is_empty() {
            return Vec::new();
        }
        let Some(cap) = self.repository.store().config().max_cached_rows else {
            return std::iter::once(0..self.problems.len()).collect();
        };
        let mut chunks = Vec::new();
        let mut start = 0usize;
        let mut vocabulary: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for (i, problem) in self.problems.iter().enumerate() {
            let labels = problem.distinct_personal_labels();
            let grown = labels
                .iter()
                .filter(|name| !vocabulary.contains(*name))
                .count();
            if i > start && vocabulary.len() + grown > cap {
                chunks.push(start..i);
                start = i;
                vocabulary.clear();
            }
            vocabulary.extend(labels);
        }
        chunks.push(start..self.problems.len());
        chunks
    }

    /// Take the problems out of the batch.
    pub fn into_problems(self) -> Vec<MatchProblem> {
        self.problems
    }
}

/// Bulk dispatcher: one shared row prefill, then the inner matcher per
/// problem — sequentially by default, or across `std::thread::scope`
/// workers pulling problems from an atomic cursor.
#[derive(Debug, Clone)]
pub struct BatchMatcher<M> {
    inner: M,
    threads: usize,
}

impl<M: Matcher + Sync> BatchMatcher<M> {
    /// Sequential dispatch (problems run in batch order, one at a
    /// time) — the mode whose answer sets are identical to solo runs
    /// down to the interned ids.
    pub fn new(inner: M) -> Self {
        BatchMatcher { inner, threads: 1 }
    }

    /// Dispatch across `threads` scoped workers (`0` = available
    /// parallelism). Scores stay bitwise identical to sequential
    /// dispatch; only registry id assignment order may differ.
    pub fn with_threads(inner: M, threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |t| t.get())
        } else {
            threads
        };
        BatchMatcher { inner, threads }
    }

    /// The wrapped matcher.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Configured worker count (1 = sequential).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run the whole batch: prefill the shared score rows, then run the
    /// inner matcher per problem. `result[i]` answers
    /// `batch.problem(i)`.
    ///
    /// On a bounded store the batch is admitted chunk by chunk
    /// ([`BatchProblem::admission_chunks`]): each chunk's vocabulary is
    /// prefilled (never exceeding the bound) and its problems matched
    /// before the next chunk's prefill may evict anything — so the row
    /// cache never thrashes within a chunk, at the cost of shared
    /// labels being re-swept once per chunk that uses them. Sequential
    /// dispatch order is identical either way, so so are the results.
    pub fn run_batch(
        &self,
        batch: &BatchProblem,
        delta_max: f64,
        registry: &MappingRegistry,
    ) -> Vec<AnswerSet> {
        let mut span = smx_obs::span("batch.run");
        let chunks = batch.admission_chunks();
        if span.is_active() {
            span.attr("problems", batch.len());
            span.attr("chunks", chunks.len().max(1));
            span.attr("threads", self.threads);
        }
        if chunks.len() <= 1 {
            batch.prefill_rows();
            return self.dispatch(batch.problems(), delta_max, registry);
        }
        let mut results = Vec::with_capacity(batch.len());
        for chunk in chunks {
            let mut chunk_span = smx_obs::span("batch.chunk");
            let prefilled = batch.prefill_chunk(chunk.clone());
            if chunk_span.is_active() {
                chunk_span.attr("start", chunk.start);
                chunk_span.attr("end", chunk.end);
                chunk_span.attr("prefilled_labels", prefilled);
            }
            results.extend(self.dispatch(&batch.problems()[chunk], delta_max, registry));
        }
        results
    }

    /// Run the inner matcher over `problems` — in order when
    /// sequential, or across scoped workers pulling from an atomic
    /// cursor. Results are returned in problem order regardless.
    fn dispatch(
        &self,
        problems: &[MatchProblem],
        delta_max: f64,
        registry: &MappingRegistry,
    ) -> Vec<AnswerSet> {
        if self.threads <= 1 || problems.len() <= 1 {
            return problems
                .iter()
                .map(|problem| self.inner.run(problem, delta_max, registry))
                .collect();
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let mut results: Vec<Option<AnswerSet>> = (0..problems.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..self.threads.min(problems.len()) {
                let next = &next;
                let inner = &self.inner;
                handles.push(scope.spawn(move || {
                    let mut local: Vec<(usize, AnswerSet)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(problem) = problems.get(i) else {
                            break;
                        };
                        local.push((i, inner.run(problem, delta_max, registry)));
                    }
                    local
                }));
            }
            for handle in handles {
                for (i, answers) in handle.join().expect("batch worker panicked") {
                    results[i] = Some(answers);
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every problem dispatched"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::ExhaustiveMatcher;
    use crate::mapping::MappingRegistry;
    use smx_xml::{PrimitiveType, SchemaBuilder};

    fn repository() -> Repository {
        let mut repo = Repository::new();
        repo.add(
            SchemaBuilder::new("bib")
                .root("bibliography")
                .child("book", |b| {
                    b.leaf("title", PrimitiveType::String)
                        .leaf("year", PrimitiveType::Integer)
                        .leaf("price", PrimitiveType::Decimal)
                })
                .build(),
        );
        repo.add(
            SchemaBuilder::new("shop")
                .root("store")
                .child("order", |o| o.leaf("title", PrimitiveType::String))
                .build(),
        );
        repo
    }

    fn personal(extra: &str) -> Schema {
        SchemaBuilder::new("p")
            .root("book")
            .leaf("title", PrimitiveType::String)
            .leaf(extra, PrimitiveType::Integer)
            .build()
    }

    #[test]
    fn batch_accessors_and_label_dedup() {
        let batch = BatchProblem::new(
            vec![personal("year"), personal("year"), personal("isbn")],
            repository(),
        )
        .unwrap();
        assert_eq!(batch.len(), 3);
        assert!(!batch.is_empty());
        assert_eq!(batch.problem(2).personal_size(), 3);
        // book/title/year shared; isbn only in the third problem.
        assert_eq!(
            batch.distinct_labels(),
            vec!["book", "title", "year", "isbn"]
        );
        assert_eq!(batch.prefill_rows(), 4);
        let store = batch.repository().store();
        assert_eq!(store.cached_rows(), 4);
        assert_eq!(store.pair_evals(), 4 * store.len() as u64);
        // Warm matrices: zero further pair evaluations.
        batch.build_matrices(&ObjectiveFunction::default());
        assert_eq!(store.pair_evals(), 4 * store.len() as u64);
        assert_eq!(batch.into_problems().len(), 3);
    }

    #[test]
    fn empty_personal_schema_rejected() {
        let err = BatchProblem::new(vec![Schema::new("empty")], repository()).unwrap_err();
        assert_eq!(err, MatchError::EmptyPersonalSchema);
    }

    #[test]
    fn empty_batch_runs_to_nothing() {
        let batch = BatchProblem::new(Vec::new(), repository()).unwrap();
        assert!(batch.is_empty());
        assert_eq!(batch.prefill_rows(), 0);
        let registry = MappingRegistry::new();
        let results =
            BatchMatcher::new(ExhaustiveMatcher::default()).run_batch(&batch, 0.4, &registry);
        assert!(results.is_empty());
    }

    #[test]
    fn thread_count_resolution() {
        let auto = BatchMatcher::with_threads(ExhaustiveMatcher::default(), 0);
        assert!(auto.threads() >= 1);
        let fixed = BatchMatcher::with_threads(ExhaustiveMatcher::default(), 3);
        assert_eq!(fixed.threads(), 3);
        assert_eq!(BatchMatcher::new(ExhaustiveMatcher::default()).threads(), 1);
        assert_eq!(fixed.inner().name(), "S1-exhaustive");
    }
}

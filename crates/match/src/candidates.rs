//! Candidate generation: the inverted-index filter tier in front of the
//! matchers.
//!
//! An exhaustive run scores every repository schema; for a large
//! repository most of them provably cannot contain a single answer at
//! the query's threshold. [`CandidateGenerator`] proves that *before*
//! any exact scoring happens, from the store's
//! [`FilterIndex`](smx_repo::FilterIndex) alone:
//!
//! 1. per distinct personal label, an **admissible upper bound** on the
//!    name similarity against every repository label
//!    ([`LabelStore::similarity_upper_bounds`](smx_repo::LabelStore::similarity_upper_bounds))
//!    is turned into a lower bound on the node cost —
//!    `cost ≥ blend(max(0, 1 − sim_ub), 0)`, since the type distance
//!    and every edge penalty are non-negative and
//!    [`ObjectiveFunction::blend`] is monotone in both arguments;
//! 2. per repository schema, summing each personal level's *minimum*
//!    node-cost lower bound gives a lower bound on **every** mapping's
//!    un-normalised cost. If it exceeds the threshold budget
//!    `δ_max · denom`, the schema is **certified empty** — pruning it
//!    loses no answer, by construction;
//! 3. schemas that cannot be certified empty are either kept *active*
//!    (scored exactly, so their answers are bitwise identical to the
//!    exhaustive oracle's) or — under an explicit
//!    [`CandidateConfig::budget`] — pruned with an admissible **cap**
//!    on how many answers they could have contained: per level, the
//!    count of schema nodes whose cost lower bound fits the budget
//!    left by the other levels' minima, multiplied across levels.
//!
//! The caps are what makes non-exhaustiveness *certifiable*: S1's
//! answer set on the pruned schemas has at most `Σ caps` members, so
//! `|A| / (|A| + Σ caps)` lower-bounds both the answer-size ratio
//! `Â = |A_S2|/|A_S1|` and the recall of the candidate run relative to
//! the exhaustive one — the paper's bounds machinery (`smx-core`) runs
//! on exactly that ratio. With the default auto budget only
//! certified-empty schemas are pruned, the cap sum is zero, and the
//! certificate collapses to recall 1 at full speedup.
//!
//! The same machinery backs the [`pipeline`](crate::pipeline) stages:
//! `BoundsTable` computes every schema's certification facts once at
//! full precision, so any composition of filter stages prunes and caps
//! against one shared, deterministic table.

use crate::objective::ObjectiveFunction;
use crate::problem::MatchProblem;
use smx_repo::{LabelId, LabelStore, QueryFilter, SchemaId, BOUND_EPS};
use std::collections::HashMap;
use std::sync::Arc;

/// Float-order slack added to the threshold budget before any prune
/// decision: a schema is only certified empty when its cost lower bound
/// clears the budget by more than the worst accumulated rounding error
/// of a real scoring run. Deliberately much wider than the `1e-12`
/// comparison slack the matchers use.
pub const CERT_SLACK: f64 = 1e-6;

/// How the generator chooses which non-certified schemas stay active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CandidateConfig {
    /// `None` (auto): keep **every** schema that cannot be certified
    /// empty — certified recall 1.0, the headline mode. `Some(b)`: keep
    /// the `b` most promising schemas (smallest cost lower bound) and
    /// cap the rest; `Some(0)` prunes everything and certifies only
    /// what the caps allow.
    pub budget: Option<usize>,
}

/// The filter tier: turns a [`MatchProblem`] and a threshold into a
/// [`CandidateSet`].
#[derive(Debug, Clone, Default)]
pub struct CandidateGenerator {
    objective: ObjectiveFunction,
    config: CandidateConfig,
}

/// Per-schema verdict, kept internal to generation.
struct Verdict {
    sid: SchemaId,
    /// Lower bound on any mapping's un-normalised cost in this schema.
    total_lb: f64,
    /// Admissible cap on the schema's answer count if pruned.
    cap: f64,
}

/// Admissible node-cost lower bound from a similarity upper bound:
/// `blend(nd, td)` is monotone and `td ≥ 0`, so this lower-bounds the
/// true node cost; `BOUND_EPS` absorbs the blend's own rounding.
fn to_lb(objective: &ObjectiveFunction, ub: f64) -> f64 {
    let nd_lb = (1.0 - ub).max(0.0);
    (objective.blend(nd_lb, 0.0) - BOUND_EPS).max(0.0)
}

/// The shared two-phase inverted sweep behind both
/// [`CandidateGenerator::generate`] and `BoundsTable::compute`.
///
/// Phase 1 (coarse): one slot per (schema, lane), initialised to a
/// `clamp` and lowered by walking the label→schema postings of only the
/// labels the filter index bounded *below* the clamp. Clamping any slot
/// at `c ≤` its true per-lane minimum keeps the slot an under-estimate,
/// so a schema whose clamped total already exceeds the budget is
/// certified empty exactly as the full scan would certify it. The clamp
/// is chosen just above `budget / k`, the smallest value at which an
/// all-clamped schema still certifies — that way the walk touches only
/// near-match labels (strong similarity upper bounds), not every label
/// that merely shares a character with the query.
///
/// Phase 2 (per-schema, via [`LaneSweep::fill_minima`] and
/// [`LaneSweep::cap`]): the few schemas phase 1 cannot certify get
/// per-level minima recomputed from the bound lanes as they stand —
/// cheap entries where the filter ruled the label out, walk-promoted
/// full-precision entries where it could not. Every entry is an
/// admissible cost lower bound either way, so minima, totals and caps
/// built from them certify conservatively; callers that *rank* or
/// *cap* schemas promote the schema's lanes to full precision first
/// ([`LaneSweep::promote_schema`]) — loose caps would make a
/// certificate admissible but vacuous.
struct LaneSweep<'a> {
    store: &'a LabelStore,
    objective: &'a ObjectiveFunction,
    filters: Vec<QueryFilter>,
    bounds: Vec<Vec<f64>>,
    tris: Vec<Vec<u32>>,
    refined: Vec<Vec<bool>>,
    level_lane: Vec<usize>,
    lane_mult: Vec<f64>,
    lanelb: Vec<f64>,
    n_lanes: usize,
    /// Un-normalised threshold budget `δ_max · denom + 1e-12 + CERT_SLACK`.
    budget: f64,
    /// (lane, label) entries promoted to full precision so far — the
    /// walk's work counter, surfaced through the `candidates.*` spans.
    refined_count: usize,
}

impl<'a> LaneSweep<'a> {
    /// Run phase 1 for `problem` at `delta_max`.
    fn run(
        objective: &'a ObjectiveFunction,
        problem: &'a MatchProblem,
        delta_max: f64,
    ) -> LaneSweep<'a> {
        let repo = problem.repository();
        let store = repo.store();
        let k = problem.personal_size();
        let denom =
            k as f64 + problem.personal_edges() as f64 * objective.config().structure_weight;
        // The same un-normalised budget the exhaustive matcher prunes
        // against, widened by CERT_SLACK so certification is strictly
        // more conservative than search.
        let budget = delta_max * denom + 1e-12 + CERT_SLACK;

        // One cost-lower-bound lane per distinct personal label, from
        // the store's *cheap* similarity pass (token-set lane capped at
        // 1.0): every entry is an admissible but weaker lower bound.
        // `refined[d][l]` tracks which entries were promoted to full
        // precision — the sweep only pays the expensive token-set
        // bound for labels whose value can actually influence a prune
        // decision.
        let personal = problem.personal();
        let names = problem.distinct_personal_labels();
        let n_labels = store.len();
        let mut filters: Vec<QueryFilter> = Vec::with_capacity(names.len());
        let mut bounds: Vec<Vec<f64>> = Vec::with_capacity(names.len());
        let mut tris: Vec<Vec<u32>> = Vec::with_capacity(names.len());
        let mut refined: Vec<Vec<bool>> = Vec::with_capacity(names.len());
        let mut sim_ub: Vec<f64> = Vec::new();
        for name in &names {
            let filter = QueryFilter::new(name);
            let mut tri = Vec::new();
            store.similarity_upper_bounds_cheap(&filter, &mut sim_ub, &mut tri);
            bounds.push(sim_ub.iter().map(|&ub| to_lb(objective, ub)).collect());
            tris.push(tri);
            refined.push(vec![false; n_labels]);
            filters.push(filter);
        }
        let row_of: HashMap<&str, usize> = names
            .iter()
            .enumerate()
            .map(|(i, &name)| (name, i))
            .collect();
        let level_lane: Vec<usize> = problem
            .personal_order()
            .iter()
            .map(|&pid| row_of[personal.node(pid).name.as_str()])
            .collect();
        // Levels sharing a personal label share a lane; group them so
        // each lane's postings are walked once.
        let mut lane_levels: Vec<Vec<usize>> = vec![Vec::new(); names.len()];
        for (level, &d) in level_lane.iter().enumerate() {
            lane_levels[d].push(level);
        }

        let n_schemas = repo.len();
        let n_lanes = bounds.len();
        let floor = (objective.blend(1.0 - BOUND_EPS, 0.0) - BOUND_EPS).max(0.0);
        let clamp = floor.min(1.05 * budget / k as f64);
        let mut lanelb = vec![clamp; n_schemas * n_lanes];
        let mut refined_count = 0usize;
        for d in 0..n_lanes {
            for idx in 0..n_labels {
                if bounds[d][idx] >= clamp {
                    continue;
                }
                let lid = LabelId(idx as u32);
                if !refined[d][idx] {
                    // The cheap bound says "maybe strong"; promote to
                    // full precision before letting it lower any slot.
                    let ub = store.refine_similarity_upper_bound(&filters[d], lid, tris[d][idx]);
                    bounds[d][idx] = to_lb(objective, ub);
                    refined[d][idx] = true;
                    refined_count += 1;
                    if bounds[d][idx] >= clamp {
                        continue;
                    }
                }
                let lb = bounds[d][idx];
                for &sid in store.schemas_with_label(lid) {
                    let slot = &mut lanelb[sid.index() * n_lanes + d];
                    if lb < *slot {
                        *slot = lb;
                    }
                }
            }
        }
        // Levels sharing a lane multiply that lane's coarse minimum.
        let lane_mult: Vec<f64> = lane_levels.iter().map(|ls| ls.len() as f64).collect();

        LaneSweep {
            store,
            objective,
            filters,
            bounds,
            tris,
            refined,
            level_lane,
            lane_mult,
            lanelb,
            n_lanes,
            budget,
            refined_count,
        }
    }

    /// Coarse per-schema total from the clamped lanes.
    fn coarse(&self, sid: SchemaId) -> f64 {
        let lanes =
            &self.lanelb[sid.index() * self.n_lanes..sid.index() * self.n_lanes + self.n_lanes];
        lanes
            .iter()
            .zip(&self.lane_mult)
            .map(|(lb, m)| lb * m)
            .sum()
    }

    /// Promote every (lane, label) entry of one schema's vocabulary to
    /// full precision, so rankings and caps built from the lanes are as
    /// tight as the filter index allows.
    fn promote_schema(&mut self, labels: &[LabelId]) {
        for (d, filter) in self.filters.iter().enumerate() {
            for &lid in labels {
                let idx = lid.index();
                if !self.refined[d][idx] {
                    let ub =
                        self.store
                            .refine_similarity_upper_bound(filter, lid, self.tris[d][idx]);
                    self.bounds[d][idx] = to_lb(self.objective, ub);
                    self.refined[d][idx] = true;
                    self.refined_count += 1;
                }
            }
        }
    }

    /// Per-level minima over one schema's labels, from the lanes as
    /// refined so far; returns the schema's mapping-cost lower bound.
    fn fill_minima(&self, labels: &[LabelId], exact: &mut [f64]) -> f64 {
        for (level, slot) in exact.iter_mut().enumerate() {
            let lane = &self.bounds[self.level_lane[level]];
            *slot = labels
                .iter()
                .map(|lid| lane[lid.index()])
                .fold(f64::INFINITY, f64::min);
        }
        exact.iter().sum()
    }

    /// Admissible answer cap: a mapping at level `level` must use a
    /// node whose cost lower bound fits the budget left after every
    /// other level contributes at least its minimum.
    fn cap(&self, labels: &[LabelId], exact: &[f64], total_lb: f64) -> f64 {
        let mut cap = 1.0f64;
        for (level, lb) in exact.iter().enumerate() {
            let lane = &self.bounds[self.level_lane[level]];
            let room = self.budget - (total_lb - lb);
            let fits = labels
                .iter()
                .filter(|lid| lane[lid.index()] <= room)
                .count();
            cap *= fits as f64;
        }
        cap
    }
}

impl CandidateGenerator {
    /// Build with the shared objective (its weights shape the cost
    /// lower bounds) and a selection config.
    pub fn new(objective: ObjectiveFunction, config: CandidateConfig) -> Self {
        CandidateGenerator { objective, config }
    }

    /// Auto-budget generator: prunes only certified-empty schemas, so
    /// the resulting certificate is always recall 1.0.
    pub fn auto(objective: ObjectiveFunction) -> Self {
        CandidateGenerator::new(objective, CandidateConfig::default())
    }

    /// The selection config.
    pub fn config(&self) -> CandidateConfig {
        self.config
    }

    /// The shared objective.
    pub fn objective(&self) -> &ObjectiveFunction {
        &self.objective
    }

    /// Generate the candidate set for `problem` at threshold
    /// `delta_max`: which schemas a restricted run must score, and an
    /// admissible cap on the answers the pruned ones could hold.
    pub fn generate(&self, problem: &MatchProblem, delta_max: f64) -> CandidateSet {
        let mut outer = smx_obs::span("candidates.generate");
        let repo = problem.repository();
        let store = repo.store();
        let k = problem.personal_size();
        let mut sweep = {
            let mut phase1 = smx_obs::span("candidates.phase1");
            let sweep = LaneSweep::run(&self.objective, problem, delta_max);
            phase1.attr("bounds_refined", sweep.refined_count);
            sweep
        };
        let budget = sweep.budget;

        let mut phase2 = smx_obs::span("candidates.phase2");
        let mut cert_empty = 0usize;
        let mut verdicts: Vec<Verdict> = Vec::new();
        let mut exact = vec![0.0f64; k];
        for (sid, schema) in repo.iter() {
            let n = schema.len();
            if n < k {
                // Too small for any injective assignment — the matchers
                // skip it unconditionally; certified empty for free.
                cert_empty += 1;
                continue;
            }
            let coarse = sweep.coarse(sid);
            if coarse > budget {
                cert_empty += 1;
                continue;
            }
            // Phase 2: per-level minima over this schema's labels, from
            // the lanes as refined so far — admissible lower bounds
            // whether or not the walk promoted them. In auto mode
            // (every survivor scored, caps unused) no further
            // refinement is done — that keeps the generator off the
            // expensive token-set bound for the survivors'
            // vocabularies. An explicit budget is different: it ranks
            // survivors by `total_lb` and turns the pruned ones into
            // answer caps, so there the survivors' lanes are promoted
            // to full precision first.
            let labels = store.schema_labels(sid);
            if self.config.budget.is_some() {
                sweep.promote_schema(labels);
            }
            let total_lb = sweep.fill_minima(labels, &mut exact);
            if total_lb > budget {
                cert_empty += 1;
                continue;
            }
            let cap = sweep.cap(labels, &exact, total_lb);
            if cap == 0.0 {
                cert_empty += 1;
                continue;
            }
            verdicts.push(Verdict { sid, total_lb, cap });
        }
        phase2.attr("cert_empty", cert_empty);
        phase2.attr("survivors", verdicts.len());
        phase2.attr("bounds_refined_total", sweep.refined_count);
        drop(phase2);

        // Selection: auto keeps every survivor; an explicit budget keeps
        // the most promising (smallest total_lb, ties by id) and caps
        // the rest.
        let keep = match self.config.budget {
            None => verdicts.len(),
            Some(b) => b.min(verdicts.len()),
        };
        if keep < verdicts.len() {
            verdicts.sort_by(|a, b| {
                a.total_lb
                    .partial_cmp(&b.total_lb)
                    .expect("finite bounds")
                    .then(a.sid.index().cmp(&b.sid.index()))
            });
        }
        let mut active: Vec<SchemaId> = verdicts[..keep].iter().map(|v| v.sid).collect();
        active.sort_by_key(|sid| sid.index());
        // Explicit fold from +0.0: `Sum<f64>` starts at -0.0 (the float
        // additive identity), which would print an uncapped run's
        // "missed ≤ -0.0" and trip sign-sensitive comparisons.
        let caps_sum: f64 = verdicts[keep..].iter().fold(0.0, |acc, v| acc + v.cap);

        let active_mask: Vec<bool> = {
            let mut mask = vec![false; repo.len()];
            for sid in &active {
                mask[sid.index()] = true;
            }
            mask
        };
        let (pruned_pairs, scored_pairs) = pair_counts(problem, &active_mask);
        if outer.is_active() {
            outer.attr("schemas", repo.len());
            outer.attr("active", active.len());
            outer.attr("cert_empty", cert_empty);
            outer.attr("caps_sum", caps_sum);
            outer.attr("pruned_pairs", pruned_pairs);
            outer.attr("scored_pairs", scored_pairs);
        }

        CandidateSet {
            active: Arc::new(ActiveSet {
                ids: active,
                mask: active_mask,
            }),
            total_schemas: repo.len(),
            cert_empty,
            caps_sum,
            pruned_pairs,
            scored_pairs,
            delta_max,
        }
    }

    /// Lift this generator into declarative [`pipeline`](crate::pipeline)
    /// filter stages: auto becomes a single certified-empty prune
    /// ([`crate::pipeline::CandidateFilter`]), an explicit budget adds
    /// the survivor truncation ([`crate::pipeline::Truncate`]) that
    /// charges the dropped schemas' caps.
    ///
    /// The stages prune against the pipeline's shared full-precision
    /// `BoundsTable`, so a lifted auto generator may certify *more*
    /// schemas empty than [`CandidateGenerator::generate`]'s lazily
    /// refined sweep — answers are unchanged either way (only provably
    /// empty schemas are cut), but active-set sizes and budget-mode
    /// survivor rankings can differ from the monolithic tier's.
    pub fn into_stages(self) -> Vec<Arc<dyn crate::pipeline::Stage>> {
        let mut stages: Vec<Arc<dyn crate::pipeline::Stage>> =
            vec![Arc::new(crate::pipeline::CandidateFilter)];
        if let Some(b) = self.config.budget {
            stages.push(Arc::new(crate::pipeline::Truncate::new(b)));
        }
        stages
    }
}

/// Per-schema certification facts, computed once per pipeline run and
/// shared by every bound-based stage: whether the schema is certified
/// empty at the threshold, its mapping-cost lower bound (the ranking
/// key survivor truncation uses), and its admissible answer cap (what
/// pruning it costs a certificate).
///
/// Unlike [`CandidateGenerator::generate`]'s auto mode, the table
/// always promotes surviving schemas' lanes to full precision — stage
/// composition and rewriting stay deterministic because every stage
/// reads the *same* table regardless of where it sits in the pipeline.
#[derive(Debug, Clone)]
pub(crate) struct BoundsTable {
    entries: Vec<BoundsEntry>,
}

/// One schema's row in a [`BoundsTable`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct BoundsEntry {
    /// Proven to contain no answer at the threshold (includes schemas
    /// too small for an injective assignment).
    pub cert_empty: bool,
    /// Lower bound on any mapping's un-normalised cost in this schema;
    /// `+∞` for schemas too small to host a mapping at all.
    pub total_lb: f64,
    /// Admissible cap on the schema's answer count if pruned; `0.0`
    /// exactly when `cert_empty`.
    pub cap: f64,
}

impl BoundsTable {
    /// Compute the table for `problem` at `delta_max`.
    pub(crate) fn compute(
        objective: &ObjectiveFunction,
        problem: &MatchProblem,
        delta_max: f64,
    ) -> BoundsTable {
        let mut span = smx_obs::span("candidates.bounds_table");
        let repo = problem.repository();
        let store = repo.store();
        let k = problem.personal_size();
        let mut sweep = LaneSweep::run(objective, problem, delta_max);
        let budget = sweep.budget;
        let mut exact = vec![0.0f64; k];
        let mut entries = Vec::with_capacity(repo.len());
        for (sid, schema) in repo.iter() {
            if schema.len() < k {
                entries.push(BoundsEntry {
                    cert_empty: true,
                    total_lb: f64::INFINITY,
                    cap: 0.0,
                });
                continue;
            }
            let coarse = sweep.coarse(sid);
            if coarse > budget {
                entries.push(BoundsEntry {
                    cert_empty: true,
                    total_lb: coarse,
                    cap: 0.0,
                });
                continue;
            }
            let labels = store.schema_labels(sid);
            sweep.promote_schema(labels);
            let total_lb = sweep.fill_minima(labels, &mut exact);
            if total_lb > budget {
                entries.push(BoundsEntry {
                    cert_empty: true,
                    total_lb,
                    cap: 0.0,
                });
                continue;
            }
            let cap = sweep.cap(labels, &exact, total_lb);
            entries.push(BoundsEntry {
                cert_empty: cap == 0.0,
                total_lb,
                cap,
            });
        }
        if span.is_active() {
            span.attr("schemas", entries.len());
            span.attr(
                "cert_empty",
                entries.iter().filter(|e| e.cert_empty).count(),
            );
            span.attr("bounds_refined", sweep.refined_count);
        }
        BoundsTable { entries }
    }

    /// The entry for `sid`.
    pub(crate) fn entry(&self, sid: SchemaId) -> BoundsEntry {
        self.entries[sid.index()]
    }
}

/// `(pruned, scored)` cost-pair counts for an active mask.
fn pair_counts(problem: &MatchProblem, mask: &[bool]) -> (u64, u64) {
    let k = problem.personal_size();
    let mut pruned_pairs = 0u64;
    let mut scored_pairs = 0u64;
    for (sid, schema) in problem.repository().iter() {
        let pairs = (k * schema.len()) as u64;
        if mask[sid.index()] {
            scored_pairs += pairs;
        } else {
            pruned_pairs += pairs;
        }
    }
    (pruned_pairs, scored_pairs)
}

/// The repository schemas a candidate-restricted problem is allowed to
/// score, as both a sorted id list and a dense membership mask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveSet {
    /// Active schema ids, ascending.
    ids: Vec<SchemaId>,
    /// `mask[sid.index()]` — dense membership test.
    mask: Vec<bool>,
}

impl ActiveSet {
    /// The active schema ids, ascending.
    pub fn ids(&self) -> &[SchemaId] {
        &self.ids
    }

    /// Whether `sid` may be scored.
    pub fn contains(&self, sid: SchemaId) -> bool {
        self.mask.get(sid.index()).copied().unwrap_or(false)
    }

    /// Number of active schemas.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether nothing is active.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Whether every repository schema is active.
    pub fn covers_all(&self) -> bool {
        self.ids.len() == self.mask.len()
    }
}

/// The generator's output: the active subset plus everything a recall
/// certificate needs about what was pruned.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    active: Arc<ActiveSet>,
    total_schemas: usize,
    cert_empty: usize,
    caps_sum: f64,
    pruned_pairs: u64,
    scored_pairs: u64,
    delta_max: f64,
}

impl CandidateSet {
    /// The unrestricted candidate set a [`pipeline`](crate::pipeline)
    /// run starts from: every schema the problem may score is active
    /// (respecting any restriction the problem already carries), no
    /// caps, nothing certified — the identity element stages narrow.
    pub fn full(problem: &MatchProblem, delta_max: f64) -> CandidateSet {
        let repo = problem.repository();
        let ids = problem.active_schema_ids();
        let mut mask = vec![false; repo.len()];
        for sid in &ids {
            mask[sid.index()] = true;
        }
        let (pruned_pairs, scored_pairs) = pair_counts(problem, &mask);
        CandidateSet {
            active: Arc::new(ActiveSet { ids, mask }),
            total_schemas: repo.len(),
            cert_empty: 0,
            caps_sum: 0.0,
            pruned_pairs,
            scored_pairs,
            delta_max,
        }
    }

    /// A narrowed copy keeping only `kept`, with the narrowing's
    /// bookkeeping folded into the cumulative certificate state:
    /// `cert_empty_added` schemas proven empty at the threshold and
    /// `caps_added` admissible answer cap charged for everything else
    /// the narrowing dropped. This is the constructor pipeline stages
    /// use internally; it is public so external filters and restricted
    /// examples can build custom narrowings with honest certificates.
    ///
    /// # Panics
    ///
    /// If `kept` is not a subset of the current active set — a
    /// narrowing may only drop schemas, never resurrect one a prior
    /// stage already pruned (that would silently invalidate the caps
    /// charged for it).
    pub fn narrow(
        &self,
        problem: &MatchProblem,
        kept: Vec<SchemaId>,
        cert_empty_added: usize,
        caps_added: f64,
    ) -> CandidateSet {
        for sid in &kept {
            assert!(
                self.active.contains(*sid),
                "narrow: schema {:?} is not in the active set being narrowed",
                sid
            );
        }
        let mut mask = vec![false; self.total_schemas];
        for sid in &kept {
            mask[sid.index()] = true;
        }
        let (pruned_pairs, scored_pairs) = pair_counts(problem, &mask);
        CandidateSet {
            active: Arc::new(ActiveSet { ids: kept, mask }),
            total_schemas: self.total_schemas,
            cert_empty: self.cert_empty + cert_empty_added,
            caps_sum: self.caps_sum + caps_added,
            pruned_pairs,
            scored_pairs,
            delta_max: self.delta_max,
        }
    }

    /// The active subset (shared with restricted problems).
    pub fn active(&self) -> &Arc<ActiveSet> {
        &self.active
    }

    /// Number of active schemas.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Number of repository schemas.
    pub fn total_schemas(&self) -> usize {
        self.total_schemas
    }

    /// Schemas certified to contain no answer at the threshold
    /// (including those too small for an injective assignment).
    pub fn cert_empty_count(&self) -> usize {
        self.cert_empty
    }

    /// Whether every schema stayed active (pruning found nothing to
    /// cut — a restriction-free run).
    pub fn covers_all(&self) -> bool {
        self.active.covers_all()
    }

    /// Sum of the admissible answer caps over the pruned,
    /// non-certified schemas; `0.0` in auto-budget mode.
    pub fn caps_sum(&self) -> f64 {
        self.caps_sum
    }

    /// `(personal node, schema node)` cost pairs the restricted matrix
    /// fill never scores.
    pub fn pruned_pairs(&self) -> u64 {
        self.pruned_pairs
    }

    /// Cost pairs the restricted fill does score.
    pub fn scored_pairs(&self) -> u64 {
        self.scored_pairs
    }

    /// The threshold this set was generated for. A restricted run must
    /// use the same `delta_max` for the certificate to be valid.
    pub fn delta_max(&self) -> f64 {
        self.delta_max
    }

    /// Certified recall of a restricted run that found `answers`
    /// mappings: the exhaustive oracle finds at most
    /// `answers + caps_sum`, so its recall relative to the oracle is at
    /// least `answers / (answers + caps_sum)` — and exactly `1.0` when
    /// nothing uncertified was pruned.
    pub fn certified_recall(&self, answers: usize) -> f64 {
        if self.caps_sum == 0.0 {
            1.0
        } else {
            answers as f64 / (answers as f64 + self.caps_sum)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::ExhaustiveMatcher;
    use crate::mapping::MappingRegistry;
    use crate::matcher::Matcher;
    use smx_repo::Repository;
    use smx_synth::{Scenario, ScenarioConfig};
    use smx_xml::{PrimitiveType, SchemaBuilder};

    fn scenario_problem() -> MatchProblem {
        let sc = Scenario::generate(ScenarioConfig {
            derived_schemas: 6,
            noise_schemas: 6,
            personal_nodes: 4,
            host_nodes: 8,
            perturbation_strength: 0.7,
            ..Default::default()
        });
        MatchProblem::new(sc.personal, sc.repository).unwrap()
    }

    #[test]
    fn certified_empty_schemas_really_are_empty() {
        let problem = scenario_problem();
        let delta_max = 0.25;
        let candidates =
            CandidateGenerator::auto(ObjectiveFunction::default()).generate(&problem, delta_max);
        assert_eq!(candidates.caps_sum(), 0.0);
        assert_eq!(candidates.certified_recall(0), 1.0);
        // Every schema the generator certified empty contributes zero
        // answers to the unrestricted exhaustive run.
        let registry = MappingRegistry::new();
        let oracle = ExhaustiveMatcher::default().run(&problem, delta_max, &registry);
        for answer in oracle.answers() {
            let mapping = registry.resolve(answer.id).unwrap();
            assert!(
                candidates.active().contains(mapping.schema),
                "answer in certified-empty schema {}",
                mapping.schema
            );
        }
        assert_eq!(
            candidates.active_count() + candidates.cert_empty_count(),
            candidates.total_schemas()
        );
    }

    #[test]
    fn budget_zero_prunes_everything_and_budget_large_keeps_all_survivors() {
        let problem = scenario_problem();
        let objective = ObjectiveFunction::default();
        let zero = CandidateGenerator::new(objective.clone(), CandidateConfig { budget: Some(0) })
            .generate(&problem, 0.3);
        assert_eq!(zero.active_count(), 0);
        assert!(zero.certified_recall(0) <= 1.0);
        let auto = CandidateGenerator::auto(objective.clone()).generate(&problem, 0.3);
        let big = CandidateGenerator::new(
            objective,
            CandidateConfig {
                budget: Some(problem.repository().len()),
            },
        )
        .generate(&problem, 0.3);
        assert_eq!(auto.active().ids(), big.active().ids());
        assert_eq!(big.caps_sum(), 0.0);
    }

    #[test]
    fn caps_shrink_certified_recall_monotonically_in_budget() {
        let problem = scenario_problem();
        let objective = ObjectiveFunction::default();
        let mut last = -1.0f64;
        for budget in 0..=problem.repository().len() {
            let set = CandidateGenerator::new(
                objective.clone(),
                CandidateConfig {
                    budget: Some(budget),
                },
            )
            .generate(&problem, 0.3);
            // More budget ⇒ fewer capped schemas ⇒ certificate (at a
            // fixed answer count) can only improve.
            let cert = set.certified_recall(5);
            assert!(cert >= last - 1e-12, "budget {budget}: {cert} < {last}");
            last = cert;
        }
    }

    #[test]
    fn small_schemas_are_certified_for_free() {
        let personal = SchemaBuilder::new("p")
            .root("order")
            .leaf("total", PrimitiveType::Decimal)
            .leaf("date", PrimitiveType::Date)
            .build();
        let mut repo = Repository::new();
        let mut tiny = smx_xml::Schema::new("tiny");
        tiny.add_root(smx_xml::Node::element("only")).unwrap();
        repo.add(tiny); // 1 node < k = 3
        repo.add(
            SchemaBuilder::new("shop")
                .root("order")
                .leaf("total", PrimitiveType::Decimal)
                .leaf("date", PrimitiveType::Date)
                .build(),
        );
        let problem = MatchProblem::new(personal, repo).unwrap();
        let set = CandidateGenerator::auto(ObjectiveFunction::default()).generate(&problem, 0.4);
        assert_eq!(set.cert_empty_count(), 1);
        assert!(set.active().contains(SchemaId(1)));
        assert!(!set.active().contains(SchemaId(0)));
        assert_eq!(set.pruned_pairs(), 3); // k × 1 node
    }

    #[test]
    fn bounds_table_agrees_with_budget_mode_generation() {
        let problem = scenario_problem();
        let objective = ObjectiveFunction::default();
        let table = BoundsTable::compute(&objective, &problem, 0.3);
        // Budget mode promotes every surviving schema to full
        // precision, exactly as the table does — the survivor set and
        // caps must coincide.
        let all = CandidateGenerator::new(
            objective,
            CandidateConfig {
                budget: Some(problem.repository().len()),
            },
        )
        .generate(&problem, 0.3);
        let mut survivors = 0usize;
        for (sid, _) in problem.repository().iter() {
            let entry = table.entry(sid);
            assert_eq!(entry.cap == 0.0, entry.cert_empty);
            if !entry.cert_empty {
                survivors += 1;
                assert!(all.active().contains(sid), "table survivor {sid} pruned");
            }
        }
        assert_eq!(survivors, all.active_count());
    }
}

//! Error type for matcher construction and execution.

/// Errors produced by matchers.
#[derive(Debug, Clone, PartialEq)]
pub enum MatchError {
    /// The personal schema is empty — nothing to map.
    EmptyPersonalSchema,
    /// A matcher parameter was out of range.
    BadParameter {
        /// Which parameter.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for MatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatchError::EmptyPersonalSchema => write!(f, "personal schema has no elements"),
            MatchError::BadParameter { what, value } => {
                write!(f, "parameter {what} = {value} out of range")
            }
        }
    }
}

impl std::error::Error for MatchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(MatchError::EmptyPersonalSchema
            .to_string()
            .contains("no elements"));
        let e = MatchError::BadParameter {
            what: "beam width",
            value: 0.0,
        };
        assert!(e.to_string().contains("beam width"));
    }
}

//! S2 variant: cluster-restricted search (\[16\] in the paper — the system
//! the bounds technique was developed for).
//!
//! Repository elements are clustered by name/context features; clusters
//! are ranked against the personal schema's tokens; only the top
//! `fragments` clusters' elements remain allowed as mapping targets.
//! Schemas with no selected cluster member are skipped wholesale, which is
//! where the speed-up comes from — and why whole *score bands* of answers
//! disappear at once: the **step-shaped ratio curve** of Figure 10's
//! S2-two.

use crate::mapping::{Mapping, MappingRegistry};
use crate::matcher::Matcher;
use crate::objective::ObjectiveFunction;
use crate::problem::MatchProblem;
use smx_eval::{AnswerId, AnswerSet};
use smx_repo::{fragments_for_clusters, greedy_clustering, query_features, Fragment};
use smx_xml::NodeId;

/// Cluster-restricted matcher.
#[derive(Debug, Clone)]
pub struct ClusterMatcher {
    objective: ObjectiveFunction,
    /// Greedy-clustering similarity threshold.
    cluster_threshold: f64,
    /// How many top-ranked clusters stay searchable.
    fragments: usize,
}

impl ClusterMatcher {
    /// Build with a shared objective function, a clustering threshold in
    /// `[0, 1]`, and the number of top clusters to search.
    pub fn new(objective: ObjectiveFunction, cluster_threshold: f64, fragments: usize) -> Self {
        ClusterMatcher {
            objective,
            cluster_threshold: cluster_threshold.clamp(0.0, 1.0),
            fragments: fragments.max(1),
        }
    }

    /// Number of clusters searched.
    pub fn fragments(&self) -> usize {
        self.fragments
    }
}

impl ClusterMatcher {
    /// Lift into a terminal [`pipeline`](crate::pipeline) refine stage.
    /// Cluster ranking stays global (it reads the whole repository);
    /// the upstream filters only decide which fragments may answer.
    pub fn into_refine_stage(self) -> crate::pipeline::RefineStage<Self> {
        crate::pipeline::RefineStage::new(self)
    }
}

impl Matcher for ClusterMatcher {
    fn name(&self) -> &str {
        "S2-cluster"
    }

    fn run(&self, problem: &MatchProblem, delta_max: f64, registry: &MappingRegistry) -> AnswerSet {
        let repo = problem.repository();
        let personal = problem.personal();
        // 1. Cluster the repository and rank clusters against the query.
        let clustering = greedy_clustering(repo, self.cluster_threshold);
        let names: Vec<&str> = personal
            .node_ids()
            .map(|id| personal.node(id).name.as_str())
            .collect();
        let query = query_features(&names);
        let ranked = clustering.rank_against(&query);
        let selected: Vec<usize> = ranked
            .iter()
            .take(self.fragments)
            .map(|&(i, _)| i)
            .collect();
        let fragments: Vec<Fragment> = fragments_for_clusters(repo, &clustering, &selected);

        // 2. Exhaustively search each fragment's schema with targets
        //    restricted to the fragment cover. Scores come from the
        //    problem's precomputed cost matrix (fragment covers are plain
        //    index subsets of it).
        let k = problem.personal_size();
        let matrix = problem.cost_matrix(&self.objective);
        let mut found: Vec<(AnswerId, f64)> = Vec::new();
        for fragment in &fragments {
            if !problem.is_active(fragment.schema) {
                continue;
            }
            let nodes: Vec<NodeId> = fragment.cover.iter().copied().collect();
            if nodes.len() < k {
                continue;
            }
            let mut chosen: Vec<usize> = Vec::with_capacity(k);
            search(
                problem,
                &matrix,
                fragment,
                &nodes,
                delta_max,
                registry,
                &mut chosen,
                &mut found,
            );

            #[allow(clippy::too_many_arguments)]
            fn search(
                problem: &MatchProblem,
                matrix: &crate::cost_matrix::CostMatrix,
                fragment: &Fragment,
                nodes: &[NodeId],
                delta_max: f64,
                registry: &MappingRegistry,
                chosen: &mut Vec<usize>,
                found: &mut Vec<(AnswerId, f64)>,
            ) {
                let k = problem.personal_size();
                if chosen.len() == k {
                    let assignment: Vec<NodeId> = chosen.iter().map(|&i| nodes[i]).collect();
                    let score = matrix.mapping_cost(problem, fragment.schema, &assignment);
                    if score <= delta_max {
                        let id = registry.intern(Mapping {
                            schema: fragment.schema,
                            targets: assignment,
                        });
                        found.push((id, score));
                    }
                    return;
                }
                for cand in 0..nodes.len() {
                    if chosen.contains(&cand) {
                        continue;
                    }
                    chosen.push(cand);
                    search(
                        problem, matrix, fragment, nodes, delta_max, registry, chosen, found,
                    );
                    chosen.pop();
                }
            }
        }
        AnswerSet::new(found).expect("finite costs, unique interned ids")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::ExhaustiveMatcher;
    use smx_synth::{Scenario, ScenarioConfig};

    fn scenario_problem() -> MatchProblem {
        let sc = Scenario::generate(ScenarioConfig {
            derived_schemas: 4,
            noise_schemas: 3,
            personal_nodes: 4,
            host_nodes: 7,
            ..Default::default()
        });
        MatchProblem::new(sc.personal, sc.repository).unwrap()
    }

    #[test]
    fn cluster_matcher_is_subset_of_exhaustive() {
        let problem = scenario_problem();
        let registry = MappingRegistry::new();
        let s1 = ExhaustiveMatcher::default().run(&problem, 0.45, &registry);
        for fragments in [1, 3, 8] {
            let s2 = ClusterMatcher::new(ObjectiveFunction::default(), 0.5, fragments)
                .run(&problem, 0.45, &registry);
            s2.is_subset_of(&s1).expect("cluster ⊆ exhaustive");
            assert!(s2.scores_consistent_with(&s1), "fragments {fragments}");
        }
    }

    #[test]
    fn more_fragments_find_no_fewer_answers() {
        let problem = scenario_problem();
        let registry = MappingRegistry::new();
        let few = ClusterMatcher::new(ObjectiveFunction::default(), 0.5, 1)
            .run(&problem, 0.45, &registry);
        let many = ClusterMatcher::new(ObjectiveFunction::default(), 0.5, 10)
            .run(&problem, 0.45, &registry);
        assert!(few.len() <= many.len());
    }

    #[test]
    fn restriction_actually_restricts() {
        let problem = scenario_problem();
        let registry = MappingRegistry::new();
        let s1 = ExhaustiveMatcher::default().run(&problem, 0.45, &registry);
        let s2 = ClusterMatcher::new(ObjectiveFunction::default(), 0.6, 1)
            .run(&problem, 0.45, &registry);
        assert!(
            s2.len() < s1.len(),
            "one fragment should lose answers ({} vs {})",
            s2.len(),
            s1.len()
        );
    }

    #[test]
    fn parameters_clamped() {
        let m = ClusterMatcher::new(ObjectiveFunction::default(), 2.0, 0);
        assert_eq!(m.fragments(), 1);
    }
}

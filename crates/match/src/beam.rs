//! S2 variant: per-schema beam search (the iMap-style improvement the
//! paper cites as a non-exhaustive system keeping the objective function).
//!
//! Assignment proceeds level-by-level over the personal nodes; at each
//! level only the `width` best partial assignments (by accumulated
//! partial cost) survive. Cheap answers are almost always found — partial
//! costs of good mappings stay at the front of the beam — while expensive
//! answers are lost with increasing probability: the **smoothly declining
//! answer-size-ratio curve** of Figure 10's S2-one.

use crate::mapping::{Mapping, MappingRegistry};
use crate::matcher::Matcher;
use crate::objective::ObjectiveFunction;
use crate::problem::MatchProblem;
use smx_eval::{AnswerId, AnswerSet};
use smx_xml::NodeId;

/// Beam-search matcher with a fixed beam width per schema.
#[derive(Debug, Clone)]
pub struct BeamMatcher {
    objective: ObjectiveFunction,
    width: usize,
}

impl BeamMatcher {
    /// Build with a shared objective function and beam `width ≥ 1`.
    pub fn new(objective: ObjectiveFunction, width: usize) -> Self {
        BeamMatcher {
            objective,
            width: width.max(1),
        }
    }

    /// The beam width.
    pub fn width(&self) -> usize {
        self.width
    }
}

impl BeamMatcher {
    /// Lift into a terminal [`pipeline`](crate::pipeline) refine stage.
    /// To use the beam as an *intermediate* filter instead — keep only
    /// schemas where the beam finds an answer, then refine those
    /// exhaustively — compose a
    /// [`BeamFilter`](crate::pipeline::BeamFilter) stage, which charges
    /// the certificate for the schemas it drops.
    pub fn into_refine_stage(self) -> crate::pipeline::RefineStage<Self> {
        crate::pipeline::RefineStage::new(self)
    }
}

impl Matcher for BeamMatcher {
    fn name(&self) -> &str {
        "S2-beam"
    }

    fn run(&self, problem: &MatchProblem, delta_max: f64, registry: &MappingRegistry) -> AnswerSet {
        let k = problem.personal_size();
        let personal = problem.personal();
        let matrix = problem.cost_matrix(&self.objective);
        let mut found: Vec<(AnswerId, f64)> = Vec::new();
        for (sid, schema) in problem.repository().iter() {
            let n = schema.len();
            if n < k || !problem.is_active(sid) {
                continue;
            }
            let table = matrix.table(sid);
            // Beam of partial assignments: (partial cost, chosen indices).
            let mut beam: Vec<(f64, Vec<usize>)> = vec![(0.0, Vec::new())];
            for level in 0..k {
                let pid = problem.personal_order()[level];
                let parent = personal.node(pid).parent;
                let row = table.row(level);
                let mut next: Vec<(f64, Vec<usize>)> = Vec::new();
                for (partial, chosen) in &beam {
                    for (cand, &node_cost) in row.iter().enumerate() {
                        if chosen.contains(&cand) {
                            continue; // injectivity
                        }
                        let mut step = node_cost;
                        if let Some(p) = parent {
                            let parent_target = NodeId(chosen[p.index()] as u32);
                            step += self.objective.config().structure_weight
                                * self.objective.edge_penalty(
                                    schema,
                                    parent_target,
                                    NodeId(cand as u32),
                                );
                        }
                        let mut extended = chosen.clone();
                        extended.push(cand);
                        next.push((partial + step, extended));
                    }
                }
                next.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1)));
                next.truncate(self.width);
                beam = next;
                if beam.is_empty() {
                    break;
                }
            }
            for (_, chosen) in beam {
                if chosen.len() != k {
                    continue;
                }
                let assignment: Vec<NodeId> = chosen.iter().map(|&i| NodeId(i as u32)).collect();
                // Shared scoring path ⇒ identical Δ as S1 for this mapping.
                let score = matrix.mapping_cost(problem, sid, &assignment);
                if score <= delta_max {
                    let id = registry.intern(Mapping {
                        schema: sid,
                        targets: assignment,
                    });
                    found.push((id, score));
                }
            }
        }
        AnswerSet::new(found).expect("finite costs, unique interned ids")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::ExhaustiveMatcher;
    use smx_synth::{Scenario, ScenarioConfig};

    fn scenario_problem() -> MatchProblem {
        let sc = Scenario::generate(ScenarioConfig {
            derived_schemas: 5,
            noise_schemas: 3,
            personal_nodes: 4,
            host_nodes: 8,
            ..Default::default()
        });
        MatchProblem::new(sc.personal, sc.repository).unwrap()
    }

    #[test]
    fn beam_is_subset_of_exhaustive_with_same_scores() {
        let problem = scenario_problem();
        let registry = MappingRegistry::new();
        let s1 = ExhaustiveMatcher::default().run(&problem, 0.5, &registry);
        for width in [1, 4, 16, 64] {
            let s2 =
                BeamMatcher::new(ObjectiveFunction::default(), width).run(&problem, 0.5, &registry);
            s2.is_subset_of(&s1).expect("beam ⊆ exhaustive");
            assert!(s2.scores_consistent_with(&s1), "width {width}");
        }
    }

    #[test]
    fn wider_beams_find_no_fewer_answers() {
        let problem = scenario_problem();
        let registry = MappingRegistry::new();
        let narrow =
            BeamMatcher::new(ObjectiveFunction::default(), 2).run(&problem, 0.5, &registry);
        let wide = BeamMatcher::new(ObjectiveFunction::default(), 32).run(&problem, 0.5, &registry);
        assert!(narrow.len() <= wide.len());
    }

    #[test]
    fn huge_beam_equals_exhaustive_on_tiny_problem() {
        // With a beam wider than the whole level, nothing is cut.
        let problem = scenario_problem();
        let registry = MappingRegistry::new();
        let s1 = ExhaustiveMatcher::default().run(&problem, 0.3, &registry);
        let s2 =
            BeamMatcher::new(ObjectiveFunction::default(), 100_000).run(&problem, 0.3, &registry);
        assert_eq!(s1.len(), s2.len());
    }

    #[test]
    fn best_answers_survive_narrow_beams() {
        // The top-ranked S1 answer should be found even by a narrow beam —
        // the paper's observation that the top of the ranking is reliable.
        let problem = scenario_problem();
        let registry = MappingRegistry::new();
        let s1 = ExhaustiveMatcher::default().run(&problem, 0.5, &registry);
        let s2 = BeamMatcher::new(ObjectiveFunction::default(), 8).run(&problem, 0.5, &registry);
        if let Some(best) = s1.answers().first() {
            assert!(
                s2.score_of(best.id).is_some(),
                "beam(8) lost the top-ranked answer"
            );
        }
    }

    #[test]
    fn width_clamped_to_one() {
        assert_eq!(BeamMatcher::new(ObjectiveFunction::default(), 0).width(), 1);
    }
}

//! S1: the exhaustive matcher (branch-and-bound, provably complete).
//!
//! Depth-first assignment of personal nodes in arena order with an
//! admissible lower bound: the partial cost so far plus the sum of each
//! unassigned node's *minimum possible* node cost (edge penalties are
//! non-negative, so ignoring them keeps the bound admissible). A branch
//! is pruned only when even this optimistic completion exceeds δ_max —
//! therefore every mapping with Δ ≤ δ_max is found, which is what
//! "exhaustive for threshold δ" means in the paper (§2.1).
//!
//! Node costs and bounds come from the problem's precomputed
//! [`CostMatrix`] (see [`crate::cost_matrix`]); the
//! [`ExhaustiveMatcher::direct`] constructor keeps the old
//! recompute-per-run evaluation as a benchmark baseline and score-identity
//! reference.

use crate::cost_matrix::{CostMatrix, SchemaTable};
use crate::mapping::{Mapping, MappingRegistry};
use crate::matcher::Matcher;
use crate::objective::ObjectiveFunction;
use crate::problem::MatchProblem;
use smx_eval::{AnswerId, AnswerSet};
use smx_repo::SchemaId;
use smx_xml::NodeId;

/// How a matcher obtains node costs and final mapping scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoringMode {
    /// Read from the problem's cached [`CostMatrix`] (the fast default).
    #[default]
    Precomputed,
    /// Recompute string similarity per run — the pre-engine behaviour,
    /// kept as the benchmark baseline and as an identity reference.
    Direct,
}

/// The exhaustive branch-and-bound matcher (the paper's S1).
#[derive(Debug, Clone, Default)]
pub struct ExhaustiveMatcher {
    objective: ObjectiveFunction,
    mode: ScoringMode,
}

impl ExhaustiveMatcher {
    /// Build with a shared objective function (matrix-backed scoring).
    pub fn new(objective: ObjectiveFunction) -> Self {
        ExhaustiveMatcher {
            objective,
            mode: ScoringMode::Precomputed,
        }
    }

    /// Build a matcher that bypasses the precomputed engine and evaluates
    /// the objective directly, as the seed implementation did.
    pub fn direct(objective: ObjectiveFunction) -> Self {
        ExhaustiveMatcher {
            objective,
            mode: ScoringMode::Direct,
        }
    }

    /// The scoring mode.
    pub fn mode(&self) -> ScoringMode {
        self.mode
    }

    /// Search one repository schema, appending `(id, score)` pairs.
    /// Exposed crate-internally so the parallel matcher can reuse it.
    pub(crate) fn search_schema(
        &self,
        problem: &MatchProblem,
        sid: SchemaId,
        matrix: Option<&CostMatrix>,
        delta_max: f64,
        registry: &MappingRegistry,
        found: &mut Vec<(AnswerId, f64)>,
    ) {
        let k = problem.personal_size();
        let schema = problem.repository().schema(sid);
        if schema.len() < k {
            return;
        }
        // Matrix mode: indexed loads from the shared engine. Direct mode:
        // a fresh per-run table through the raw string path.
        let direct_table;
        let table: &SchemaTable = match matrix {
            Some(m) => m.table(sid),
            None => {
                direct_table = SchemaTable::compute_direct(problem, schema, &self.objective);
                &direct_table
            }
        };
        let denom =
            k as f64 + problem.personal_edges() as f64 * self.objective.config().structure_weight;
        let budget = delta_max * denom + 1e-12; // un-normalised cost budget
        let structure_weight = self.objective.config().structure_weight;

        let mut targets: Vec<usize> = vec![usize::MAX; k];
        let mut used = vec![false; schema.len()];

        struct Ctx<'a> {
            problem: &'a MatchProblem,
            objective: &'a ObjectiveFunction,
            matrix: Option<&'a CostMatrix>,
            schema: &'a smx_xml::Schema,
            sid: SchemaId,
            table: &'a SchemaTable,
            budget: f64,
            delta_max: f64,
            structure_weight: f64,
            registry: &'a MappingRegistry,
        }

        fn dfs(
            ctx: &Ctx<'_>,
            level: usize,
            partial: f64,
            targets: &mut Vec<usize>,
            used: &mut Vec<bool>,
            found: &mut Vec<(AnswerId, f64)>,
        ) {
            let k = targets.len();
            if level == k {
                let assignment: Vec<NodeId> = targets.iter().map(|&i| NodeId(i as u32)).collect();
                // Re-score through the shared code path so every matcher
                // reports bitwise-identical Δ for the same mapping (the
                // accumulated `partial` has a different summation order).
                let score = match ctx.matrix {
                    Some(m) => m.mapping_cost(ctx.problem, ctx.sid, &assignment),
                    None => ctx
                        .objective
                        .mapping_cost(ctx.problem, ctx.sid, &assignment),
                };
                if score <= ctx.delta_max {
                    let id = ctx.registry.intern(Mapping {
                        schema: ctx.sid,
                        targets: assignment,
                    });
                    found.push((id, score));
                }
                return;
            }
            let pid = ctx.problem.personal_order()[level];
            let parent = ctx.problem.personal().node(pid).parent;
            let suffix = ctx.table.suffix_min()[level + 1];
            let row = ctx.table.row(level);
            for (cand, &node_cost) in row.iter().enumerate() {
                if used[cand] {
                    continue;
                }
                let mut step = node_cost;
                if let Some(p) = parent {
                    let parent_target = NodeId(targets[p.index()] as u32);
                    step += ctx.structure_weight
                        * ctx.objective.edge_penalty(
                            ctx.schema,
                            parent_target,
                            NodeId(cand as u32),
                        );
                }
                let lower_bound = partial + step + suffix;
                if lower_bound > ctx.budget {
                    continue; // admissible prune: no completion can reach δ_max
                }
                targets[level] = cand;
                used[cand] = true;
                dfs(ctx, level + 1, partial + step, targets, used, found);
                used[cand] = false;
                targets[level] = usize::MAX;
            }
        }

        let ctx = Ctx {
            problem,
            objective: &self.objective,
            matrix,
            schema,
            sid,
            table,
            budget,
            delta_max,
            structure_weight,
            registry,
        };
        dfs(&ctx, 0, 0.0, &mut targets, &mut used, found);
    }

    /// The matrix to search with (`None` in direct mode).
    pub(crate) fn engine(&self, problem: &MatchProblem) -> Option<std::sync::Arc<CostMatrix>> {
        match self.mode {
            ScoringMode::Precomputed => Some(problem.cost_matrix(&self.objective)),
            ScoringMode::Direct => None,
        }
    }
}

impl ExhaustiveMatcher {
    /// Lift S1 into a terminal [`pipeline`](crate::pipeline) refine
    /// stage — the usual "exhaustive on the survivors" tail of a
    /// filter→refine process.
    pub fn into_refine_stage(self) -> crate::pipeline::RefineStage<Self> {
        crate::pipeline::RefineStage::new(self)
    }
}

impl Matcher for ExhaustiveMatcher {
    fn name(&self) -> &str {
        "S1-exhaustive"
    }

    fn run(&self, problem: &MatchProblem, delta_max: f64, registry: &MappingRegistry) -> AnswerSet {
        let matrix = self.engine(problem);
        let mut found = Vec::new();
        for sid in problem.active_schema_ids() {
            self.search_schema(
                problem,
                sid,
                matrix.as_deref(),
                delta_max,
                registry,
                &mut found,
            );
        }
        AnswerSet::new(found).expect("finite costs, unique interned ids")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::BruteForceMatcher;
    use smx_repo::Repository;
    use smx_synth::{Scenario, ScenarioConfig};
    use smx_xml::{PrimitiveType, SchemaBuilder};

    fn small_problem() -> MatchProblem {
        let personal = SchemaBuilder::new("p")
            .root("book")
            .leaf("title", PrimitiveType::String)
            .leaf("year", PrimitiveType::Integer)
            .build();
        let mut repo = Repository::new();
        repo.add(
            SchemaBuilder::new("bib")
                .root("bibliography")
                .child("book", |b| {
                    b.leaf("title", PrimitiveType::String)
                        .leaf("year", PrimitiveType::Integer)
                        .leaf("price", PrimitiveType::Decimal)
                })
                .build(),
        );
        repo.add(
            SchemaBuilder::new("shop")
                .root("store")
                .child("order", |o| {
                    o.leaf("date", PrimitiveType::Date)
                        .leaf("total", PrimitiveType::Decimal)
                })
                .build(),
        );
        MatchProblem::new(personal, repo).unwrap()
    }

    #[test]
    fn agrees_with_brute_force_at_every_threshold() {
        let problem = small_problem();
        for delta_max in [0.1, 0.25, 0.4, 0.6, 1.0] {
            let reg_a = MappingRegistry::new();
            let reg_b = MappingRegistry::new();
            let fast = ExhaustiveMatcher::default().run(&problem, delta_max, &reg_a);
            let slow = BruteForceMatcher::default().run(&problem, delta_max, &reg_b);
            assert_eq!(fast.len(), slow.len(), "δ={delta_max}");
            // Same mappings with same scores (ids differ across registries,
            // so compare resolved mappings + scores).
            let mut a: Vec<(Mapping, f64)> = fast
                .answers()
                .iter()
                .map(|s| (reg_a.resolve(s.id).unwrap(), s.score))
                .collect();
            let mut b: Vec<(Mapping, f64)> = slow
                .answers()
                .iter()
                .map(|s| (reg_b.resolve(s.id).unwrap(), s.score))
                .collect();
            a.sort_by(|x, y| x.0.cmp(&y.0));
            b.sort_by(|x, y| x.0.cmp(&y.0));
            assert_eq!(a, b, "δ={delta_max}");
        }
    }

    #[test]
    fn best_answer_is_the_planted_mapping() {
        let problem = small_problem();
        let registry = MappingRegistry::new();
        let answers = ExhaustiveMatcher::default().run(&problem, 1.0, &registry);
        let best = answers.answers().first().unwrap();
        let mapping = registry.resolve(best.id).unwrap();
        assert_eq!(mapping.schema, SchemaId(0));
        // book→book(n1), title→title(n2), year→year(n3).
        assert_eq!(mapping.targets, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn monotone_in_threshold() {
        let problem = small_problem();
        let registry = MappingRegistry::new();
        let matcher = ExhaustiveMatcher::default();
        let small = matcher.run(&problem, 0.3, &registry);
        let large = matcher.run(&problem, 0.6, &registry);
        assert!(small.is_subset_of(&large).is_ok());
        assert!(small.scores_consistent_with(&large));
    }

    #[test]
    fn works_on_generated_scenarios() {
        let sc = Scenario::generate(ScenarioConfig {
            derived_schemas: 4,
            noise_schemas: 2,
            personal_nodes: 4,
            host_nodes: 8,
            ..Default::default()
        });
        let problem = MatchProblem::new(sc.personal.clone(), sc.repository.clone()).unwrap();
        let registry = MappingRegistry::new();
        let answers = ExhaustiveMatcher::default().run(&problem, 0.35, &registry);
        // The planted correct mappings score well: at least one correct
        // mapping appears among the answers.
        let correct_found = sc.correct.iter().any(|cm| {
            let mapping = Mapping {
                schema: cm.schema,
                targets: cm.targets.iter().map(|&(_, r)| r).collect(),
            };
            let id = registry.intern(mapping);
            answers.score_of(id).is_some()
        });
        assert!(correct_found, "no planted mapping retrieved at δ=0.35");
    }
}

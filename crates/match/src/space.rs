//! Search-space accounting.
//!
//! The paper motivates non-exhaustive search with the exponential cost of
//! exhaustive mapping enumeration (\[15\]): a personal schema with `k`
//! elements matched injectively into a schema of `n` elements admits
//! `P(n, k) = n!/(n−k)!` assignments, summed over every repository
//! schema. These helpers compute that number (saturating at `u128::MAX`)
//! for reports and benches.

use crate::problem::MatchProblem;

/// Falling factorial `n · (n−1) ⋯ (n−k+1)`, saturating.
pub fn falling_factorial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let mut total: u128 = 1;
    for i in 0..k {
        total = total.saturating_mul((n - i) as u128);
    }
    total
}

/// Total injective-assignment count across the repository.
pub fn search_space_size(problem: &MatchProblem) -> u128 {
    let k = problem.personal_size();
    problem
        .repository()
        .iter()
        .map(|(_, s)| falling_factorial(s.len(), k))
        .fold(0u128, u128::saturating_add)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_repo::Repository;
    use smx_xml::{PrimitiveType, SchemaBuilder};

    #[test]
    fn falling_factorial_basics() {
        assert_eq!(falling_factorial(5, 0), 1);
        assert_eq!(falling_factorial(5, 1), 5);
        assert_eq!(falling_factorial(5, 2), 20);
        assert_eq!(falling_factorial(5, 5), 120);
        assert_eq!(falling_factorial(3, 4), 0);
        // Saturation instead of overflow.
        assert_eq!(falling_factorial(1000, 50), u128::MAX);
    }

    #[test]
    fn space_sums_over_schemas() {
        let personal = SchemaBuilder::new("p")
            .root("a")
            .leaf("b", PrimitiveType::String)
            .build();
        let mut repo = Repository::new();
        repo.add(
            SchemaBuilder::new("x")
                .root("r")
                .leaf("c", PrimitiveType::String)
                .leaf("d", PrimitiveType::String)
                .build(),
        ); // 3 nodes → P(3,2) = 6
        repo.add(SchemaBuilder::new("y").root("only").build()); // 1 node → 0
        let problem = MatchProblem::new(personal, repo).unwrap();
        assert_eq!(search_space_size(&problem), 6);
    }

    #[test]
    fn exponential_growth_with_k() {
        // Same repository, growing personal schema: the space explodes.
        let mut repo = Repository::new();
        let mut b = SchemaBuilder::new("big").root("r");
        for i in 0..14 {
            b = b.leaf(format!("leaf{i}"), PrimitiveType::String);
        }
        repo.add(b.build());
        let mut prev = 0u128;
        for k in 1..=6 {
            let mut builder = SchemaBuilder::new("p").root("q");
            for i in 1..k {
                builder = builder.leaf(format!("n{i}"), PrimitiveType::String);
            }
            let problem = MatchProblem::new(builder.build(), repo.clone()).unwrap();
            let size = search_space_size(&problem);
            assert!(size > prev, "k={k}");
            prev = size;
        }
        // k = 6 into 15 nodes: P(15,6) = 3,603,600.
        assert_eq!(prev, 3_603_600);
    }
}

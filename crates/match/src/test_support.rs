//! Shared fixtures for the differential test harnesses.
//!
//! Three suites prove bitwise identities against oracle runs: the batch
//! identity suite (`tests/batch_identity.rs`), the candidate
//! differential suite (`tests/candidate_differential.rs`), and the
//! persistence chaos gate (`smx-persist/tests/chaos.rs`). Each used to
//! carry its own copy of the matcher roster and the bitwise-comparison
//! helpers; they live here now so every suite sees the same roster and
//! a new matching system — the composable [`pipeline`](crate::pipeline)
//! was the seventh — is covered by all of them the day it lands.
//!
//! Everything here is plain library code (no `#[cfg(test)]`): the
//! persistence crate's integration tests link against it as an ordinary
//! dependency.

use crate::beam::BeamMatcher;
use crate::brute_force::BruteForceMatcher;
use crate::cluster_search::ClusterMatcher;
use crate::exhaustive::ExhaustiveMatcher;
use crate::mapping::{Mapping, MappingRegistry};
use crate::matcher::Matcher;
use crate::objective::ObjectiveFunction;
use crate::parallel::ParallelExhaustiveMatcher;
use crate::pipeline::Pipeline;
use crate::problem::MatchProblem;
use crate::topk::TopKMatcher;
use smx_eval::AnswerSet;
use smx_repo::Repository;
use smx_xml::Schema;

/// The canonical roster: all six matching systems, plus a composed
/// filter→refine [`Pipeline`] so declarative pipelines ride through
/// every differential suite exactly like the monolithic matchers.
pub fn all_matchers() -> Vec<(&'static str, Box<dyn Matcher + Sync>)> {
    let objective = ObjectiveFunction::default;
    vec![
        ("exhaustive", Box::new(ExhaustiveMatcher::new(objective()))),
        (
            "parallel",
            Box::new(ParallelExhaustiveMatcher::new(objective(), 3)),
        ),
        ("brute-force", Box::new(BruteForceMatcher::new(objective()))),
        ("beam", Box::new(BeamMatcher::new(objective(), 16))),
        (
            "cluster",
            Box::new(ClusterMatcher::new(objective(), 0.55, 3)),
        ),
        ("topk", Box::new(TopKMatcher::new(objective(), 25))),
        (
            "pipeline",
            Box::new(
                Pipeline::builder(objective())
                    .candidate_filter()
                    .beam_filter(16)
                    .refine(ExhaustiveMatcher::new(objective())),
            ),
        ),
    ]
}

/// Roster names whose matcher is *complete* on the problem it is handed
/// (finds every answer under the threshold): the exhaustive searcher,
/// its parallel twin, and the no-pruning reference. Suites that assert
/// `certified_recall ≤ measured recall vs the oracle` must restrict
/// themselves to these — for the lossy heuristics the certificate only
/// covers the candidate tier's pruning, not the heuristic's own losses.
pub fn complete_matcher_names() -> &'static [&'static str] {
    &["exhaustive", "parallel", "brute-force"]
}

/// Registry-independent canonical answers with bitwise score keys:
/// resolve every answer id to its [`Mapping`] and pair it with the raw
/// score bits, sorted by mapping. Two runs agree bitwise iff their
/// canonical vectors are equal — even when each run interned into its
/// own registry.
pub fn canonical_answers(answers: &AnswerSet, registry: &MappingRegistry) -> Vec<(Mapping, u64)> {
    let mut out: Vec<(Mapping, u64)> = answers
        .answers()
        .iter()
        .map(|a| {
            (
                registry.resolve(a.id).expect("answer ids are interned"),
                a.score.to_bits(),
            )
        })
        .collect();
    out.sort_by(|x, y| x.0.cmp(&y.0));
    out
}

/// Assert `got` is bitwise identical to `expected`: same cardinality,
/// every answer resolves to an injective mapping, and every score
/// matches the reference bit for bit. Both sets must share `registry`;
/// for cross-registry comparisons, compare [`canonical_answers`]
/// vectors instead.
pub fn assert_answers_bitwise(
    name: &str,
    got: &AnswerSet,
    expected: &AnswerSet,
    registry: &MappingRegistry,
) {
    assert_eq!(
        got.len(),
        expected.len(),
        "{name}: answer count diverged ({} vs {})",
        got.len(),
        expected.len()
    );
    for answer in got.answers() {
        let mapping = registry
            .resolve(answer.id)
            .expect("answer ids are interned");
        assert!(
            mapping.is_injective(),
            "{name}: non-injective mapping {mapping:?}"
        );
        let reference = expected
            .score_of(answer.id)
            .unwrap_or_else(|| panic!("{name}: answer {mapping:?} missing from the reference set"));
        assert_eq!(
            answer.score.to_bits(),
            reference.to_bits(),
            "{name}: score diverged for {mapping:?} ({} vs {reference})",
            answer.score
        );
    }
}

/// Build a [`MatchProblem`] from a personal schema and a repository and
/// run `matcher` on it — the oracle-run helper every suite starts from.
/// The repository is cloned, so the caller's store state is untouched
/// by problem construction (the clone shares the same score store).
pub fn run_matcher(
    matcher: &dyn Matcher,
    personal: &Schema,
    repository: &Repository,
    delta_max: f64,
    registry: &MappingRegistry,
) -> AnswerSet {
    let problem =
        MatchProblem::new(personal.clone(), repository.clone()).expect("non-empty personal schema");
    matcher.run(&problem, delta_max, registry)
}

//! The matching problem `Q`: a personal schema against a repository.

use crate::error::MatchError;
use smx_repo::Repository;
use smx_xml::{NodeId, Schema};

/// One matching problem: the user's personal schema and the repository it
/// is matched against.
#[derive(Debug, Clone)]
pub struct MatchProblem {
    personal: Schema,
    repository: Repository,
    /// Personal node ids in arena order (parents precede children, which
    /// the assignment loops rely on).
    personal_order: Vec<NodeId>,
}

impl MatchProblem {
    /// Create a problem; fails on an empty personal schema.
    pub fn new(personal: Schema, repository: Repository) -> Result<Self, MatchError> {
        if personal.is_empty() {
            return Err(MatchError::EmptyPersonalSchema);
        }
        let personal_order: Vec<NodeId> = personal.node_ids().collect();
        Ok(MatchProblem { personal, repository, personal_order })
    }

    /// The personal schema.
    pub fn personal(&self) -> &Schema {
        &self.personal
    }

    /// The repository.
    pub fn repository(&self) -> &Repository {
        &self.repository
    }

    /// Personal nodes in assignment order (arena order: parents first).
    pub fn personal_order(&self) -> &[NodeId] {
        &self.personal_order
    }

    /// Number of personal nodes `k` — the exponent of the search space.
    pub fn personal_size(&self) -> usize {
        self.personal_order.len()
    }

    /// Number of parent→child edges in the personal schema.
    pub fn personal_edges(&self) -> usize {
        self.personal_order
            .iter()
            .filter(|&&id| self.personal.node(id).parent.is_some())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_xml::{PrimitiveType, SchemaBuilder};

    #[test]
    fn construction_and_accessors() {
        let personal = SchemaBuilder::new("p")
            .root("book")
            .leaf("title", PrimitiveType::String)
            .leaf("year", PrimitiveType::Integer)
            .build();
        let problem = MatchProblem::new(personal, Repository::new()).unwrap();
        assert_eq!(problem.personal_size(), 3);
        assert_eq!(problem.personal_edges(), 2);
        // Arena order keeps parents before children.
        let order = problem.personal_order();
        for (i, &id) in order.iter().enumerate() {
            if let Some(p) = problem.personal().node(id).parent {
                assert!(order[..i].contains(&p));
            }
        }
    }

    #[test]
    fn empty_personal_rejected() {
        assert_eq!(
            MatchProblem::new(Schema::new("p"), Repository::new()).unwrap_err(),
            MatchError::EmptyPersonalSchema
        );
    }
}

//! The matching problem `Q`: a personal schema against a repository.

use crate::candidates::{ActiveSet, CandidateSet};
use crate::cost_matrix::CostMatrix;
use crate::error::MatchError;
use crate::objective::ObjectiveFunction;
use smx_repo::{Repository, SchemaId};
use smx_xml::{NodeId, Schema};
use std::sync::{Arc, OnceLock};

/// One matching problem: the user's personal schema and the repository it
/// is matched against.
#[derive(Debug, Clone)]
pub struct MatchProblem {
    personal: Schema,
    repository: Repository,
    /// Personal node ids in arena order (parents precede children, which
    /// the assignment loops rely on).
    personal_order: Vec<NodeId>,
    /// Candidate restriction: `None` scores every repository schema (the
    /// exhaustive default); `Some` restricts every matcher and the
    /// cost-matrix fill to the active subset (see [`crate::candidates`]).
    active: Option<Arc<ActiveSet>>,
    /// Lazily built scoring engine, shared by every matcher run against
    /// this problem. `OnceLock` keeps post-initialisation reads lock-free.
    engine: OnceLock<Arc<CostMatrix>>,
}

impl MatchProblem {
    /// Create a problem; fails on an empty personal schema.
    pub fn new(personal: Schema, repository: Repository) -> Result<Self, MatchError> {
        if personal.is_empty() {
            return Err(MatchError::EmptyPersonalSchema);
        }
        let personal_order: Vec<NodeId> = personal.node_ids().collect();
        Ok(MatchProblem {
            personal,
            repository,
            personal_order,
            active: None,
            engine: OnceLock::new(),
        })
    }

    /// A copy of this problem restricted to `candidates`' active
    /// schemas: matchers skip every other schema and the cost-matrix
    /// fill scores only the label columns the active schemas reference
    /// (through [`smx_repo::LabelStore::score_rows_subset`]). The
    /// engine cache starts fresh — a restricted matrix must never be
    /// confused with an unrestricted one.
    ///
    /// When the candidate set covers the whole repository the copy
    /// carries no restriction at all, so its runs are trivially
    /// bitwise identical to the original's.
    pub fn with_candidates(&self, candidates: &CandidateSet) -> MatchProblem {
        MatchProblem {
            personal: self.personal.clone(),
            repository: self.repository.clone(),
            personal_order: self.personal_order.clone(),
            active: if candidates.covers_all() {
                None
            } else {
                Some(Arc::clone(candidates.active()))
            },
            engine: OnceLock::new(),
        }
    }

    /// The candidate restriction, if any.
    pub fn active_set(&self) -> Option<&ActiveSet> {
        self.active.as_deref()
    }

    /// Whether a matcher may score `sid` (always true on an
    /// unrestricted problem).
    pub fn is_active(&self, sid: SchemaId) -> bool {
        match &self.active {
            None => true,
            Some(set) => set.contains(sid),
        }
    }

    /// The schema ids a matcher iterates: all of them, or the active
    /// subset (ascending either way).
    pub fn active_schema_ids(&self) -> Vec<SchemaId> {
        match &self.active {
            None => self.repository.schema_ids().collect(),
            Some(set) => set.ids().to_vec(),
        }
    }

    /// The precomputed [`CostMatrix`] for `objective`, built on first use
    /// and cached for the lifetime of the problem.
    ///
    /// The build itself leans on the repository's label score store
    /// ([`smx_repo::LabelStore`]): label-level preprocessing happened at
    /// ingest, and name-distance rows computed for one problem are cached
    /// on the (`Arc`-shared) repository — so constructing a *new*
    /// `MatchProblem` against the same repository pays only row lookups
    /// and type blends, not string similarity.
    ///
    /// The cache is keyed by the first objective seen — the paper's
    /// methodology runs every matcher with *one* shared Δ, so that is the
    /// overwhelmingly common case. A call with a different
    /// [`ObjectiveConfig`](crate::ObjectiveConfig) gets a freshly built
    /// (uncached) matrix rather than a wrong one.
    pub fn cost_matrix(&self, objective: &ObjectiveFunction) -> Arc<CostMatrix> {
        let cached = self
            .engine
            .get_or_init(|| Arc::new(CostMatrix::build(self, objective)));
        if cached.config() == objective.config() {
            Arc::clone(cached)
        } else {
            Arc::new(CostMatrix::build(self, objective))
        }
    }

    /// [`cost_matrix`](Self::cost_matrix), but filling from rows the
    /// caller already holds (see [`CostMatrix::build_pinned`]) — the
    /// batch path, where prefetched `Arc` rows must survive an LRU bound
    /// smaller than the batch vocabulary. Caching behaves exactly like
    /// [`cost_matrix`](Self::cost_matrix).
    pub fn cost_matrix_pinned(
        &self,
        objective: &ObjectiveFunction,
        pinned: &std::collections::HashMap<&str, Arc<Vec<f64>>>,
    ) -> Arc<CostMatrix> {
        let cached = self
            .engine
            .get_or_init(|| Arc::new(CostMatrix::build_pinned(self, objective, pinned)));
        if cached.config() == objective.config() {
            Arc::clone(cached)
        } else {
            Arc::new(CostMatrix::build_pinned(self, objective, pinned))
        }
    }

    /// The personal schema.
    pub fn personal(&self) -> &Schema {
        &self.personal
    }

    /// The repository.
    pub fn repository(&self) -> &Repository {
        &self.repository
    }

    /// Personal nodes in assignment order (arena order: parents first).
    pub fn personal_order(&self) -> &[NodeId] {
        &self.personal_order
    }

    /// Number of personal nodes `k` — the exponent of the search space.
    pub fn personal_size(&self) -> usize {
        self.personal_order.len()
    }

    /// Distinct personal-schema labels in first-seen (arena) order —
    /// exactly the row set a cost-matrix fill fetches from the
    /// repository's score store, and what batch matching dedups across
    /// problems before its shared sweep.
    pub fn distinct_personal_labels(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for &pid in &self.personal_order {
            let name = self.personal.node(pid).name.as_str();
            if !names.contains(&name) {
                names.push(name);
            }
        }
        names
    }

    /// Number of parent→child edges in the personal schema.
    pub fn personal_edges(&self) -> usize {
        self.personal_order
            .iter()
            .filter(|&&id| self.personal.node(id).parent.is_some())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_xml::{PrimitiveType, SchemaBuilder};

    #[test]
    fn construction_and_accessors() {
        let personal = SchemaBuilder::new("p")
            .root("book")
            .leaf("title", PrimitiveType::String)
            .leaf("year", PrimitiveType::Integer)
            .build();
        let problem = MatchProblem::new(personal, Repository::new()).unwrap();
        assert_eq!(problem.personal_size(), 3);
        assert_eq!(problem.personal_edges(), 2);
        // The engine cache hands out the same matrix for the same config
        // and a fresh one for a different config.
        let obj = ObjectiveFunction::default();
        let a = problem.cost_matrix(&obj);
        let b = problem.cost_matrix(&obj);
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        let other = ObjectiveFunction::new(crate::ObjectiveConfig {
            name_weight: 0.5,
            type_weight: 0.5,
            structure_weight: 0.3,
        });
        let c = problem.cost_matrix(&other);
        assert!(!std::sync::Arc::ptr_eq(&a, &c));
        assert_eq!(c.config(), other.config());
        // Arena order keeps parents before children.
        let order = problem.personal_order();
        for (i, &id) in order.iter().enumerate() {
            if let Some(p) = problem.personal().node(id).parent {
                assert!(order[..i].contains(&p));
            }
        }
    }

    #[test]
    fn empty_personal_rejected() {
        assert_eq!(
            MatchProblem::new(Schema::new("p"), Repository::new()).unwrap_err(),
            MatchError::EmptyPersonalSchema
        );
    }
}

//! Schema mappings and the mapping-id registry.
//!
//! A [`Mapping`] assigns the `i`-th personal-schema node (arena order) to
//! `targets[i]` within one repository schema. The [`MappingRegistry`]
//! interns mappings into stable [`AnswerId`]s so that an S1 run and any
//! number of S2 runs refer to the *same* answer with the same id — the
//! prerequisite for comparing their answer sets.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use smx_eval::AnswerId;
use smx_repo::SchemaId;
use smx_xml::NodeId;
use std::collections::HashMap;

/// One candidate answer: a total, injective assignment of personal nodes
/// to nodes of a single repository schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Mapping {
    /// The repository schema the personal schema is mapped into.
    pub schema: SchemaId,
    /// `targets[i]` is the image of the personal node with arena index `i`.
    pub targets: Vec<NodeId>,
}

impl Mapping {
    /// Number of mapped personal nodes.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether the mapping maps nothing.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Whether the assignment is injective (no two personal nodes share a
    /// target).
    pub fn is_injective(&self) -> bool {
        let mut seen: Vec<NodeId> = self.targets.clone();
        seen.sort();
        seen.windows(2).all(|w| w[0] != w[1])
    }
}

impl std::fmt::Display for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}→[", self.schema)?;
        for (i, t) in self.targets.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "]")
    }
}

/// Thread-safe interning of mappings to [`AnswerId`]s.
///
/// Ids are assigned in first-seen order; the registry also supports
/// reverse lookup so reported answers can be rendered as paths.
#[derive(Debug, Default)]
pub struct MappingRegistry {
    inner: Mutex<RegistryInner>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    ids: HashMap<Mapping, AnswerId>,
    reverse: Vec<Mapping>,
}

impl MappingRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        MappingRegistry::default()
    }

    /// Intern `mapping`, returning its stable id.
    pub fn intern(&self, mapping: Mapping) -> AnswerId {
        let mut inner = self.inner.lock();
        if let Some(&id) = inner.ids.get(&mapping) {
            return id;
        }
        let id = AnswerId(inner.reverse.len() as u64);
        inner.reverse.push(mapping.clone());
        inner.ids.insert(mapping, id);
        id
    }

    /// The mapping behind `id`, if interned.
    pub fn resolve(&self, id: AnswerId) -> Option<Mapping> {
        self.inner.lock().reverse.get(id.0 as usize).cloned()
    }

    /// Number of interned mappings.
    pub fn len(&self) -> usize {
        self.inner.lock().reverse.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping(schema: u32, targets: &[u32]) -> Mapping {
        Mapping {
            schema: SchemaId(schema),
            targets: targets.iter().map(|&t| NodeId(t)).collect(),
        }
    }

    #[test]
    fn interning_is_stable() {
        let reg = MappingRegistry::new();
        let a = reg.intern(mapping(0, &[1, 2]));
        let b = reg.intern(mapping(0, &[1, 3]));
        let a_again = reg.intern(mapping(0, &[1, 2]));
        assert_eq!(a, a_again);
        assert_ne!(a, b);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.resolve(a), Some(mapping(0, &[1, 2])));
        assert_eq!(reg.resolve(AnswerId(99)), None);
    }

    #[test]
    fn distinct_schemas_distinct_ids() {
        let reg = MappingRegistry::new();
        let a = reg.intern(mapping(0, &[1]));
        let b = reg.intern(mapping(1, &[1]));
        assert_ne!(a, b);
    }

    #[test]
    fn injectivity_check() {
        assert!(mapping(0, &[1, 2, 3]).is_injective());
        assert!(!mapping(0, &[1, 2, 1]).is_injective());
        assert!(mapping(0, &[]).is_injective());
    }

    #[test]
    fn concurrent_interning() {
        let reg = std::sync::Arc::new(MappingRegistry::new());
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let reg = reg.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100u32 {
                    reg.intern(mapping(i % 10, &[i, t % 2]));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 10 schemas × 100 i-values × 2 t-parities… but i determines both:
        // (i % 10, [i, t%2]) — 100 × 2 distinct mappings.
        assert_eq!(reg.len(), 200);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(mapping(2, &[0, 5]).to_string(), "s2→[n0,n5]");
    }
}

//! The matcher interface.

use crate::mapping::MappingRegistry;
use crate::problem::MatchProblem;
use smx_eval::AnswerSet;

/// A matching system: given a problem and a maximum threshold, produce the
/// scored answer set `A^δmax`.
///
/// Matchers must score answers with the shared
/// [`ObjectiveFunction`](crate::ObjectiveFunction) and intern them in the
/// caller's [`MappingRegistry`], so different systems' answer sets can be
/// compared id-for-id.
pub trait Matcher {
    /// Human-readable system name (used in reports: "S1", "S2-beam", …).
    fn name(&self) -> &str;

    /// Run the matcher, returning all found mappings with Δ ≤ `delta_max`.
    fn run(&self, problem: &MatchProblem, delta_max: f64, registry: &MappingRegistry) -> AnswerSet;
}

/// Boxed matchers match too — so heterogeneous matcher collections
/// (`Vec<Box<dyn Matcher + Sync>>`, as the batch harness and tests use)
/// dispatch through the same interface.
impl<M: Matcher + ?Sized> Matcher for Box<M> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn run(&self, problem: &MatchProblem, delta_max: f64, registry: &MappingRegistry) -> AnswerSet {
        (**self).run(problem, delta_max, registry)
    }
}

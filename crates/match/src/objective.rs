//! The objective function Δ shared by every matcher.
//!
//! Δ maps a [`Mapping`](crate::Mapping) to a difference score in `[0, 1]`
//! (lower = better, as in the paper). It combines, per personal node, the
//! name dissimilarity and type incompatibility with its target, and per
//! personal edge, a structural penalty when the targets do not preserve
//! the ancestor relation.
//!
//! The paper's technique requires S1 and S2 to share Δ *exactly*; every
//! matcher in this crate therefore calls [`ObjectiveFunction::mapping_cost`],
//! which evaluates terms in a fixed order so scores are bitwise identical
//! across matchers.

use crate::problem::MatchProblem;
use serde::{Deserialize, Serialize};
use smx_repo::SchemaId;
use smx_text::NameSimilarity;
use smx_xml::{NodeId, Schema};

/// Weights of the objective's components.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveConfig {
    /// Weight of name dissimilarity within a node's cost.
    pub name_weight: f64,
    /// Weight of type incompatibility within a node's cost.
    pub type_weight: f64,
    /// Weight of one edge's structural penalty relative to one node.
    pub structure_weight: f64,
}

impl Default for ObjectiveConfig {
    fn default() -> Self {
        ObjectiveConfig {
            name_weight: 0.75,
            type_weight: 0.25,
            structure_weight: 0.6,
        }
    }
}

/// The difference function Δ.
#[derive(Debug, Clone, Default)]
pub struct ObjectiveFunction {
    config: ObjectiveConfig,
    names: NameSimilarity,
}

impl ObjectiveFunction {
    /// Build with explicit weights.
    pub fn new(config: ObjectiveConfig) -> Self {
        ObjectiveFunction {
            config,
            names: NameSimilarity::default(),
        }
    }

    /// The configured weights.
    pub fn config(&self) -> ObjectiveConfig {
        self.config
    }

    /// Name dissimilarity of two raw element names — the expensive leaf
    /// of [`node_cost`](Self::node_cost). Exposed so precomputed scoring
    /// engines ([`CostMatrix`](crate::CostMatrix)) can evaluate it once
    /// per *distinct* label pair and still reproduce `node_cost` bitwise.
    pub fn name_distance(&self, a: &str, b: &str) -> f64 {
        self.names.distance(a, b)
    }

    /// The single blend formula combining a name distance and a type
    /// distance into a node cost. Every code path that produces node
    /// costs (direct evaluation and the precomputed matrix fill) funnels
    /// through this, which is what makes their scores bitwise identical.
    #[inline]
    pub fn blend(&self, name_dist: f64, type_dist: f64) -> f64 {
        let w = self.config;
        (w.name_weight * name_dist + w.type_weight * type_dist) / (w.name_weight + w.type_weight)
    }

    /// Cost in `[0, 1]` of assigning `personal_node` to `target` in
    /// `schema` — name dissimilarity blended with type incompatibility.
    pub fn node_cost(
        &self,
        personal: &Schema,
        personal_node: NodeId,
        schema: &Schema,
        target: NodeId,
    ) -> f64 {
        let p = personal.node(personal_node);
        let t = schema.node(target);
        let name_dist = self.names.distance(&p.name, &t.name);
        let type_dist = 1.0 - p.ty.compatibility(t.ty);
        self.blend(name_dist, type_dist)
    }

    /// Penalty in `[0, 1]` for one personal edge `(parent, child)` whose
    /// targets are `(tp, tc)`: 0 when `tp` is a proper ancestor of `tc`
    /// with a small surcharge per skipped level, a flat high penalty
    /// otherwise (the mapping scrambles the hierarchy).
    pub fn edge_penalty(&self, schema: &Schema, tp: NodeId, tc: NodeId) -> f64 {
        if schema.is_ancestor(tp, tc) {
            let gap = schema.depth(tc) - schema.depth(tp);
            (0.15 * (gap as f64 - 1.0)).min(0.45)
        } else {
            0.8
        }
    }

    /// Δ of a full assignment: `targets[i]` is the image of the `i`-th
    /// personal node (arena order). Normalised into `[0, 1]` by the total
    /// weight `k + e·structure_weight`.
    pub fn mapping_cost(
        &self,
        problem: &MatchProblem,
        schema_id: SchemaId,
        targets: &[NodeId],
    ) -> f64 {
        let personal = problem.personal();
        let schema = problem.repository().schema(schema_id);
        debug_assert_eq!(targets.len(), problem.personal_size());
        let mut total = 0.0;
        for (i, &pid) in problem.personal_order().iter().enumerate() {
            total += self.node_cost(personal, pid, schema, targets[i]);
            if let Some(parent) = personal.node(pid).parent {
                let parent_target = targets[parent.index()];
                total += self.config.structure_weight
                    * self.edge_penalty(schema, parent_target, targets[i]);
            }
        }
        let denom = problem.personal_size() as f64
            + problem.personal_edges() as f64 * self.config.structure_weight;
        total / denom
    }

    /// The smallest possible node cost of `personal_node` within `schema`
    /// — the admissible per-node lower bound used by branch-and-bound.
    pub fn min_node_cost(&self, personal: &Schema, personal_node: NodeId, schema: &Schema) -> f64 {
        schema
            .node_ids()
            .map(|t| self.node_cost(personal, personal_node, schema, t))
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_repo::Repository;
    use smx_xml::{PrimitiveType, SchemaBuilder};

    fn fixture() -> (MatchProblem, SchemaId) {
        let personal = SchemaBuilder::new("p")
            .root("book")
            .leaf("title", PrimitiveType::String)
            .leaf("year", PrimitiveType::Integer)
            .build();
        let mut repo = Repository::new();
        let sid = repo.add(
            SchemaBuilder::new("bib")
                .root("bibliography")
                .child("book", |b| {
                    b.leaf("title", PrimitiveType::String)
                        .leaf("year", PrimitiveType::Integer)
                        .leaf("price", PrimitiveType::Decimal)
                })
                .build(),
        );
        (MatchProblem::new(personal, repo).unwrap(), sid)
    }

    #[test]
    fn perfect_target_scores_near_zero() {
        let (problem, sid) = fixture();
        let obj = ObjectiveFunction::default();
        // book→book(n1), title→title(n2), year→year(n3).
        let cost = obj.mapping_cost(&problem, sid, &[NodeId(1), NodeId(2), NodeId(3)]);
        assert!(cost < 0.05, "perfect mapping cost {cost}");
    }

    use smx_xml::NodeId;

    #[test]
    fn scrambled_target_scores_higher() {
        let (problem, sid) = fixture();
        let obj = ObjectiveFunction::default();
        let perfect = obj.mapping_cost(&problem, sid, &[NodeId(1), NodeId(2), NodeId(3)]);
        // Map onto unrelated nodes: root→price, title→bibliography, year→book.
        let scrambled = obj.mapping_cost(&problem, sid, &[NodeId(4), NodeId(0), NodeId(1)]);
        assert!(scrambled > perfect + 0.2, "{scrambled} vs {perfect}");
        assert!((0.0..=1.0).contains(&scrambled));
    }

    #[test]
    fn edge_penalty_prefers_ancestors() {
        let (problem, sid) = fixture();
        let schema = problem.repository().schema(sid);
        let obj = ObjectiveFunction::default();
        // Direct parent→child: zero penalty.
        assert_eq!(obj.edge_penalty(schema, NodeId(1), NodeId(2)), 0.0);
        // Grandparent: small surcharge.
        let skip = obj.edge_penalty(schema, NodeId(0), NodeId(2));
        assert!(skip > 0.0 && skip < 0.5);
        // Non-ancestor: flat high penalty.
        assert_eq!(obj.edge_penalty(schema, NodeId(2), NodeId(3)), 0.8);
    }

    #[test]
    fn node_cost_reacts_to_names_and_types() {
        let (problem, sid) = fixture();
        let schema = problem.repository().schema(sid);
        let personal = problem.personal();
        let obj = ObjectiveFunction::default();
        // title→title: near zero. title→price: high.
        let same = obj.node_cost(personal, NodeId(1), schema, NodeId(2));
        let diff = obj.node_cost(personal, NodeId(1), schema, NodeId(4));
        assert!(same < 0.1);
        assert!(diff > same);
        // year (integer) → price (decimal): name differs, type close.
        let year_price = obj.node_cost(personal, NodeId(2), schema, NodeId(4));
        let year_title = obj.node_cost(personal, NodeId(2), schema, NodeId(2));
        assert!(year_price < year_title + 0.3); // type compat helps a bit
    }

    #[test]
    fn min_node_cost_is_admissible() {
        let (problem, sid) = fixture();
        let schema = problem.repository().schema(sid);
        let personal = problem.personal();
        let obj = ObjectiveFunction::default();
        for pid in personal.node_ids() {
            let min = obj.min_node_cost(personal, pid, schema);
            for t in schema.node_ids() {
                assert!(obj.node_cost(personal, pid, schema, t) >= min - 1e-15);
            }
        }
    }

    #[test]
    fn cost_is_deterministic() {
        let (problem, sid) = fixture();
        let obj = ObjectiveFunction::default();
        let targets = [NodeId(1), NodeId(2), NodeId(3)];
        let a = obj.mapping_cost(&problem, sid, &targets);
        let b = obj.mapping_cost(&problem, sid, &targets);
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

//! Composable filter→refine matching pipelines with composed recall
//! certificates.
//!
//! The certified tier ([`certified`](crate::certified)) is one
//! hard-coded filter→refine pair. This module generalises it: a
//! [`Pipeline`] is a declarative sequence of [`Stage`]s, each of which
//! consumes the [`MatchProblem`] plus the active [`CandidateSet`] and
//! either *narrows* it — pruning schemas, charging the certificate for
//! what the pruning may have lost — or produces the *final*
//! [`AnswerSet`]. Because a pipeline itself implements [`Matcher`], a
//! composed `candidates → truncate → beam-filter → exhaustive` process
//! drops into [`BatchMatcher`](crate::BatchMatcher),
//! [`CertifiedMatcher`](crate::CertifiedMatcher), persistence and the
//! benches exactly like a monolithic matcher.
//!
//! # The stage algebra
//!
//! Every bound-based stage prunes against one shared, per-run
//! [`BoundsTable`](crate::candidates): each schema's certified-empty
//! flag, mapping-cost lower bound, and admissible answer cap, computed
//! once at full precision the first time any stage asks for it. That
//! sharing is what makes the stages *algebraic* — a stage's decision
//! for a schema depends only on the table and the schema itself, never
//! on where the stage sits in the pipeline, so rewrites preserve
//! answers bit for bit:
//!
//! * **predicate filters** ([`SizeFilter`], [`CandidateFilter`],
//!   [`BeamFilter`]) decide keep/drop per schema independently; they
//!   commute pairwise and are idempotent;
//! * **selection stages** ([`Truncate`]) keep a count-bounded subset of
//!   the survivors ranked by the table's cost lower bound; they do
//!   *not* commute with predicate filters (truncating first would
//!   waste slots on schemas a filter certifies empty) and act as
//!   rewrite barriers;
//! * **terminal stages** ([`RefineStage`]) run a full matcher on the
//!   surviving restriction and end the pipeline.
//!
//! [`Pipeline::normalize`] applies the safe rewrites — drop statically
//! no-op stages, fuse adjacent truncations, dedup repeated predicates,
//! absorb a size filter into a certified-empty filter, and reorder each
//! run of adjacent predicate filters cheapest-first. The
//! `pipeline_differential` / `pipeline_algebra` suites hold the module
//! to the algebra's word: a normalized pipeline must be
//! answer-bitwise-identical to its source, and composed certificates
//! must stay admissible for arbitrary stage orders and budgets.
//!
//! # Certificate composition
//!
//! Caps accumulate across stages: the final [`CandidateSet`] carries
//! `Σ caps` over everything any stage pruned uncertified, and the
//! composed certificate is the usual `|A| / (|A| + Σ caps)`. Per stage,
//! [`StageReport::factor`] exposes the telescoping attribution
//! `f_i = (|A| + Σ_{j>i} C_j) / (|A| + Σ_{j≥i} C_j)` whose product
//! reproduces the composed bound — the
//! [`smx_eval::FactorBreakdown`] form `smx-eval` reports.

use crate::beam::BeamMatcher;
use crate::candidates::{BoundsTable, CandidateSet};
use crate::certified::RecallCertificate;
use crate::mapping::MappingRegistry;
use crate::matcher::Matcher;
use crate::objective::ObjectiveFunction;
use crate::problem::MatchProblem;
use smx_eval::{AnswerSet, FactorBreakdown, StageInput};
use smx_repo::SchemaId;
use std::fmt;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Everything a stage may read during one pipeline run: the problem,
/// the threshold, the registry answers are interned in, the pipeline's
/// shared objective, and the lazily computed bounds table.
pub struct StageContext<'a> {
    problem: &'a MatchProblem,
    delta_max: f64,
    registry: &'a MappingRegistry,
    objective: &'a ObjectiveFunction,
    bounds: OnceLock<Arc<BoundsTable>>,
}

impl<'a> StageContext<'a> {
    fn new(
        problem: &'a MatchProblem,
        delta_max: f64,
        registry: &'a MappingRegistry,
        objective: &'a ObjectiveFunction,
    ) -> Self {
        StageContext {
            problem,
            delta_max,
            registry,
            objective,
            bounds: OnceLock::new(),
        }
    }

    /// The problem being matched.
    pub fn problem(&self) -> &'a MatchProblem {
        self.problem
    }

    /// The run's threshold δ_max.
    pub fn delta_max(&self) -> f64 {
        self.delta_max
    }

    /// The registry all answers must be interned in.
    pub fn registry(&self) -> &'a MappingRegistry {
        self.registry
    }

    /// The pipeline's shared objective Δ.
    pub fn objective(&self) -> &'a ObjectiveFunction {
        self.objective
    }

    /// The shared per-run bounds table, computed on first use.
    pub(crate) fn bounds(&self) -> &BoundsTable {
        self.bounds.get_or_init(|| {
            Arc::new(BoundsTable::compute(
                self.objective,
                self.problem,
                self.delta_max,
            ))
        })
    }
}

impl fmt::Debug for StageContext<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StageContext")
            .field("delta_max", &self.delta_max)
            .field("bounds_computed", &self.bounds.get().is_some())
            .finish()
    }
}

/// What one stage application produced.
#[derive(Debug, Clone)]
pub enum StageOutput {
    /// A narrowed candidate set: the stage pruned (or kept) schemas and
    /// folded its certificate charges into the cumulative set.
    Narrowed(CandidateSet),
    /// The final answers — the pipeline stops here.
    Final(AnswerSet),
}

/// Which predicate a filter stage applies — the identity the rewrite
/// rules dedup and reorder by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredicateId {
    /// Drop schemas too small for an injective assignment.
    Size,
    /// Drop schemas the bounds table certifies empty.
    CertEmpty,
    /// Drop schemas where a width-`width` beam finds no answer.
    Beam {
        /// The beam width.
        width: usize,
    },
}

impl PredicateId {
    /// Relative evaluation cost, for cheapest-first reordering: a size
    /// check is free, a table lookup is cheap, a beam pre-search is
    /// the expensive one.
    pub fn cost(self) -> u8 {
        match self {
            PredicateId::Size => 0,
            PredicateId::CertEmpty => 1,
            PredicateId::Beam { .. } => 2,
        }
    }
}

/// A stage's algebraic shape, as seen by [`Pipeline::normalize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// Per-schema keep/drop decided independently of the rest of the
    /// active set; idempotent; commutes with other predicates.
    Predicate(PredicateId),
    /// Keeps the `keep` most promising survivors; a rewrite barrier.
    Truncate {
        /// How many schemas survive.
        keep: usize,
    },
    /// Produces the final answer set.
    Terminal,
    /// Unknown semantics — no rewrite crosses it.
    Opaque,
}

/// One step of a matching pipeline.
///
/// A stage must be deterministic in `(cx, active)` and, when narrowing,
/// must charge the certificate admissibly: every schema it prunes
/// either is certified empty or contributes its answer cap, so the
/// composed `|A| / (|A| + Σ caps)` never overstates recall.
pub trait Stage: Send + Sync + fmt::Debug {
    /// Display name, e.g. `"truncate(8)"`.
    fn name(&self) -> String;

    /// The stage's algebraic shape. Implementations outside this
    /// module should return [`StageKind::Opaque`] (the default) unless
    /// they genuinely satisfy a kind's contract — `normalize` rewrites
    /// on the strength of it.
    fn kind(&self) -> StageKind {
        StageKind::Opaque
    }

    /// Apply the stage.
    fn apply(&self, cx: &StageContext<'_>, active: &CandidateSet) -> StageOutput;
}

/// Predicate filter: drop schemas with fewer nodes than the personal
/// schema — no injective assignment can exist, so pruning is free.
#[derive(Debug, Clone, Copy, Default)]
pub struct SizeFilter;

impl Stage for SizeFilter {
    fn name(&self) -> String {
        "size".to_string()
    }

    fn kind(&self) -> StageKind {
        StageKind::Predicate(PredicateId::Size)
    }

    fn apply(&self, cx: &StageContext<'_>, active: &CandidateSet) -> StageOutput {
        let problem = cx.problem();
        let repo = problem.repository();
        let k = problem.personal_size();
        let mut kept = Vec::with_capacity(active.active_count());
        let mut dropped = 0usize;
        for &sid in active.active().ids() {
            if repo.schema(sid).len() < k {
                dropped += 1;
            } else {
                kept.push(sid);
            }
        }
        if dropped == 0 {
            return StageOutput::Narrowed(active.clone());
        }
        StageOutput::Narrowed(active.narrow(problem, kept, dropped, 0.0))
    }
}

/// Predicate filter: drop every schema the shared bounds table
/// certifies empty at the threshold — the pipeline form of
/// [`CandidateGenerator`](crate::CandidateGenerator)'s auto mode.
#[derive(Debug, Clone, Copy, Default)]
pub struct CandidateFilter;

impl Stage for CandidateFilter {
    fn name(&self) -> String {
        "candidates".to_string()
    }

    fn kind(&self) -> StageKind {
        StageKind::Predicate(PredicateId::CertEmpty)
    }

    fn apply(&self, cx: &StageContext<'_>, active: &CandidateSet) -> StageOutput {
        let bounds = cx.bounds();
        let mut kept = Vec::with_capacity(active.active_count());
        let mut dropped = 0usize;
        for &sid in active.active().ids() {
            if bounds.entry(sid).cert_empty {
                dropped += 1;
            } else {
                kept.push(sid);
            }
        }
        if dropped == 0 {
            return StageOutput::Narrowed(active.clone());
        }
        StageOutput::Narrowed(active.narrow(cx.problem(), kept, dropped, 0.0))
    }
}

/// Selection stage: keep the `keep` most promising survivors (smallest
/// cost lower bound, ties by schema id) and charge every dropped
/// schema's answer cap — the pipeline form of an explicit
/// [`CandidateConfig::budget`](crate::CandidateConfig).
#[derive(Debug, Clone, Copy)]
pub struct Truncate {
    keep: usize,
}

impl Truncate {
    /// Keep at most `keep` schemas.
    pub fn new(keep: usize) -> Self {
        Truncate { keep }
    }

    /// The survivor budget.
    pub fn keep(&self) -> usize {
        self.keep
    }
}

impl Stage for Truncate {
    fn name(&self) -> String {
        format!("truncate({})", self.keep)
    }

    fn kind(&self) -> StageKind {
        StageKind::Truncate { keep: self.keep }
    }

    fn apply(&self, cx: &StageContext<'_>, active: &CandidateSet) -> StageOutput {
        if active.active_count() <= self.keep {
            return StageOutput::Narrowed(active.clone());
        }
        let bounds = cx.bounds();
        let mut ranked: Vec<(f64, SchemaId)> = active
            .active()
            .ids()
            .iter()
            .map(|&sid| (bounds.entry(sid).total_lb, sid))
            .collect();
        ranked.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("bounds are never NaN")
                .then(a.1.index().cmp(&b.1.index()))
        });
        let mut kept: Vec<SchemaId> = ranked[..self.keep].iter().map(|&(_, sid)| sid).collect();
        kept.sort_by_key(|sid| sid.index());
        let mut cert_dropped = 0usize;
        let caps_added = ranked[self.keep..].iter().fold(0.0, |acc, &(_, sid)| {
            let entry = bounds.entry(sid);
            if entry.cert_empty {
                cert_dropped += 1;
            }
            acc + entry.cap
        });
        StageOutput::Narrowed(active.narrow(cx.problem(), kept, cert_dropped, caps_added))
    }
}

/// Predicate filter: run a per-schema beam search over the survivors
/// and drop every schema where the beam finds no answer, charging its
/// cap — "beam as filter", feeding e.g. exhaustive-on-survivors.
///
/// Beam survival is decided per schema from that schema's cost table
/// alone, so this *is* a predicate: it commutes with the other filters
/// and is idempotent (a schema the beam answered once it answers again
/// on any narrower restriction that retains it).
#[derive(Debug, Clone, Copy)]
pub struct BeamFilter {
    width: usize,
}

impl BeamFilter {
    /// Filter with a width-`width` beam.
    pub fn new(width: usize) -> Self {
        BeamFilter { width }
    }

    /// The beam width.
    pub fn width(&self) -> usize {
        self.width
    }
}

impl Stage for BeamFilter {
    fn name(&self) -> String {
        format!("beam({})", self.width)
    }

    fn kind(&self) -> StageKind {
        StageKind::Predicate(PredicateId::Beam { width: self.width })
    }

    fn apply(&self, cx: &StageContext<'_>, active: &CandidateSet) -> StageOutput {
        let problem = cx.problem();
        let restricted = problem.with_candidates(active);
        let beam = BeamMatcher::new(cx.objective().clone(), self.width);
        let found = beam.run(&restricted, cx.delta_max(), cx.registry());
        let mut hit = vec![false; problem.repository().len()];
        for answer in found.answers() {
            if let Some(mapping) = cx.registry().resolve(answer.id) {
                hit[mapping.schema.index()] = true;
            }
        }
        let bounds = cx.bounds();
        let mut kept = Vec::with_capacity(active.active_count());
        let mut cert_dropped = 0usize;
        let mut caps_added = 0.0f64;
        for &sid in active.active().ids() {
            if hit[sid.index()] {
                kept.push(sid);
                continue;
            }
            let entry = bounds.entry(sid);
            if entry.cert_empty {
                cert_dropped += 1;
            }
            caps_added += entry.cap;
        }
        if kept.len() == active.active_count() {
            return StageOutput::Narrowed(active.clone());
        }
        StageOutput::Narrowed(active.narrow(problem, kept, cert_dropped, caps_added))
    }
}

/// Terminal stage: run any [`Matcher`] on the surviving restriction.
#[derive(Debug, Clone)]
pub struct RefineStage<M> {
    inner: M,
}

impl<M: Matcher + Send + Sync + fmt::Debug> RefineStage<M> {
    /// Lift `inner` into a terminal refine stage.
    pub fn new(inner: M) -> Self {
        RefineStage { inner }
    }

    /// The wrapped matcher.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: Matcher + Send + Sync + fmt::Debug> Stage for RefineStage<M> {
    fn name(&self) -> String {
        format!("refine({})", self.inner.name())
    }

    fn kind(&self) -> StageKind {
        StageKind::Terminal
    }

    fn apply(&self, cx: &StageContext<'_>, active: &CandidateSet) -> StageOutput {
        let restricted = cx.problem().with_candidates(active);
        StageOutput::Final(self.inner.run(&restricted, cx.delta_max(), cx.registry()))
    }
}

/// One stage's bookkeeping inside a [`PipelineCertificate`].
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// The stage's display name.
    pub name: String,
    /// Active schemas entering the stage.
    pub active_in: usize,
    /// Active schemas leaving the stage.
    pub active_out: usize,
    /// Schemas this stage pruned as certified empty.
    pub cert_empty_added: usize,
    /// Answer caps this stage charged for uncertified pruning.
    pub caps_added: f64,
    /// The stage's telescoping recall factor; the product over all
    /// stages reproduces the composed certified recall.
    pub factor: f64,
    /// Wall time the stage's `apply` took, in nanoseconds. Always
    /// measured (two monotonic clock reads per stage); when tracing is
    /// enabled the same duration is also emitted as a
    /// `pipeline.stage` span.
    pub wall_ns: u64,
}

/// A composed certificate: the end-to-end [`RecallCertificate`] plus
/// the per-stage attribution of how it was paid for.
#[derive(Debug, Clone)]
pub struct PipelineCertificate {
    stages: Vec<StageReport>,
    certificate: RecallCertificate,
}

impl PipelineCertificate {
    /// Per-stage reports, in execution order (filters, then the stage
    /// that answered).
    pub fn stages(&self) -> &[StageReport] {
        &self.stages
    }

    /// The composed end-to-end certificate.
    pub fn certificate(&self) -> &RecallCertificate {
        &self.certificate
    }

    /// The composed certified recall `|A| / (|A| + Σ caps)`.
    pub fn certified_recall(&self) -> f64 {
        self.certificate.certified_recall()
    }

    /// The `smx-eval` factor-breakdown form of this certificate; its
    /// factor product reproduces [`certified_recall`](Self::certified_recall),
    /// and each stage factor carries the stage's wall time and
    /// active-set delta for cost/selectivity attribution.
    pub fn factor_breakdown(&self) -> FactorBreakdown {
        FactorBreakdown::with_stages(
            self.certificate.answer_count(),
            self.stages
                .iter()
                .map(|r| StageInput {
                    stage: r.name.clone(),
                    caps_added: r.caps_added,
                    wall_ns: r.wall_ns,
                    active_in: r.active_in,
                    active_out: r.active_out,
                })
                .collect(),
        )
    }
}

impl fmt::Display for PipelineCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pipeline certificate: recall ≥ {:.6}, {} answers, missed ≤ {}",
            self.certified_recall(),
            self.certificate.answer_count(),
            self.certificate.missed_cap()
        )?;
        for report in &self.stages {
            writeln!(
                f,
                "  {}: {} → {} active, {} cert-empty, caps +{}, factor {:.6}, {}",
                report.name,
                report.active_in,
                report.active_out,
                report.cert_empty_added,
                report.caps_added,
                report.factor,
                smx_obs::format_ns(report.wall_ns)
            )?;
        }
        Ok(())
    }
}

/// A pipeline run's result: the answers plus the composed certificate.
#[derive(Debug, Clone)]
pub struct PipelineAnswer {
    /// The final answer set — every score from the shared Δ.
    pub answers: AnswerSet,
    /// The composed certificate with per-stage attribution.
    pub certificate: PipelineCertificate,
}

/// A declarative filter→refine matching process.
///
/// Built with [`Pipeline::builder`]; implements [`Matcher`], so it
/// drops anywhere a monolithic matcher goes. See the
/// [module docs](self) for the stage algebra and certificate
/// composition.
#[derive(Debug, Clone)]
pub struct Pipeline {
    objective: ObjectiveFunction,
    filters: Vec<Arc<dyn Stage>>,
    terminal: Arc<dyn Stage>,
    name: String,
}

impl Pipeline {
    /// Start composing a pipeline over the shared objective Δ.
    pub fn builder(objective: ObjectiveFunction) -> PipelineBuilder {
        PipelineBuilder {
            objective,
            filters: Vec::new(),
        }
    }

    fn assemble(
        objective: ObjectiveFunction,
        filters: Vec<Arc<dyn Stage>>,
        terminal: Arc<dyn Stage>,
    ) -> Pipeline {
        let mut name = String::from("pipeline(");
        for stage in &filters {
            name.push_str(&stage.name());
            name.push('→');
        }
        name.push_str(&terminal.name());
        name.push(')');
        Pipeline {
            objective,
            filters,
            terminal,
            name,
        }
    }

    /// The pipeline's shared objective.
    pub fn objective(&self) -> &ObjectiveFunction {
        &self.objective
    }

    /// Display names of all stages, filters first, terminal last.
    pub fn stage_names(&self) -> Vec<String> {
        self.filters
            .iter()
            .map(|s| s.name())
            .chain(std::iter::once(self.terminal.name()))
            .collect()
    }

    /// Algebraic kinds of all stages, filters first, terminal last.
    pub fn stage_kinds(&self) -> Vec<StageKind> {
        self.filters
            .iter()
            .map(|s| s.kind())
            .chain(std::iter::once(self.terminal.kind()))
            .collect()
    }

    /// Run the pipeline and return answers plus the composed
    /// certificate.
    pub fn run_certified(
        &self,
        problem: &MatchProblem,
        delta_max: f64,
        registry: &MappingRegistry,
    ) -> PipelineAnswer {
        let cx = StageContext::new(problem, delta_max, registry, &self.objective);
        let mut active = CandidateSet::full(problem, delta_max);
        let mut reports: Vec<StageReport> = Vec::with_capacity(self.filters.len() + 1);
        let mut answers: Option<AnswerSet> = None;
        for stage in &self.filters {
            let active_in = active.active_count();
            // The span (when tracing is on) parents whatever the stage
            // does internally — bounds-table builds, store sweeps — and
            // the wall clock is read either way so every StageReport
            // carries its stage's wall time.
            let mut span = smx_obs::span("pipeline.stage");
            let started = Instant::now();
            let output = stage.apply(&cx, &active);
            let wall_ns = started.elapsed().as_nanos() as u64;
            match output {
                StageOutput::Narrowed(next) => {
                    if span.is_active() {
                        span.attr("stage", stage.name());
                        span.attr("active_in", active_in);
                        span.attr("active_out", next.active_count());
                        span.attr(
                            "cert_empty_added",
                            next.cert_empty_count() - active.cert_empty_count(),
                        );
                        span.attr("caps_added", next.caps_sum() - active.caps_sum());
                    }
                    drop(span);
                    reports.push(StageReport {
                        name: stage.name(),
                        active_in,
                        active_out: next.active_count(),
                        cert_empty_added: next.cert_empty_count() - active.cert_empty_count(),
                        caps_added: next.caps_sum() - active.caps_sum(),
                        factor: 1.0,
                        wall_ns,
                    });
                    active = next;
                }
                StageOutput::Final(found) => {
                    // A filter may answer early; later stages never run.
                    if span.is_active() {
                        span.attr("stage", stage.name());
                        span.attr("active_in", active_in);
                        span.attr("answered_early", true);
                    }
                    drop(span);
                    reports.push(StageReport {
                        name: stage.name(),
                        active_in,
                        active_out: active_in,
                        cert_empty_added: 0,
                        caps_added: 0.0,
                        factor: 1.0,
                        wall_ns,
                    });
                    answers = Some(found);
                    break;
                }
            }
        }
        let answers = match answers {
            Some(found) => found,
            None => {
                let active_in = active.active_count();
                let mut span = smx_obs::span("pipeline.stage");
                let started = Instant::now();
                let output = self.terminal.apply(&cx, &active);
                let wall_ns = started.elapsed().as_nanos() as u64;
                match output {
                    StageOutput::Final(found) => {
                        if span.is_active() {
                            span.attr("stage", self.terminal.name());
                            span.attr("active_in", active_in);
                            span.attr("answers", found.len());
                        }
                        drop(span);
                        reports.push(StageReport {
                            name: self.terminal.name(),
                            active_in,
                            active_out: active_in,
                            cert_empty_added: 0,
                            caps_added: 0.0,
                            factor: 1.0,
                            wall_ns,
                        });
                        found
                    }
                    StageOutput::Narrowed(_) => {
                        unreachable!("terminal stage must produce an answer set")
                    }
                }
            }
        };
        let certificate = RecallCertificate::new(&active, answers.len());
        // Telescoping per-stage factors: with the suffix cap sums
        // C_{≥i}, f_i = (a + C_{>i}) / (a + C_{≥i}); the product
        // collapses to a / (a + Σ caps) — the certificate itself.
        let a = answers.len() as f64;
        let mut remaining: f64 = reports.iter().rev().fold(0.0, |acc, r| acc + r.caps_added);
        for report in reports.iter_mut() {
            let after = remaining - report.caps_added;
            report.factor = if remaining == 0.0 {
                1.0
            } else {
                (a + after) / (a + remaining)
            };
            remaining = after;
        }
        PipelineAnswer {
            answers,
            certificate: PipelineCertificate {
                stages: reports,
                certificate,
            },
        }
    }

    /// Rewrite the pipeline into a cheaper equivalent form. The
    /// rewrites only use [`Stage::kind`] facts:
    ///
    /// 1. drop statically no-op stages (`truncate(usize::MAX)`);
    /// 2. fuse adjacent truncations into one with the smaller budget;
    /// 3. within each maximal run of adjacent predicate filters: drop
    ///    repeated predicates (idempotence), absorb a size filter into
    ///    a certified-empty filter (which implies it), and reorder the
    ///    run cheapest-first (commutation).
    ///
    /// Selection stages, terminals and [`StageKind::Opaque`] stages are
    /// barriers: nothing is moved across them. The differential suite
    /// asserts a normalized pipeline's answers — and its composed
    /// certificate — are bitwise identical to the source pipeline's.
    pub fn normalize(&self) -> Pipeline {
        let mut stages = self.filters.clone();
        loop {
            let mut changed = false;

            // Rule 1: statically no-op stages.
            let before = stages.len();
            stages.retain(|s| !matches!(s.kind(), StageKind::Truncate { keep: usize::MAX }));
            changed |= stages.len() != before;

            // Rule 2: fuse adjacent truncations.
            let mut fused: Vec<Arc<dyn Stage>> = Vec::with_capacity(stages.len());
            for stage in stages.drain(..) {
                if let (Some(StageKind::Truncate { keep: a }), StageKind::Truncate { keep: b }) =
                    (fused.last().map(|s| s.kind()), stage.kind())
                {
                    fused.pop();
                    fused.push(Arc::new(Truncate::new(a.min(b))));
                    changed = true;
                } else {
                    fused.push(stage);
                }
            }
            stages = fused;

            // Rule 3: normalise each maximal predicate run.
            let mut out: Vec<Arc<dyn Stage>> = Vec::with_capacity(stages.len());
            let mut run: Vec<Arc<dyn Stage>> = Vec::new();
            for stage in stages.drain(..) {
                if matches!(stage.kind(), StageKind::Predicate(_)) {
                    run.push(stage);
                } else {
                    normalize_predicate_run(&mut run, &mut changed);
                    out.append(&mut run);
                    out.push(stage);
                }
            }
            normalize_predicate_run(&mut run, &mut changed);
            out.append(&mut run);
            stages = out;

            if !changed {
                break;
            }
        }
        Pipeline::assemble(self.objective.clone(), stages, self.terminal.clone())
    }
}

/// Apply the predicate-run rewrites (dedup, size absorption,
/// cheapest-first order) to one maximal run of adjacent predicates.
fn normalize_predicate_run(run: &mut Vec<Arc<dyn Stage>>, changed: &mut bool) {
    if run.len() < 2 {
        return;
    }
    let before = run.len();
    let mut seen: Vec<PredicateId> = Vec::new();
    run.retain(|s| match s.kind() {
        StageKind::Predicate(id) => {
            if seen.contains(&id) {
                false
            } else {
                seen.push(id);
                true
            }
        }
        _ => true,
    });
    if seen.contains(&PredicateId::CertEmpty) && seen.contains(&PredicateId::Size) {
        run.retain(|s| s.kind() != StageKind::Predicate(PredicateId::Size));
    }
    *changed |= run.len() != before;
    let costs: Vec<u8> = run
        .iter()
        .map(|s| match s.kind() {
            StageKind::Predicate(id) => id.cost(),
            _ => u8::MAX,
        })
        .collect();
    if costs.windows(2).any(|w| w[0] > w[1]) {
        // Stable, so equal-cost predicates keep their relative order.
        run.sort_by_key(|s| match s.kind() {
            StageKind::Predicate(id) => id.cost(),
            _ => u8::MAX,
        });
        *changed = true;
    }
}

impl Matcher for Pipeline {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&self, problem: &MatchProblem, delta_max: f64, registry: &MappingRegistry) -> AnswerSet {
        self.run_certified(problem, delta_max, registry).answers
    }
}

/// Builder for [`Pipeline`]s: append filter stages, then seal with a
/// terminal refine stage.
#[derive(Debug, Clone)]
pub struct PipelineBuilder {
    objective: ObjectiveFunction,
    filters: Vec<Arc<dyn Stage>>,
}

impl PipelineBuilder {
    /// Append any filter stage.
    pub fn stage(mut self, stage: impl Stage + 'static) -> Self {
        self.filters.push(Arc::new(stage));
        self
    }

    /// Append an already-shared stage (e.g. from
    /// [`CandidateGenerator::into_stages`](crate::CandidateGenerator::into_stages)).
    pub fn stage_arc(mut self, stage: Arc<dyn Stage>) -> Self {
        self.filters.push(stage);
        self
    }

    /// Append a [`SizeFilter`].
    pub fn size_filter(self) -> Self {
        self.stage(SizeFilter)
    }

    /// Append a [`CandidateFilter`].
    pub fn candidate_filter(self) -> Self {
        self.stage(CandidateFilter)
    }

    /// Append a [`Truncate`] keeping `keep` survivors.
    pub fn truncate(self, keep: usize) -> Self {
        self.stage(Truncate::new(keep))
    }

    /// Append a [`BeamFilter`] of the given width.
    pub fn beam_filter(self, width: usize) -> Self {
        self.stage(BeamFilter::new(width))
    }

    /// Seal with a terminal stage lifting `matcher`.
    pub fn refine(self, matcher: impl Matcher + Send + Sync + fmt::Debug + 'static) -> Pipeline {
        self.refine_stage(RefineStage::new(matcher))
    }

    /// Seal with an explicit terminal stage.
    pub fn refine_stage(self, terminal: impl Stage + 'static) -> Pipeline {
        Pipeline::assemble(self.objective, self.filters, Arc::new(terminal))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::ExhaustiveMatcher;
    use smx_synth::{Scenario, ScenarioConfig};

    fn problem() -> MatchProblem {
        let sc = Scenario::generate(ScenarioConfig {
            derived_schemas: 6,
            noise_schemas: 6,
            personal_nodes: 4,
            host_nodes: 8,
            perturbation_strength: 0.6,
            ..Default::default()
        });
        MatchProblem::new(sc.personal, sc.repository).unwrap()
    }

    #[test]
    fn pipeline_certificate_books_balance() {
        let problem = problem();
        let pipe = Pipeline::builder(ObjectiveFunction::default())
            .size_filter()
            .candidate_filter()
            .truncate(3)
            .refine(ExhaustiveMatcher::default());
        let registry = MappingRegistry::new();
        let run = pipe.run_certified(&problem, 0.3, &registry);
        let cert = &run.certificate;
        // Factor product reproduces the composed recall.
        assert!(cert
            .factor_breakdown()
            .reproduces(cert.certified_recall(), 1e-9));
        // Stage chain is contiguous: each stage's output feeds the next.
        for pair in cert.stages().windows(2) {
            assert_eq!(pair[0].active_out, pair[1].active_in);
        }
        assert_eq!(cert.certificate().answer_count(), run.answers.len());
    }

    #[test]
    fn normalize_applies_the_documented_rules() {
        let pipe = Pipeline::builder(ObjectiveFunction::default())
            .candidate_filter()
            .size_filter()
            .truncate(usize::MAX)
            .candidate_filter()
            .truncate(9)
            .truncate(4)
            .refine(ExhaustiveMatcher::default());
        let normal = pipe.normalize();
        assert_eq!(
            normal.stage_names(),
            vec![
                "candidates".to_string(),
                "truncate(4)".to_string(),
                "refine(S1-exhaustive)".to_string(),
            ],
            "dedup + size absorption + no-op drop + truncate fusion"
        );
        // Normalisation is idempotent.
        assert_eq!(normal.normalize().stage_names(), normal.stage_names());
    }

    #[test]
    fn normalize_orders_predicates_cheapest_first_and_respects_barriers() {
        let pipe = Pipeline::builder(ObjectiveFunction::default())
            .beam_filter(8)
            .size_filter()
            .truncate(5)
            .beam_filter(8)
            .candidate_filter()
            .refine(ExhaustiveMatcher::default());
        let normal = pipe.normalize();
        assert_eq!(
            normal.stage_names(),
            vec![
                "size".to_string(),
                "beam(8)".to_string(),
                "truncate(5)".to_string(),
                "candidates".to_string(),
                "beam(8)".to_string(),
                "refine(S1-exhaustive)".to_string(),
            ],
            "sorts within runs only; truncate is a barrier, so the \
             second beam is not a duplicate of the first"
        );
    }
}

//! Differential gate for the sharded, mutable store: a repository that
//! has been sharded, bounded, removed-from, and replaced-into must give
//! every matcher in the roster answers **bitwise identical** (resolved
//! mappings + `f64::to_bits` scores) to a fresh, unsharded, unbounded
//! rebuild of the same final schemas — tombstoned slots rebuilt as the
//! empty placeholder schemas every matcher skips.
//!
//! This is the acceptance gate of the sharding/mutability tentpole:
//! sharding, global-LRU eviction, orphaned labels, and generation
//! stamps are all invisible at the answer level.

use smx_match::test_support::{all_matchers, canonical_answers, run_matcher};
use smx_match::MappingRegistry;
use smx_repo::{Repository, SchemaId, StoreConfig};
use smx_synth::{Domain, Scenario, ScenarioConfig};
use smx_xml::Schema;

fn scenario(seed: u64, domain: Domain) -> Scenario {
    Scenario::generate(ScenarioConfig {
        domain,
        derived_schemas: 5,
        noise_schemas: 5,
        personal_nodes: 4,
        host_nodes: 8,
        perturbation_strength: 0.6,
        seed,
    })
}

/// Rebuild `mutated`'s final schemas into a fresh single-shard,
/// unbounded repository — the oracle. Removed slots become empty
/// placeholder schemas so `SchemaId`s line up exactly.
fn fresh_unsharded_oracle(mutated: &Repository) -> Repository {
    let mut oracle = Repository::with_store_config(StoreConfig {
        shards: 1,
        max_cached_rows: None,
        batch_threads: 1,
    });
    for sid in mutated.schema_ids() {
        if mutated.is_removed(sid) {
            oracle.add(Schema::new(""));
        } else {
            oracle.add(mutated.schema(sid).clone());
        }
    }
    oracle
}

#[test]
fn mutated_sharded_store_is_bitwise_identical_to_fresh_unsharded_rebuild() {
    for (seed, domain) in [
        (31, Domain::Publications),
        (32, Domain::Commerce),
        (33, Domain::Travel),
    ] {
        let sc = scenario(seed, domain);
        // Sharded + tightly bounded, then mutated: remove two schemas,
        // replace one with a schema drawn from a different generation
        // of the same domain, and re-add one removed slot's schema
        // verbatim.
        let mut mutated = Repository::with_store_config(StoreConfig {
            shards: 8,
            max_cached_rows: Some(3),
            batch_threads: 0,
        });
        for (_, schema) in sc.repository.iter() {
            mutated.add(schema.clone());
        }
        let n = mutated.len() as u32;
        assert!(n >= 5, "scenario too small to mutate meaningfully");
        let removed_a = SchemaId(1);
        let removed_b = SchemaId(n - 1);
        let replaced = SchemaId(3);
        let readded = SchemaId(2);
        assert!(mutated.remove_schema(removed_a));
        assert!(mutated.remove_schema(removed_b));
        assert!(mutated.remove_schema(readded));
        let donor = scenario(seed + 100, domain);
        assert!(mutated.replace_schema(replaced, donor.repository.schema(SchemaId(0)).clone()));
        assert!(mutated.replace_schema(readded, sc.repository.schema(readded).clone()));
        // Warm the bounded sharded cache before matching so eviction
        // and spill churn actually happened by the time answers are
        // compared.
        let _ = mutated
            .store()
            .score_row(&sc.personal.node(smx_xml::NodeId(0)).name);

        let oracle = fresh_unsharded_oracle(&mutated);
        assert_eq!(oracle.len(), mutated.len());

        let delta_max = 0.4;
        for (name, matcher) in all_matchers() {
            let reg_m = MappingRegistry::new();
            let reg_o = MappingRegistry::new();
            let got = run_matcher(matcher.as_ref(), &sc.personal, &mutated, delta_max, &reg_m);
            let want = run_matcher(matcher.as_ref(), &sc.personal, &oracle, delta_max, &reg_o);
            assert!(
                !want.is_empty() || !got.is_empty() || want.len() == got.len(),
                "{name}: degenerate comparison"
            );
            // No answer may target a tombstoned schema.
            for a in got.answers() {
                let mapping = reg_m.resolve(a.id).expect("interned");
                assert!(
                    !mutated.is_removed(mapping.schema),
                    "{name}: answered a removed schema {:?}",
                    mapping.schema
                );
            }
            assert_eq!(
                canonical_answers(&got, &reg_m),
                canonical_answers(&want, &reg_o),
                "{name}: {domain:?} seed {seed} diverged from the fresh unsharded rebuild"
            );
        }
    }
}

//! Cross-matcher invariants over generated scenarios: every S2 is a
//! score-consistent subset of S1 at every threshold — the premise of the
//! effectiveness-bounds technique — and S1 is complete w.r.t. brute force.

use smx_match::*;
use smx_synth::{Domain, Scenario, ScenarioConfig};

fn problem(seed: u64, domain: Domain) -> MatchProblem {
    let sc = Scenario::generate(ScenarioConfig {
        domain,
        derived_schemas: 4,
        noise_schemas: 3,
        personal_nodes: 4,
        host_nodes: 7,
        perturbation_strength: 0.5,
        seed,
    });
    MatchProblem::new(sc.personal, sc.repository).unwrap()
}

#[test]
fn every_s2_is_score_consistent_subset_of_s1() {
    for (seed, domain) in [
        (1, Domain::Publications),
        (2, Domain::Commerce),
        (3, Domain::Travel),
    ] {
        let problem = problem(seed, domain);
        let registry = MappingRegistry::new();
        let delta_max = 0.45;
        let s1 = ExhaustiveMatcher::default().run(&problem, delta_max, &registry);
        let s2s: Vec<(&str, smx_eval::AnswerSet)> = vec![
            (
                "beam",
                BeamMatcher::new(ObjectiveFunction::default(), 12)
                    .run(&problem, delta_max, &registry),
            ),
            (
                "cluster",
                ClusterMatcher::new(ObjectiveFunction::default(), 0.5, 3)
                    .run(&problem, delta_max, &registry),
            ),
            (
                "topk",
                TopKMatcher::new(ObjectiveFunction::default(), 25)
                    .run(&problem, delta_max, &registry),
            ),
        ];
        for (name, s2) in &s2s {
            s2.is_subset_of(&s1)
                .unwrap_or_else(|e| panic!("seed {seed}: {name} not a subset: {e}"));
            assert!(
                s2.scores_consistent_with(&s1),
                "seed {seed}: {name} rescored answers"
            );
            // Subset at every threshold of S1's grid, not just overall.
            for t in s1.distinct_scores() {
                assert!(
                    s2.count_at(t) <= s1.count_at(t),
                    "seed {seed}: {name} exceeds S1 at δ={t}"
                );
            }
        }
    }
}

#[test]
fn exhaustive_is_complete_against_brute_force_on_scenarios() {
    // Tiny scenario so brute force stays feasible.
    let sc = Scenario::generate(ScenarioConfig {
        derived_schemas: 2,
        noise_schemas: 1,
        personal_nodes: 3,
        host_nodes: 6,
        ..Default::default()
    });
    let problem = MatchProblem::new(sc.personal, sc.repository).unwrap();
    for delta_max in [0.2, 0.4, 0.7] {
        let reg_a = MappingRegistry::new();
        let reg_b = MappingRegistry::new();
        let fast = ExhaustiveMatcher::default().run(&problem, delta_max, &reg_a);
        let slow = BruteForceMatcher::default().run(&problem, delta_max, &reg_b);
        assert_eq!(fast.len(), slow.len(), "δ={delta_max}");
    }
}

#[test]
fn ratio_profiles_have_expected_shapes() {
    // Beam loses answers smoothly; top-k cuts sharply: check the ratio at
    // the head vs the tail of the score range.
    let problem = problem(7, Domain::Publications);
    let registry = MappingRegistry::new();
    let delta_max = 0.45;
    let s1 = ExhaustiveMatcher::default().run(&problem, delta_max, &registry);
    if s1.len() < 20 {
        return; // degenerate scenario; other seeds cover the shape check
    }
    let beam =
        BeamMatcher::new(ObjectiveFunction::default(), 8).run(&problem, delta_max, &registry);
    let k = s1.len() / 4;
    let topk =
        TopKMatcher::new(ObjectiveFunction::default(), k).run(&problem, delta_max, &registry);
    let scores = s1.distinct_scores();
    let head = scores[scores.len() / 5];
    let tail = *scores.last().unwrap();
    // Top-k: ratio 1 at the k-th score, 0 growth after.
    let kth_score = s1.answers()[k - 1].score;
    assert_eq!(topk.count_at(kth_score), s1.count_at(kth_score).min(k));
    assert_eq!(topk.count_at(tail), k);
    // Beam keeps the head better than the tail (relative retention).
    let beam_head_ratio = beam.count_at(head) as f64 / s1.count_at(head).max(1) as f64;
    let beam_tail_ratio = beam.count_at(tail) as f64 / s1.count_at(tail) as f64;
    assert!(
        beam_head_ratio >= beam_tail_ratio,
        "beam head {beam_head_ratio} vs tail {beam_tail_ratio}"
    );
}

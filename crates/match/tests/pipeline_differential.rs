//! Differential gate for composable pipelines: a declarative
//! filter→refine [`Pipeline`] must be *answer-bitwise-identical* to the
//! monolithic system it decomposes, its rewrite layer must preserve
//! answers and certificates exactly, and the composed certificate's
//! factor breakdown must reproduce the end-to-end certified recall.
//!
//! The monolith side of each comparison is the matcher run directly (an
//! exact candidate tier removes only certified-empty schemas, so
//! `candidates → refine(M)` must equal `M` bitwise for every roster
//! system — including the globally-budgeted top-k, whose dynamic
//! threshold only ever sees real answers).

use smx_eval::FactorBreakdown;
use smx_match::test_support::assert_answers_bitwise;
use smx_match::*;
use smx_synth::{Domain, Scenario, ScenarioConfig};

const DELTA_MAX: f64 = 0.4;

fn problem(seed: u64, domain: Domain) -> MatchProblem {
    let sc = Scenario::generate(ScenarioConfig {
        domain,
        derived_schemas: 5,
        noise_schemas: 5,
        personal_nodes: 4,
        host_nodes: 8,
        perturbation_strength: 0.6,
        seed,
    });
    MatchProblem::new(sc.personal, sc.repository).unwrap()
}

/// Each monolithic system next to its `candidates → refine(self)`
/// pipeline decomposition.
fn decompositions() -> Vec<(&'static str, Box<dyn Matcher + Sync>, Pipeline)> {
    let objective = ObjectiveFunction::default;
    vec![
        (
            "exhaustive",
            Box::new(ExhaustiveMatcher::new(objective())) as Box<dyn Matcher + Sync>,
            Pipeline::builder(objective())
                .candidate_filter()
                .refine(ExhaustiveMatcher::new(objective())),
        ),
        (
            "parallel",
            Box::new(ParallelExhaustiveMatcher::new(objective(), 3)),
            Pipeline::builder(objective())
                .candidate_filter()
                .refine(ParallelExhaustiveMatcher::new(objective(), 3)),
        ),
        (
            "brute-force",
            Box::new(BruteForceMatcher::new(objective())),
            Pipeline::builder(objective())
                .candidate_filter()
                .refine(BruteForceMatcher::new(objective())),
        ),
        (
            "beam",
            Box::new(BeamMatcher::new(objective(), 16)),
            Pipeline::builder(objective())
                .candidate_filter()
                .refine(BeamMatcher::new(objective(), 16)),
        ),
        (
            "cluster",
            Box::new(ClusterMatcher::new(objective(), 0.55, 3)),
            Pipeline::builder(objective())
                .candidate_filter()
                .refine(ClusterMatcher::new(objective(), 0.55, 3)),
        ),
        (
            "topk",
            Box::new(TopKMatcher::new(objective(), 25)),
            Pipeline::builder(objective())
                .candidate_filter()
                .refine(TopKMatcher::new(objective(), 25)),
        ),
    ]
}

#[test]
fn candidate_refine_pipeline_is_bitwise_identical_to_each_monolith() {
    for (seed, domain) in [(61, Domain::Publications), (62, Domain::Travel)] {
        let problem = problem(seed, domain);
        let registry = MappingRegistry::new();
        for (name, monolith, pipeline) in decompositions() {
            let direct = monolith.run(&problem, DELTA_MAX, &registry);
            let piped = pipeline.run(&problem, DELTA_MAX, &registry);
            assert_answers_bitwise(name, &piped, &direct, &registry);
            assert_answers_bitwise(name, &direct, &piped, &registry);
            // The exact tier charges nothing, so the composed
            // certificate is exactly 1.
            let certified = pipeline.run_certified(&problem, DELTA_MAX, &registry);
            assert_eq!(certified.certificate.certified_recall(), 1.0, "{name}");
            assert_eq!(certified.certificate.certificate().missed_cap(), 0.0);
        }
    }
}

#[test]
fn certified_monolith_and_its_pipeline_form_agree() {
    let problem = problem(63, Domain::Commerce);
    let registry = MappingRegistry::new();
    for budget in [0, 1, 3, 7, 64] {
        let certified = CertifiedMatcher::new(
            ExhaustiveMatcher::default(),
            CandidateGenerator::new(
                ObjectiveFunction::default(),
                CandidateConfig {
                    budget: Some(budget),
                },
            ),
        );
        let monolith = certified.run_certified(&problem, DELTA_MAX, &registry);
        let pipeline = certified.clone().into_pipeline();
        let piped = pipeline.run_certified(&problem, DELTA_MAX, &registry);
        assert_answers_bitwise(
            &format!("budget {budget}"),
            &piped.answers,
            &monolith.answers,
            &registry,
        );
        // Both certificates bound the same run; the pipeline prunes
        // against the full-precision bounds table, so its bookkeeping
        // may differ — but never its admissibility or its recall value
        // (same survivors, same charged caps).
        let mono_recall = monolith.certificate.certified_recall();
        let pipe_recall = piped.certificate.certified_recall();
        assert!(
            (mono_recall - pipe_recall).abs() < 1e-9,
            "budget {budget}: monolith recall {mono_recall} vs pipeline {pipe_recall}"
        );
    }
}

#[test]
fn normalize_preserves_answers_and_certificates_exactly() {
    let objective = ObjectiveFunction::default;
    // Redundant, unordered pipelines the rewrite layer has real work on.
    let sources: Vec<(&str, Pipeline)> = vec![
        (
            "dup-filters",
            Pipeline::builder(objective())
                .candidate_filter()
                .candidate_filter()
                .size_filter()
                .candidate_filter()
                .refine(ExhaustiveMatcher::new(objective())),
        ),
        (
            "noop-truncate",
            Pipeline::builder(objective())
                .truncate(usize::MAX)
                .candidate_filter()
                .truncate(usize::MAX)
                .refine(BeamMatcher::new(objective(), 16)),
        ),
        (
            "fused-truncates",
            Pipeline::builder(objective())
                .candidate_filter()
                .truncate(9)
                .truncate(4)
                .truncate(6)
                .refine(TopKMatcher::new(objective(), 25)),
        ),
        (
            "unordered-predicates",
            Pipeline::builder(objective())
                .beam_filter(8)
                .size_filter()
                .candidate_filter()
                .truncate(5)
                .beam_filter(8)
                .refine(ExhaustiveMatcher::new(objective())),
        ),
        (
            "mixed-everything",
            Pipeline::builder(objective())
                .truncate(usize::MAX)
                .candidate_filter()
                .size_filter()
                .size_filter()
                .beam_filter(12)
                .truncate(7)
                .truncate(3)
                .candidate_filter()
                .refine(ParallelExhaustiveMatcher::new(objective(), 2)),
        ),
    ];
    for (seed, domain) in [(64, Domain::Publications), (65, Domain::HumanResources)] {
        let problem = problem(seed, domain);
        for (name, source) in &sources {
            let normalized = source.normalize();
            assert!(
                normalized.stage_names().len() <= source.stage_names().len(),
                "{name}: normalization grew the pipeline"
            );
            // Idempotent: a normal form is its own normal form.
            assert_eq!(
                normalized.normalize().stage_names(),
                normalized.stage_names(),
                "{name}"
            );
            let registry = MappingRegistry::new();
            let a = source.run_certified(&problem, DELTA_MAX, &registry);
            let b = normalized.run_certified(&problem, DELTA_MAX, &registry);
            assert_answers_bitwise(name, &b.answers, &a.answers, &registry);
            assert_answers_bitwise(name, &a.answers, &b.answers, &registry);
            // Certificates agree exactly: same survivors, same charged
            // caps (reordered predicates only shuffle zero-cap drops).
            assert_eq!(
                a.certificate.certified_recall().to_bits(),
                b.certificate.certified_recall().to_bits(),
                "{name}: recall diverged under normalization"
            );
            assert_eq!(
                a.certificate.certificate().missed_cap().to_bits(),
                b.certificate.certificate().missed_cap().to_bits(),
                "{name}: caps diverged under normalization"
            );
            assert_eq!(
                a.certificate.certificate().active_schemas(),
                b.certificate.certificate().active_schemas(),
                "{name}"
            );
        }
    }
}

#[test]
fn factor_breakdown_reproduces_the_composed_recall() {
    let objective = ObjectiveFunction::default;
    let pipeline = Pipeline::builder(objective())
        .size_filter()
        .candidate_filter()
        .truncate(6)
        .beam_filter(8)
        .refine(ExhaustiveMatcher::new(objective()));
    for (seed, domain) in [(66, Domain::Commerce), (67, Domain::Travel)] {
        let problem = problem(seed, domain);
        let registry = MappingRegistry::new();
        let run = pipeline.run_certified(&problem, DELTA_MAX, &registry);
        let breakdown: FactorBreakdown = run.certificate.factor_breakdown();
        assert!(
            breakdown.reproduces(run.certificate.certified_recall(), 1e-9),
            "factor product {} vs certified recall {}",
            breakdown.composed_recall(),
            run.certificate.certified_recall()
        );
        // The stage chain is contiguous and every factor admissible.
        let stages = run.certificate.stages();
        for pair in stages.windows(2) {
            assert_eq!(pair[0].active_out, pair[1].active_in);
        }
        for report in stages {
            assert!((0.0..=1.0).contains(&report.factor), "{report:?}");
        }
    }
}

#[test]
fn pipeline_slots_into_matcher_consumers_unchanged() {
    let objective = ObjectiveFunction::default;
    let pipeline = Pipeline::builder(objective())
        .candidate_filter()
        .beam_filter(16)
        .refine(ExhaustiveMatcher::new(objective()));
    let problem = problem(68, Domain::Publications);
    let registry = MappingRegistry::new();
    let direct = pipeline.run(&problem, DELTA_MAX, &registry);

    // As a boxed trait object.
    let boxed: Box<dyn Matcher + Sync> = Box::new(pipeline.clone());
    assert_answers_bitwise(
        "boxed",
        &boxed.run(&problem, DELTA_MAX, &registry),
        &direct,
        &registry,
    );

    // Behind a CertifiedMatcher: an auto tier loses nothing.
    let certified = CertifiedMatcher::new(
        pipeline.clone(),
        CandidateGenerator::auto(ObjectiveFunction::default()),
    );
    let wrapped = certified.run_certified(&problem, DELTA_MAX, &registry);
    assert_answers_bitwise("certified", &wrapped.answers, &direct, &registry);
    assert_eq!(wrapped.certificate.certified_recall(), 1.0);

    // Through the batch dispatcher, sequential and threaded.
    let batch = BatchProblem::new(
        vec![problem.personal().clone(), problem.personal().clone()],
        problem.repository().clone(),
    )
    .unwrap();
    let seq = BatchMatcher::new(pipeline.clone()).run_batch(&batch, DELTA_MAX, &registry);
    let thr = BatchMatcher::with_threads(pipeline, 2).run_batch(&batch, DELTA_MAX, &registry);
    assert_eq!(seq.len(), 2);
    for (s, t) in seq.iter().zip(&thr) {
        assert_answers_bitwise("batch-solo", s, &direct, &registry);
        assert_answers_bitwise("batch-threaded", t, s, &registry);
    }
}

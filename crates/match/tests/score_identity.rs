//! The scoring engine's core invariant: matrix-backed runs are **bitwise
//! identical** to direct `ObjectiveFunction` evaluation, for every
//! matcher. The effectiveness-bounds methodology rests on S1 and S2
//! sharing Δ exactly — a single ulp of drift would silently break the
//! `A_S2 ⊆ A_S1` containment the paper's technique needs.

use proptest::prelude::*;
use smx_match::*;
use smx_synth::{Domain, Scenario, ScenarioConfig};

fn scenario_problem(seed: u64) -> MatchProblem {
    let sc = Scenario::generate(ScenarioConfig {
        derived_schemas: 4,
        noise_schemas: 3,
        personal_nodes: 4,
        host_nodes: 7,
        perturbation_strength: 0.6,
        seed,
        ..Default::default()
    });
    MatchProblem::new(sc.personal, sc.repository).unwrap()
}

/// Every answer any matrix-backed matcher reports must carry a score
/// bitwise equal to re-evaluating its mapping through the direct
/// `ObjectiveFunction` path.
#[test]
fn all_matchers_report_bitwise_direct_scores() {
    let problem = scenario_problem(7);
    let objective = ObjectiveFunction::default();
    let registry = MappingRegistry::new();
    let delta_max = 0.5;
    let runs: Vec<(&str, smx_eval::AnswerSet)> = vec![
        (
            "exhaustive",
            ExhaustiveMatcher::default().run(&problem, delta_max, &registry),
        ),
        (
            "parallel",
            ParallelExhaustiveMatcher::new(ObjectiveFunction::default(), 3)
                .run(&problem, delta_max, &registry),
        ),
        (
            "brute_force",
            BruteForceMatcher::default().run(&problem, delta_max, &registry),
        ),
        (
            "beam",
            BeamMatcher::new(ObjectiveFunction::default(), 16).run(&problem, delta_max, &registry),
        ),
        (
            "cluster",
            ClusterMatcher::new(ObjectiveFunction::default(), 0.5, 3)
                .run(&problem, delta_max, &registry),
        ),
        (
            "topk",
            TopKMatcher::new(ObjectiveFunction::default(), 25).run(&problem, delta_max, &registry),
        ),
    ];
    for (name, answers) in &runs {
        assert!(!answers.is_empty(), "{name} found nothing at δ={delta_max}");
        for a in answers.answers() {
            let mapping = registry.resolve(a.id).expect("interned");
            let direct = objective.mapping_cost(&problem, mapping.schema, &mapping.targets);
            assert_eq!(
                a.score.to_bits(),
                direct.to_bits(),
                "{name}: {mapping} scored {} vs direct {direct}",
                a.score
            );
        }
    }
}

/// Matrix-backed and direct-evaluation exhaustive runs produce the same
/// answer set — same ids, same scores, same order.
#[test]
fn exhaustive_matrix_equals_exhaustive_direct() {
    for seed in [1, 2, 3] {
        let problem = scenario_problem(seed);
        let registry = MappingRegistry::new();
        for delta_max in [0.2, 0.35, 0.5] {
            let fast = ExhaustiveMatcher::default().run(&problem, delta_max, &registry);
            let slow = ExhaustiveMatcher::direct(ObjectiveFunction::default())
                .run(&problem, delta_max, &registry);
            assert_eq!(fast, slow, "seed {seed} δ={delta_max}");
        }
    }
}

/// Same identity for the no-pruning reference enumerator.
#[test]
fn brute_force_matrix_equals_brute_force_direct() {
    let sc = Scenario::generate(ScenarioConfig {
        derived_schemas: 2,
        noise_schemas: 1,
        personal_nodes: 3,
        host_nodes: 5,
        seed: 11,
        ..Default::default()
    });
    let problem = MatchProblem::new(sc.personal, sc.repository).unwrap();
    let registry = MappingRegistry::new();
    let fast = BruteForceMatcher::default().run(&problem, 0.6, &registry);
    let slow =
        BruteForceMatcher::direct(ObjectiveFunction::default()).run(&problem, 0.6, &registry);
    assert_eq!(fast, slow);
}

/// Different domains exercise different vocabularies (synonyms, shared
/// tokens across schemas — the interner's dedup paths).
#[test]
fn identity_holds_across_domains() {
    for (seed, domain) in [
        (5, Domain::Publications),
        (6, Domain::Commerce),
        (7, Domain::Travel),
    ] {
        let sc = Scenario::generate(ScenarioConfig {
            domain,
            derived_schemas: 3,
            noise_schemas: 2,
            personal_nodes: 4,
            host_nodes: 6,
            perturbation_strength: 0.7,
            seed,
        });
        let problem = MatchProblem::new(sc.personal, sc.repository).unwrap();
        let objective = ObjectiveFunction::default();
        let matrix = problem.cost_matrix(&objective);
        let personal = problem.personal();
        for (sid, schema) in problem.repository().iter() {
            let table = matrix.table(sid);
            for (level, &pid) in problem.personal_order().iter().enumerate() {
                for t in schema.node_ids() {
                    assert_eq!(
                        table.cost(level, t.index()).to_bits(),
                        objective.node_cost(personal, pid, schema, t).to_bits(),
                        "{domain:?} {sid} level {level} {t}"
                    );
                }
            }
        }
    }
}

proptest! {
    /// Property: matrix row minima are admissible per-node bounds, and
    /// the suffix sums are admissible completion bounds — for arbitrary
    /// generated scenarios.
    #[test]
    fn matrix_minima_are_admissible_bounds(
        seed in 0u64..32,
        personal_nodes in 2usize..5,
        host_nodes in 4usize..9,
    ) {
        let sc = Scenario::generate(ScenarioConfig {
            derived_schemas: 2,
            noise_schemas: 2,
            personal_nodes,
            host_nodes,
            perturbation_strength: 0.8,
            seed,
            ..Default::default()
        });
        let problem = MatchProblem::new(sc.personal, sc.repository).unwrap();
        let objective = ObjectiveFunction::default();
        let matrix = problem.cost_matrix(&objective);
        let k = problem.personal_size();
        for (sid, schema) in problem.repository().iter() {
            let table = matrix.table(sid);
            let n = schema.len();
            // Row minima never exceed any cell of their row.
            for level in 0..k {
                for node in 0..n {
                    prop_assert!(table.row_min(level) <= table.cost(level, node));
                }
            }
            // Suffix sums are the sums of row minima (admissible w.r.t.
            // any injective completion, since edge penalties are ≥ 0).
            let mut expect = 0.0;
            for level in (0..k).rev() {
                expect += table.row_min(level);
                prop_assert!((table.suffix_min()[level] - expect).abs() < 1e-12);
            }
            prop_assert_eq!(table.suffix_min()[k], 0.0);
        }
    }
}

//! The certified matrix: fixed-budget [`CertifiedMatcher`] crossed with
//! every matching system in the shared roster, asserting exactly what
//! each class of inner matcher can promise.
//!
//! * **Complete** inner matchers (exhaustive, parallel, brute-force)
//!   find everything the restriction leaves reachable, so the
//!   certificate bounds recall against the *exhaustive oracle*.
//! * **Restriction-monotone heuristics** (beam, cluster, and the
//!   composed pipeline) search each schema independently of the others,
//!   so their restricted run equals their unrestricted run intersected
//!   with the surviving schemas — the certificate bounds recall against
//!   the matcher's *own unrestricted run*. It does **not** bound recall
//!   vs the oracle: the heuristic's own losses are outside the tier.
//! * **Global-budget heuristics** (top-k, whose dynamic pruning
//!   threshold is shared across schemas) promise neither: pruning one
//!   schema can *promote* deeper answers from another into the top k,
//!   so the restricted run is not a subset of the unrestricted one.
//!   What survives: answers stay a score-consistent subset of the
//!   oracle, and the certificate stays well-formed.

use smx_match::test_support::{all_matchers, complete_matcher_names};
use smx_match::*;
use smx_synth::{Domain, Scenario, ScenarioConfig};

const DELTA_MAX: f64 = 0.4;
const BUDGETS: [usize; 6] = [0, 1, 2, 4, 8, 64];

/// Roster names whose restricted run equals the unrestricted run
/// intersected with the surviving schemas (per-schema-independent
/// search; cluster ranking reads the whole repository either way).
const RESTRICTION_MONOTONE: &[&str] = &["beam", "cluster", "pipeline"];

fn problem(seed: u64, domain: Domain) -> MatchProblem {
    let sc = Scenario::generate(ScenarioConfig {
        domain,
        derived_schemas: 5,
        noise_schemas: 5,
        personal_nodes: 4,
        host_nodes: 8,
        perturbation_strength: 0.6,
        seed,
    });
    MatchProblem::new(sc.personal, sc.repository).unwrap()
}

fn generator(budget: usize) -> CandidateGenerator {
    CandidateGenerator::new(
        ObjectiveFunction::default(),
        CandidateConfig {
            budget: Some(budget),
        },
    )
}

/// Fraction of `reference`'s answers retained by `kept`.
fn measured_recall(kept: &smx_eval::AnswerSet, reference: &smx_eval::AnswerSet) -> f64 {
    if reference.is_empty() {
        1.0
    } else {
        let retained = kept
            .ids()
            .filter(|&id| reference.score_of(id).is_some())
            .count();
        retained as f64 / reference.len() as f64
    }
}

fn assert_bookkeeping(name: &str, budget: usize, certified: &CertifiedAnswer) {
    let c = &certified.certificate;
    let cert = c.certified_recall();
    assert!(
        (0.0..=1.0).contains(&cert),
        "{name} budget {budget}: certified recall {cert} out of range"
    );
    assert_eq!(c.answer_count(), certified.answers.len(), "{name}");
    assert!(c.missed_cap() >= 0.0, "{name}");
    assert!(
        c.active_schemas() + c.cert_empty_schemas() <= c.total_schemas(),
        "{name}"
    );
    assert_eq!(c.delta_max(), DELTA_MAX, "{name}");
}

#[test]
fn complete_matchers_certify_recall_against_the_oracle() {
    for (seed, domain) in [(51, Domain::Publications), (52, Domain::Commerce)] {
        let problem = problem(seed, domain);
        let registry = MappingRegistry::new();
        let oracle = ExhaustiveMatcher::default().run(&problem, DELTA_MAX, &registry);
        for budget in BUDGETS {
            let complete = all_matchers()
                .into_iter()
                .filter(|(name, _)| complete_matcher_names().contains(name));
            for (name, matcher) in complete {
                let certified = CertifiedMatcher::new(matcher, generator(budget))
                    .run_certified(&problem, DELTA_MAX, &registry);
                certified
                    .answers
                    .is_subset_of(&oracle)
                    .unwrap_or_else(|e| panic!("{name} budget {budget}: {e:?}"));
                assert!(
                    certified.answers.scores_consistent_with(&oracle),
                    "{name} budget {budget}: ranking drifted"
                );
                let cert = certified.certificate.certified_recall();
                let measured = measured_recall(&certified.answers, &oracle);
                assert!(
                    cert <= measured + 1e-12,
                    "{name} budget {budget}: certified {cert} > measured-vs-oracle {measured}"
                );
                assert_bookkeeping(name, budget, &certified);
            }
        }
    }
}

#[test]
fn restriction_monotone_matchers_certify_against_their_own_run() {
    for (seed, domain) in [(53, Domain::Travel), (54, Domain::HumanResources)] {
        let problem = problem(seed, domain);
        let registry = MappingRegistry::new();
        let oracle = ExhaustiveMatcher::default().run(&problem, DELTA_MAX, &registry);
        for budget in BUDGETS {
            let monotone = all_matchers()
                .into_iter()
                .filter(|(name, _)| RESTRICTION_MONOTONE.contains(name));
            for (name, matcher) in monotone {
                let unrestricted = matcher.run(&problem, DELTA_MAX, &registry);
                unrestricted
                    .is_subset_of(&oracle)
                    .unwrap_or_else(|e| panic!("{name}: heuristic ⊄ oracle: {e:?}"));
                let certified = CertifiedMatcher::new(matcher, generator(budget))
                    .run_certified(&problem, DELTA_MAX, &registry);
                // Per-schema independence: restricted ⊆ own unrestricted
                // ⊆ oracle, with identical scores throughout.
                certified
                    .answers
                    .is_subset_of(&unrestricted)
                    .unwrap_or_else(|e| panic!("{name} budget {budget}: {e:?}"));
                assert!(
                    certified.answers.scores_consistent_with(&oracle),
                    "{name} budget {budget}: ranking drifted"
                );
                let cert = certified.certificate.certified_recall();
                let measured = measured_recall(&certified.answers, &unrestricted);
                assert!(
                    cert <= measured + 1e-12,
                    "{name} budget {budget}: certified {cert} > measured-vs-own {measured}"
                );
                assert_bookkeeping(name, budget, &certified);
            }
        }
    }
}

#[test]
fn global_budget_matchers_keep_subset_and_wellformedness_only() {
    for (seed, domain) in [(55, Domain::Commerce), (56, Domain::Publications)] {
        let problem = problem(seed, domain);
        let registry = MappingRegistry::new();
        let oracle = ExhaustiveMatcher::default().run(&problem, DELTA_MAX, &registry);
        for budget in BUDGETS {
            let global = all_matchers()
                .into_iter()
                .filter(|(name, _)| *name == "topk");
            for (name, matcher) in global {
                let certified = CertifiedMatcher::new(matcher, generator(budget))
                    .run_certified(&problem, DELTA_MAX, &registry);
                // Even under a shared dynamic budget, every emitted
                // answer is a real oracle answer with the oracle's
                // score — pruning can only promote real answers.
                certified
                    .answers
                    .is_subset_of(&oracle)
                    .unwrap_or_else(|e| panic!("{name} budget {budget}: {e:?}"));
                assert!(
                    certified.answers.scores_consistent_with(&oracle),
                    "{name} budget {budget}: ranking drifted"
                );
                assert_bookkeeping(name, budget, &certified);
            }
        }
    }
}

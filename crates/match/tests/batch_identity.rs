//! Differential suite: the batch matching subsystem must be a pure
//! execution strategy. For every matcher, [`BatchMatcher`] results are
//! bitwise identical — scores always, interned ids too under sequential
//! dispatch — to running each problem alone through the same matcher.
//!
//! The matcher roster and the canonical/bitwise helpers come from
//! [`smx_match::test_support`], shared with the candidate-differential
//! and persistence-chaos suites — so the composed pipeline system is
//! exercised here exactly like the six monolithic matchers.

use smx_eval::AnswerSet;
use smx_match::test_support::{all_matchers, canonical_answers, run_matcher};
use smx_match::{
    BatchMatcher, BatchProblem, ExhaustiveMatcher, MappingRegistry, MatchProblem, Matcher,
    ObjectiveFunction,
};
use smx_repo::Repository;
use smx_synth::{Scenario, ScenarioConfig};
use smx_xml::Schema;

const DELTA_MAX: f64 = 0.45;

fn config(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        derived_schemas: 3,
        noise_schemas: 2,
        personal_nodes: 4,
        host_nodes: 7,
        perturbation_strength: 0.6,
        seed,
        ..Default::default()
    }
}

/// One repository plus one personal schema per seed (same domain, so
/// label vocabularies overlap across the batch — the serving shape).
fn workload(seeds: &[u64]) -> (Vec<Schema>, Repository) {
    let base = Scenario::generate(config(seeds[0]));
    let personals: Vec<Schema> = seeds
        .iter()
        .map(|&seed| Scenario::generate(config(seed)).personal)
        .collect();
    (personals, base.repository)
}

/// The sequential oracle: each personal schema matched alone, in batch
/// order, through a fresh problem against the same repository.
fn sequential_oracle<M: Matcher>(
    matcher: &M,
    personals: &[Schema],
    repository: &Repository,
    registry: &MappingRegistry,
) -> Vec<AnswerSet> {
    personals
        .iter()
        .map(|personal| run_matcher(matcher, personal, repository, DELTA_MAX, registry))
        .collect()
}

#[test]
fn sequential_batch_is_bitwise_identical_for_all_matchers() {
    let (personals, repository) = workload(&[11, 22, 33, 44]);
    for (name, matcher) in all_matchers() {
        // One shared registry, so ids are comparable across runs (the
        // parallel matcher interns in scheduler order, so only a shared
        // registry pins its ids).
        let registry = MappingRegistry::new();
        let expected = sequential_oracle(&matcher, &personals, &repository, &registry);
        let batch = BatchProblem::new(personals.clone(), repository.clone())
            .expect("non-empty personal schemas");
        let got = BatchMatcher::new(matcher).run_batch(&batch, DELTA_MAX, &registry);
        assert_eq!(got.len(), expected.len(), "{name}");
        for (i, (b, s)) in got.iter().zip(&expected).enumerate() {
            assert_eq!(b, s, "{name} problem {i}");
            for (x, y) in b.answers().iter().zip(s.answers()) {
                assert_eq!(x.score.to_bits(), y.score.to_bits(), "{name} problem {i}");
            }
        }
    }
}

#[test]
fn threaded_batch_matches_sequential_mappings_bitwise() {
    let (personals, repository) = workload(&[5, 6, 7, 8, 9, 10]);
    for (name, matcher) in all_matchers() {
        let reg_seq = MappingRegistry::new();
        let expected = sequential_oracle(&matcher, &personals, &repository, &reg_seq);
        let reg_batch = MappingRegistry::new();
        let batch = BatchProblem::new(personals.clone(), repository.clone())
            .expect("non-empty personal schemas");
        // Threaded dispatch may intern in a different order, so compare
        // the registry-independent canonical form.
        let got = BatchMatcher::with_threads(matcher, 4).run_batch(&batch, DELTA_MAX, &reg_batch);
        assert_eq!(got.len(), expected.len(), "{name}");
        for (i, (b, s)) in got.iter().zip(&expected).enumerate() {
            assert_eq!(
                canonical_answers(b, &reg_batch),
                canonical_answers(s, &reg_seq),
                "{name} problem {i}"
            );
        }
    }
}

#[test]
fn empty_batch_yields_no_answer_sets() {
    let (_, repository) = workload(&[11]);
    for (name, matcher) in all_matchers() {
        let batch = BatchProblem::new(Vec::new(), repository.clone()).expect("empty batch ok");
        let registry = MappingRegistry::new();
        let got = BatchMatcher::new(matcher).run_batch(&batch, DELTA_MAX, &registry);
        assert!(got.is_empty(), "{name}");
        assert!(
            registry.is_empty(),
            "{name}: empty batch must intern nothing"
        );
    }
}

#[test]
fn single_problem_batch_equals_solo_run() {
    let (personals, repository) = workload(&[17]);
    for (name, matcher) in all_matchers() {
        let registry = MappingRegistry::new();
        let solo = run_matcher(&matcher, &personals[0], &repository, DELTA_MAX, &registry);
        let batch = BatchProblem::new(vec![personals[0].clone()], repository.clone()).unwrap();
        let got = BatchMatcher::new(matcher).run_batch(&batch, DELTA_MAX, &registry);
        assert_eq!(got.len(), 1, "{name}");
        assert_eq!(got[0], solo, "{name}");
    }
}

#[test]
fn duplicate_schema_batch_repeats_identical_answers() {
    let (personals, repository) = workload(&[23]);
    for (name, matcher) in all_matchers() {
        let registry = MappingRegistry::new();
        let batch = BatchProblem::new(
            vec![
                personals[0].clone(),
                personals[0].clone(),
                personals[0].clone(),
            ],
            repository.clone(),
        )
        .unwrap();
        let batcher = BatchMatcher::new(matcher);
        let got = batcher.run_batch(&batch, DELTA_MAX, &registry);
        assert_eq!(got.len(), 3, "{name}");
        assert_eq!(got[0], got[1], "{name}");
        assert_eq!(got[1], got[2], "{name}");
        // And the duplicates cost nothing at the row level: one distinct
        // label set, one sweep.
        let solo = batcher.inner().run(
            &MatchProblem::new(personals[0].clone(), repository.clone()).unwrap(),
            DELTA_MAX,
            &registry,
        );
        assert_eq!(got[0], solo, "{name}");
    }
}

#[test]
fn batch_prefill_amortises_row_sweeps_across_problems() {
    let (personals, repository) = workload(&[31, 32, 33, 34]);
    repository.clear_score_rows();
    let batch = BatchProblem::new(personals, repository).unwrap();
    let distinct = batch.distinct_labels().len() as u64;
    let store = batch.repository().store();
    let labels = store.len() as u64;
    assert_eq!(store.counters().pair_evals, 0, "workload must start cold");
    batch.build_matrices(&ObjectiveFunction::default());
    let c = store.counters();
    assert_eq!(
        c.pair_evals,
        distinct * labels,
        "batch fill = one kernel sweep per distinct label across the whole batch"
    );
    assert_eq!(c.row_misses, distinct);
    // Pinned fills read the prefetched `Arc`s directly — the per-problem
    // fills are not even lookups, so the only store traffic is the
    // prefetch itself.
    assert_eq!(c.row_lookups, distinct, "fills must not re-look rows up");
    assert_eq!(c.row_hits + c.row_misses, c.row_lookups);
}

#[test]
fn bounded_store_batch_is_identical_to_unbounded() {
    let seeds = [41, 42, 43, 44, 45];
    let (personals, unbounded_repo) = workload(&seeds);
    let (personals_b, bounded_repo) = workload(&seeds); // same seeds ⇒ identical twin
    bounded_repo.store().set_max_cached_rows(Some(2));
    let matcher = ExhaustiveMatcher::default();
    let reg_a = MappingRegistry::new();
    let batch_a = BatchProblem::new(personals, unbounded_repo).unwrap();
    let got_a = BatchMatcher::new(matcher.clone()).run_batch(&batch_a, DELTA_MAX, &reg_a);
    let reg_b = MappingRegistry::new();
    let batch_b = BatchProblem::new(personals_b, bounded_repo).unwrap();
    let got_b = BatchMatcher::new(matcher).run_batch(&batch_b, DELTA_MAX, &reg_b);
    assert_eq!(got_a, got_b, "eviction must never change answers");
    let store = batch_b.repository().store();
    assert!(store.cached_rows() <= 2);
    let c = store.counters();
    assert!(
        c.row_evictions > 0,
        "bound below the batch vocabulary must evict"
    );
    assert_eq!(c.row_hits + c.row_misses, c.row_lookups);
}

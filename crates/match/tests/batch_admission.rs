//! The batch subsystem under memory pressure: an LRU bound below the
//! batch vocabulary must cost recompute at *chunk* granularity only,
//! never correctness and never within-chunk thrash.
//!
//! * Cross-batch row-sharing regression: `build_matrices` fills from
//!   the prefetched `Arc` rows, so a bound smaller than the batch
//!   vocabulary cannot evict a row between prefetch and fill — the
//!   batch still costs exactly one sweep per distinct label.
//! * Batch-aware admission: `run_batch` on a bounded store chunks the
//!   batch so each chunk's vocabulary fits `max_cached_rows`; within a
//!   chunk, `StoreCounters` show zero evictions and zero extra misses
//!   after the chunk's prefill.

use smx_eval::AnswerSet;
use smx_match::{
    BatchMatcher, BatchProblem, ExhaustiveMatcher, Mapping, MappingRegistry, MatchProblem, Matcher,
    ObjectiveFunction,
};
use smx_repo::{Repository, StoreConfig};
use smx_synth::{Scenario, ScenarioConfig};
use smx_xml::Schema;

const DELTA_MAX: f64 = 0.45;

fn scenario(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        derived_schemas: 3,
        noise_schemas: 2,
        personal_nodes: 4,
        host_nodes: 7,
        perturbation_strength: 0.6,
        seed,
        ..Default::default()
    }
}

/// The repository's schemas replayed into a store with `config` — the
/// same repository content under a different cache regime.
fn with_config(repository: &Repository, config: StoreConfig) -> Repository {
    let mut bounded = Repository::with_store_config(config);
    for (_, schema) in repository.iter() {
        bounded.add(schema.clone());
    }
    bounded
}

fn workload(seeds: &[u64]) -> (Vec<Schema>, Repository) {
    let base = Scenario::generate(scenario(seeds[0]));
    let personals: Vec<Schema> = seeds
        .iter()
        .map(|&seed| Scenario::generate(scenario(seed)).personal)
        .collect();
    (personals, base.repository)
}

/// Registry-independent canonical answers: resolved mappings with
/// bitwise score keys, sorted.
fn canonical(answers: &AnswerSet, registry: &MappingRegistry) -> Vec<(Mapping, u64)> {
    let mut out: Vec<(Mapping, u64)> = answers
        .answers()
        .iter()
        .map(|a| (registry.resolve(a.id).expect("interned"), a.score.to_bits()))
        .collect();
    out.sort_by(|x, y| x.0.cmp(&y.0));
    out
}

#[test]
fn pinned_build_matrices_survive_a_bound_below_the_batch_vocabulary() {
    let (personals, repository) = workload(&[41, 42, 43, 44]);
    // Tightest possible cache: every insert beyond the first evicts.
    let bounded = with_config(
        &repository,
        StoreConfig {
            shards: 0,
            max_cached_rows: Some(1),
            batch_threads: 0,
        },
    );
    let batch = BatchProblem::new(personals.clone(), bounded).expect("non-empty schemas");
    let distinct = batch.distinct_labels().len() as u64;
    assert!(
        distinct > 1,
        "workload must overflow the bound for the test to bite"
    );
    let store = batch.repository().store();
    let labels = store.len() as u64;
    batch.build_matrices(&ObjectiveFunction::default());
    let c = store.counters();
    // The regression this guards: before pinned fills, each per-problem
    // fill re-swept rows the prefill had already computed and the LRU
    // had already evicted. Pinned, the batch costs exactly one sweep
    // per distinct label no matter the bound.
    assert_eq!(
        c.pair_evals,
        distinct * labels,
        "prefetched rows must not be re-swept"
    );
    assert_eq!(c.row_misses, distinct);
    assert_eq!(
        c.row_lookups, distinct,
        "fills must read the pinned Arcs, not the store"
    );
    // And the matrices are the same ones an unbounded twin computes.
    let registry = MappingRegistry::new();
    let free = BatchProblem::new(personals, repository).expect("non-empty schemas");
    let matcher = BatchMatcher::new(ExhaustiveMatcher::default());
    let expected = matcher.run_batch(&free, DELTA_MAX, &registry);
    let got = matcher.run_batch(&batch, DELTA_MAX, &registry);
    for (i, (b, s)) in got.iter().zip(&expected).enumerate() {
        assert_eq!(
            canonical(b, &registry),
            canonical(s, &registry),
            "problem {i}"
        );
    }
}

#[test]
fn admission_chunks_cover_the_batch_and_respect_the_bound() {
    let (personals, repository) = workload(&[51, 52, 53, 54, 55, 56]);
    for cap in [1usize, 3, 6, 10, 100] {
        let bounded = with_config(
            &repository,
            StoreConfig {
                shards: 0,
                max_cached_rows: Some(cap),
                batch_threads: 0,
            },
        );
        let batch = BatchProblem::new(personals.clone(), bounded).expect("non-empty schemas");
        let chunks = batch.admission_chunks();
        // Contiguous cover of 0..len, in order.
        let mut expected_start = 0usize;
        for chunk in &chunks {
            assert_eq!(chunk.start, expected_start);
            assert!(chunk.end > chunk.start, "chunks hold at least one problem");
            expected_start = chunk.end;
        }
        assert_eq!(expected_start, batch.len());
        // Each chunk's union vocabulary fits the bound unless it is a
        // single problem that alone exceeds it.
        for chunk in &chunks {
            let vocab: std::collections::HashSet<&str> = batch.problems()[chunk.clone()]
                .iter()
                .flat_map(|p| p.distinct_personal_labels())
                .collect();
            assert!(
                vocab.len() <= cap || chunk.len() == 1,
                "chunk {chunk:?} vocabulary {} exceeds cap {cap}",
                vocab.len()
            );
        }
    }
    // Unbounded stores admit everything at once.
    let batch = BatchProblem::new(personals, repository).expect("non-empty schemas");
    assert_eq!(batch.admission_chunks(), vec![0..batch.len()]);
}

#[test]
fn within_a_chunk_no_evictions_and_no_extra_misses() {
    let (personals, repository) = workload(&[61, 62, 63, 64, 65]);
    let cap = 8;
    let bounded = with_config(
        &repository,
        StoreConfig {
            shards: 0,
            max_cached_rows: Some(cap),
            batch_threads: 0,
        },
    );
    let batch = BatchProblem::new(personals, bounded).expect("non-empty schemas");
    let chunks = batch.admission_chunks();
    assert!(
        chunks.len() > 1,
        "workload must not fit one chunk for the test to bite"
    );
    let store = batch.repository().store();
    let objective = ObjectiveFunction::default();
    for chunk in chunks {
        let served = batch.prefill_chunk(chunk.clone());
        assert!(served <= cap || chunk.len() == 1);
        let after_prefill = store.counters();
        // The chunk's problems match with their rows resident: the LRU
        // may have evicted *previous* chunks' rows during the prefill,
        // but within the chunk nothing is evicted and nothing misses.
        for problem in &batch.problems()[chunk] {
            problem.cost_matrix(&objective);
        }
        let after_fills = store.counters();
        assert_eq!(
            after_fills.row_evictions, after_prefill.row_evictions,
            "evictions within a chunk"
        );
        assert_eq!(
            after_fills.row_misses, after_prefill.row_misses,
            "within-chunk fills must all hit the prefilled rows"
        );
        assert_eq!(after_fills.pair_evals, after_prefill.pair_evals);
    }
}

#[test]
fn bounded_chunked_run_batch_is_bitwise_identical_and_thrash_free() {
    let (personals, repository) = workload(&[71, 72, 73, 74, 75, 76]);
    let registry = MappingRegistry::new();
    let matcher = ExhaustiveMatcher::default();
    let expected: Vec<AnswerSet> = personals
        .iter()
        .map(|personal| {
            let problem = MatchProblem::new(personal.clone(), repository.clone())
                .expect("non-empty personal schema");
            matcher.run(&problem, DELTA_MAX, &registry)
        })
        .collect();
    for cap in [2usize, 5, 9] {
        let bounded = with_config(
            &repository,
            StoreConfig {
                shards: 0,
                max_cached_rows: Some(cap),
                batch_threads: 0,
            },
        );
        let batch = BatchProblem::new(personals.clone(), bounded).expect("non-empty schemas");
        let chunks = batch.admission_chunks();
        let store = batch.repository().store();
        let got =
            BatchMatcher::new(ExhaustiveMatcher::default()).run_batch(&batch, DELTA_MAX, &registry);
        assert_eq!(got.len(), expected.len(), "cap {cap}");
        for (i, (b, s)) in got.iter().zip(&expected).enumerate() {
            assert_eq!(
                canonical(b, &registry),
                canonical(s, &registry),
                "cap {cap} problem {i}"
            );
        }
        // Thrash-free accounting: a chunk misses at most its own
        // vocabulary (prefills can still *hit* rows shared with a
        // resident earlier chunk), never more — the extra misses
        // unchunked admission pays when fills chase evicted rows cannot
        // happen. Every miss is one full-row sweep, no partial rescans.
        let per_chunk: u64 = chunks
            .iter()
            .map(|chunk| {
                batch.problems()[chunk.clone()]
                    .iter()
                    .flat_map(|p| p.distinct_personal_labels())
                    .collect::<std::collections::HashSet<&str>>()
                    .len() as u64
            })
            .sum();
        let total_distinct = batch.distinct_labels().len() as u64;
        let chunks_fit = chunks.iter().all(|chunk| {
            batch.problems()[chunk.clone()]
                .iter()
                .flat_map(|p| p.distinct_personal_labels())
                .collect::<std::collections::HashSet<&str>>()
                .len()
                <= cap
        });
        let c = store.counters();
        if chunks_fit {
            assert!(
                (total_distinct..=per_chunk).contains(&c.row_misses),
                "cap {cap}: {} misses outside [{total_distinct}, {per_chunk}]",
                c.row_misses
            );
        }
        // A cap below a single problem's vocabulary (the documented
        // residual thrash case) still answers correctly — only the
        // miss accounting above is forfeit.
        assert_eq!(c.pair_evals, c.row_misses * store.len() as u64, "cap {cap}");
        assert_eq!(c.row_hits + c.row_misses, c.row_lookups, "cap {cap}");
    }
}

//! Property gate: the recall certificate is *admissible* — it never
//! exceeds the recall actually measured against the exhaustive oracle —
//! for arbitrary generated scenarios, thresholds, and budgets
//! (including 0 and ≥ repository size).
//!
//! Scenario shapes, thresholds, and budgets are drawn from the shared
//! [`smx_synth::strategies`] vocabulary, so this gate and the pipeline
//! algebra gate sample the same input space.

use proptest::prelude::*;
use smx_match::*;
use smx_synth::strategies::{budgets, scenarios, thresholds, MAX_SCENARIO_SCHEMAS};
use smx_synth::{Scenario, ScenarioConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// certified_recall(|A|) ≤ measured recall, across scenario shape,
    /// threshold, and budget.
    #[test]
    fn certificate_never_exceeds_measured_recall(
        sc in scenarios(),
        delta_max in thresholds(),
        budget in budgets(MAX_SCENARIO_SCHEMAS),
    ) {
        let problem = MatchProblem::new(sc.personal, sc.repository).unwrap();
        let registry = MappingRegistry::new();
        let oracle = ExhaustiveMatcher::default().run(&problem, delta_max, &registry);

        let generator = CandidateGenerator::new(
            ObjectiveFunction::default(),
            CandidateConfig { budget },
        );
        let certified = CertifiedMatcher::new(ExhaustiveMatcher::default(), generator)
            .run_certified(&problem, delta_max, &registry);

        // Restricted answers are a score-consistent subset of the oracle.
        certified.answers.is_subset_of(&oracle).expect("restricted ⊆ oracle");
        prop_assert!(certified.answers.scores_consistent_with(&oracle));

        let measured = if oracle.is_empty() {
            1.0
        } else {
            let kept = certified
                .answers
                .ids()
                .filter(|&id| oracle.score_of(id).is_some())
                .count();
            kept as f64 / oracle.len() as f64
        };
        let cert = certified.certificate.certified_recall();
        prop_assert!((0.0..=1.0).contains(&cert));
        prop_assert!(
            cert <= measured + 1e-12,
            "certified {} > measured {} (budget {:?}, δ {})",
            cert, measured, budget, delta_max
        );

        // The certificate's ratio plugs into the bounds machinery.
        let ratio = certified.certificate.ratio_lower_bound();
        prop_assert!(ratio.get() <= measured + 1e-12);
    }

    /// Budget extremes: 0 certifies everything pruned (recall bound 0
    /// unless nothing could match); a budget ≥ repository size caps
    /// nothing and is bitwise loss-free.
    #[test]
    fn budget_extremes_behave(
        seed in 0u64..32,
        delta_max in thresholds(),
    ) {
        let sc = Scenario::generate(ScenarioConfig {
            derived_schemas: 3,
            noise_schemas: 2,
            personal_nodes: 3,
            host_nodes: 6,
            perturbation_strength: 0.6,
            seed,
            ..Default::default()
        });
        let problem = MatchProblem::new(sc.personal, sc.repository).unwrap();
        let registry = MappingRegistry::new();
        let oracle = ExhaustiveMatcher::default().run(&problem, delta_max, &registry);

        // Budget 0: nothing scored; the certificate still may not
        // overstate (1.0 only when every schema was certified empty —
        // and then the oracle must really be empty).
        let zero = CertifiedMatcher::new(
            ExhaustiveMatcher::default(),
            CandidateGenerator::new(
                ObjectiveFunction::default(),
                CandidateConfig { budget: Some(0) },
            ),
        )
        .run_certified(&problem, delta_max, &registry);
        prop_assert!(zero.answers.is_empty());
        if zero.certificate.certified_recall() == 1.0 {
            prop_assert!(oracle.is_empty(), "recall-1 certificate on a non-empty oracle");
        }

        // Budget ≥ n: identical to auto — caps nothing, loses nothing.
        let n = problem.repository().len();
        let full = CertifiedMatcher::new(
            ExhaustiveMatcher::default(),
            CandidateGenerator::new(
                ObjectiveFunction::default(),
                CandidateConfig { budget: Some(n) },
            ),
        )
        .run_certified(&problem, delta_max, &registry);
        prop_assert_eq!(full.certificate.missed_cap(), 0.0);
        prop_assert_eq!(full.certificate.certified_recall(), 1.0);
        prop_assert_eq!(full.answers.len(), oracle.len());
        for ans in oracle.answers() {
            let other = full.answers.score_of(ans.id).expect("answer retained");
            prop_assert_eq!(ans.score.to_bits(), other.to_bits());
        }
    }
}

//! Property gate for the pipeline algebra: across *random* stage
//! compositions, scenario shapes, and thresholds —
//!
//! * `normalize()` preserves answers bitwise and certificates exactly,
//! * the composed certificate stays admissible for a complete terminal
//!   (certified recall ≤ recall measured against the exhaustive
//!   oracle), with truncation budgets explicitly covering `0` and
//!   `≥ repository size`, and
//! * the per-stage factor breakdown telescopes back to the composed
//!   certified recall.
//!
//! Scenario inputs come from the shared [`smx_synth::strategies`]
//! vocabulary, the same space the bound-admissibility gate samples.

use proptest::prelude::*;
use smx_match::test_support::assert_answers_bitwise;
use smx_match::*;
use smx_synth::strategies::{scenarios, thresholds};

/// Truncation budgets a random composition can pick from — the
/// extremes 0 (drop every survivor) and `usize::MAX` (a no-op the
/// rewriter must erase) are always present.
const KEEPS: [usize; 7] = [0, 1, 2, 3, 5, 8, usize::MAX];

/// One randomly drawn filter stage.
#[derive(Clone, Debug)]
enum Spec {
    Size,
    Candidate,
    Truncate(usize),
    Beam(usize),
}

fn specs() -> impl Strategy<Value = Vec<Spec>> {
    proptest::collection::vec(
        prop_oneof![
            Just(Spec::Size),
            Just(Spec::Candidate),
            (0..KEEPS.len()).prop_map(|i| Spec::Truncate(KEEPS[i])),
            (1usize..32).prop_map(Spec::Beam),
        ],
        0..6,
    )
}

fn build(stages: &[Spec]) -> Pipeline {
    let mut builder = Pipeline::builder(ObjectiveFunction::default());
    for spec in stages {
        builder = match spec {
            Spec::Size => builder.size_filter(),
            Spec::Candidate => builder.candidate_filter(),
            Spec::Truncate(keep) => builder.truncate(*keep),
            Spec::Beam(width) => builder.beam_filter(*width),
        };
    }
    builder.refine(ExhaustiveMatcher::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The whole algebra at once: admissibility, rewrite equivalence,
    /// and factor-accounting consistency for one random composition.
    #[test]
    fn random_compositions_stay_admissible_and_normalize_exactly(
        stages in specs(),
        sc in scenarios(),
        delta_max in thresholds(),
    ) {
        let problem = MatchProblem::new(sc.personal, sc.repository).unwrap();
        let registry = MappingRegistry::new();
        let oracle = ExhaustiveMatcher::default().run(&problem, delta_max, &registry);

        let source = build(&stages);
        let run = source.run_certified(&problem, delta_max, &registry);

        // Admissibility: a complete terminal means every loss was
        // charged by some filter stage, so the composed certificate
        // lower-bounds the measured recall vs the exhaustive oracle.
        run.answers
            .is_subset_of(&oracle)
            .unwrap_or_else(|e| panic!("{stages:?}: {e:?}"));
        prop_assert!(run.answers.scores_consistent_with(&oracle));
        let cert = run.certificate.certified_recall();
        prop_assert!((0.0..=1.0).contains(&cert), "{:?}: recall {}", stages, cert);
        let measured = if oracle.is_empty() {
            1.0
        } else {
            let kept = run
                .answers
                .ids()
                .filter(|&id| oracle.score_of(id).is_some())
                .count();
            kept as f64 / oracle.len() as f64
        };
        prop_assert!(
            cert <= measured + 1e-12,
            "{:?}: certified {} > measured {} (δ {})",
            stages, cert, measured, delta_max
        );

        // Factor accounting: the stage chain is contiguous and its
        // telescoping product reproduces the composed recall.
        let reports = run.certificate.stages();
        for pair in reports.windows(2) {
            prop_assert_eq!(pair[0].active_out, pair[1].active_in);
        }
        prop_assert!(
            run.certificate.factor_breakdown().reproduces(cert, 1e-9),
            "{:?}: factor product {} vs recall {}",
            stages,
            run.certificate.factor_breakdown().composed_recall(),
            cert
        );

        // Rewrite equivalence: the normal form answers bitwise
        // identically and pays for exactly the same certificate.
        let normalized = source.normalize();
        prop_assert!(normalized.stage_names().len() <= source.stage_names().len());
        prop_assert_eq!(
            normalized.normalize().stage_names(),
            normalized.stage_names(),
            "normalization must be idempotent for {:?}",
            stages
        );
        let norm_run = normalized.run_certified(&problem, delta_max, &registry);
        assert_answers_bitwise("normalized", &norm_run.answers, &run.answers, &registry);
        assert_answers_bitwise("source", &run.answers, &norm_run.answers, &registry);
        prop_assert_eq!(
            norm_run.certificate.certified_recall().to_bits(),
            cert.to_bits(),
            "{:?}: recall changed under normalization",
            stages
        );
        prop_assert_eq!(
            norm_run
                .certificate
                .certificate()
                .missed_cap()
                .to_bits(),
            run.certificate.certificate().missed_cap().to_bits(),
            "{:?}: caps changed under normalization",
            stages
        );
    }
}

//! Differential gate for the certified candidate tier.
//!
//! With no budget the tier only removes schemas it *certifies* empty,
//! so every matcher — complete or heuristic — must return answers
//! **bitwise identical** (ids, resolved mappings, and `f64::to_bits`
//! scores) to its own unrestricted run. With a finite budget the
//! restricted answers must stay a score-consistent subset of the
//! oracle, and for complete inner matchers the certificate must hold:
//! certified recall ≤ measured recall vs the exhaustive oracle.
//!
//! The roster and the bitwise assertion come from
//! [`smx_match::test_support`], shared with the batch-identity and
//! persistence-chaos suites, so the composed pipeline system faces the
//! same gate as the monolithic matchers.

use smx_match::test_support::{all_matchers, assert_answers_bitwise, complete_matcher_names};
use smx_match::*;
use smx_synth::{Domain, Scenario, ScenarioConfig};

fn problem(seed: u64, domain: Domain) -> MatchProblem {
    let sc = Scenario::generate(ScenarioConfig {
        domain,
        derived_schemas: 5,
        noise_schemas: 5,
        personal_nodes: 4,
        host_nodes: 8,
        perturbation_strength: 0.6,
        seed,
    });
    MatchProblem::new(sc.personal, sc.repository).unwrap()
}

#[test]
fn auto_budget_is_bitwise_identical_for_all_matchers() {
    for (seed, domain) in [
        (11, Domain::Publications),
        (12, Domain::Commerce),
        (13, Domain::Travel),
    ] {
        let problem = problem(seed, domain);
        let registry = MappingRegistry::new();
        let delta_max = 0.4;
        let generator = CandidateGenerator::auto(ObjectiveFunction::default());
        let candidates = generator.generate(&problem, delta_max);
        // Auto budget keeps every non-certified-empty schema: exact tier.
        assert_eq!(candidates.caps_sum(), 0.0);
        assert_eq!(candidates.certified_recall(0), 1.0);
        let restricted = problem.with_candidates(&candidates);
        for (name, matcher) in all_matchers() {
            let oracle = matcher.run(&problem, delta_max, &registry);
            let tiered = matcher.run(&restricted, delta_max, &registry);
            assert_answers_bitwise(name, &oracle, &tiered, &registry);
            assert_answers_bitwise(name, &tiered, &oracle, &registry);
        }
    }
}

#[test]
fn budget_at_least_repo_size_is_bitwise_identical() {
    let problem = problem(21, Domain::Publications);
    let registry = MappingRegistry::new();
    let delta_max = 0.4;
    let generator = CandidateGenerator::new(
        ObjectiveFunction::default(),
        CandidateConfig {
            budget: Some(problem.repository().len()),
        },
    );
    let candidates = generator.generate(&problem, delta_max);
    assert_eq!(candidates.caps_sum(), 0.0, "budget ≥ n caps nothing");
    let restricted = problem.with_candidates(&candidates);
    for (name, matcher) in all_matchers() {
        let oracle = matcher.run(&problem, delta_max, &registry);
        let tiered = matcher.run(&restricted, delta_max, &registry);
        assert_answers_bitwise(name, &oracle, &tiered, &registry);
    }
}

#[test]
fn finite_budgets_stay_score_consistent_subsets() {
    for (seed, domain) in [(31, Domain::Commerce), (32, Domain::Travel)] {
        let problem = problem(seed, domain);
        let registry = MappingRegistry::new();
        let delta_max = 0.4;
        let oracle = ExhaustiveMatcher::default().run(&problem, delta_max, &registry);
        for budget in [0, 1, 3, 7] {
            let generator = CandidateGenerator::new(
                ObjectiveFunction::default(),
                CandidateConfig {
                    budget: Some(budget),
                },
            );
            let candidates = generator.generate(&problem, delta_max);
            let restricted = problem.with_candidates(&candidates);
            for (name, matcher) in all_matchers() {
                let tiered = matcher.run(&restricted, delta_max, &registry);
                tiered
                    .is_subset_of(&oracle)
                    .unwrap_or_else(|e| panic!("{name} budget {budget}: {e:?}"));
                assert!(
                    tiered.scores_consistent_with(&oracle),
                    "{name} budget {budget}: scores drifted"
                );
            }
        }
    }
}

#[test]
fn certificate_holds_for_complete_matchers_under_pruning() {
    for (seed, domain) in [
        (41, Domain::Publications),
        (42, Domain::Commerce),
        (43, Domain::Travel),
    ] {
        let problem = problem(seed, domain);
        let registry = MappingRegistry::new();
        let delta_max = 0.4;
        let oracle = ExhaustiveMatcher::default().run(&problem, delta_max, &registry);
        for budget in [0, 1, 2, 4, 8, 64] {
            let generator = CandidateGenerator::new(
                ObjectiveFunction::default(),
                CandidateConfig {
                    budget: Some(budget),
                },
            );
            let complete = all_matchers()
                .into_iter()
                .filter(|(name, _)| complete_matcher_names().contains(name));
            for (name, matcher) in complete {
                let certified = CertifiedMatcher::new(matcher, generator.clone())
                    .run_certified(&problem, delta_max, &registry);
                let measured = if oracle.is_empty() {
                    1.0
                } else {
                    let kept = certified
                        .answers
                        .ids()
                        .filter(|&id| oracle.score_of(id).is_some())
                        .count();
                    kept as f64 / oracle.len() as f64
                };
                let cert = certified.certificate.certified_recall();
                assert!(
                    cert <= measured + 1e-12,
                    "{domain:?} {name} budget {budget}: certified {cert} > measured {measured}"
                );
                assert!((0.0..=1.0).contains(&cert));
                // The certificate's bookkeeping is internally consistent.
                let c = &certified.certificate;
                assert_eq!(c.answer_count(), certified.answers.len());
                assert!(c.active_schemas() + c.cert_empty_schemas() <= c.total_schemas());
                assert_eq!(c.delta_max(), delta_max);
            }
        }
    }
}

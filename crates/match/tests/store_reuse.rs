//! Repeated `MatchProblem`s against one `Repository` must reuse the
//! repository's label score store: label profiles are built at ingest
//! only, and a repeat query refills its cost matrix without a single new
//! pair evaluation. The store's work counters make both claims testable.

use smx_match::{ExhaustiveMatcher, MappingRegistry, MatchProblem, Matcher, ObjectiveFunction};
use smx_synth::{Scenario, ScenarioConfig};

fn scenario() -> Scenario {
    Scenario::generate(ScenarioConfig {
        derived_schemas: 4,
        noise_schemas: 3,
        personal_nodes: 4,
        host_nodes: 7,
        perturbation_strength: 0.6,
        seed: 42,
        ..Default::default()
    })
}

#[test]
fn repeated_problems_share_all_label_level_work() {
    let sc = scenario();
    let repository = sc.repository;
    let store_labels = repository.store().len() as u64;
    let profile_builds = repository.store().profile_builds();
    assert_eq!(profile_builds, store_labels, "profiles are built once per distinct label");
    assert_eq!(repository.store().pair_evals(), 0, "ingest must not score pairs");

    let objective = ObjectiveFunction::default();

    // First problem: the cold fill sweeps one row per distinct personal
    // label.
    let p1 = MatchProblem::new(sc.personal.clone(), repository.clone()).unwrap();
    p1.cost_matrix(&objective);
    let distinct_personal: u64 = {
        let personal = p1.personal();
        let mut names: Vec<&str> =
            personal.node_ids().map(|id| personal.node(id).name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        names.len() as u64
    };
    let cold_evals = repository.store().pair_evals();
    assert_eq!(
        cold_evals,
        distinct_personal * store_labels,
        "cold fill = one kernel sweep per distinct personal label"
    );

    // Second problem against the same repository: the matrix refills from
    // cached rows — zero pair evaluations, zero profile builds.
    let p2 = MatchProblem::new(sc.personal.clone(), repository.clone()).unwrap();
    p2.cost_matrix(&objective);
    assert_eq!(repository.store().pair_evals(), cold_evals, "repeat query evaluated pairs");
    assert_eq!(repository.store().profile_builds(), profile_builds);

    // And the reuse is invisible to scores: both problems' matchers
    // produce identical answer sets.
    let registry = MappingRegistry::new();
    let a1 = ExhaustiveMatcher::default().run(&p1, 0.4, &registry);
    let a2 = ExhaustiveMatcher::default().run(&p2, 0.4, &registry);
    assert_eq!(a1, a2);
    assert!(!a1.is_empty());
}

#[test]
fn cleared_rows_recompute_to_identical_values() {
    let sc = scenario();
    let repository = sc.repository;
    let objective = ObjectiveFunction::default();
    let p1 = MatchProblem::new(sc.personal.clone(), repository.clone()).unwrap();
    let warm = p1.cost_matrix(&objective);
    let warm_evals = repository.store().pair_evals();

    repository.clear_score_rows();
    let p2 = MatchProblem::new(sc.personal.clone(), repository.clone()).unwrap();
    let cold = p2.cost_matrix(&objective);
    assert!(
        repository.store().pair_evals() > warm_evals,
        "cleared store must re-sweep"
    );
    for (sid, schema) in p2.repository().iter() {
        let (a, b) = (warm.table(sid), cold.table(sid));
        for level in 0..p2.personal_size() {
            for node in 0..schema.len() {
                assert_eq!(a.cost(level, node).to_bits(), b.cost(level, node).to_bits());
            }
        }
    }
}

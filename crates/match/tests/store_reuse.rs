//! Repeated `MatchProblem`s against one `Repository` must reuse the
//! repository's label score store: label profiles are built at ingest
//! only, and a repeat query refills its cost matrix without a single new
//! pair evaluation. The store's work counters make both claims testable —
//! always read through the consistent [`StoreCounters`] snapshot
//! (`store.counters()`), never through individual relaxed atomic loads,
//! so these assertions cannot flake under parallel matchers.

use smx_match::{ExhaustiveMatcher, MappingRegistry, MatchProblem, Matcher, ObjectiveFunction};
use smx_synth::{Scenario, ScenarioConfig};

fn scenario() -> Scenario {
    Scenario::generate(ScenarioConfig {
        derived_schemas: 4,
        noise_schemas: 3,
        personal_nodes: 4,
        host_nodes: 7,
        perturbation_strength: 0.6,
        seed: 42,
        ..Default::default()
    })
}

#[test]
fn repeated_problems_share_all_label_level_work() {
    let sc = scenario();
    let repository = sc.repository;
    let store_labels = repository.store().len() as u64;
    let ingest = repository.store().counters();
    assert_eq!(
        ingest.profile_builds, store_labels,
        "profiles are built once per distinct label"
    );
    assert_eq!(ingest.pair_evals, 0, "ingest must not score pairs");
    assert_eq!(ingest.row_lookups, 0);

    let objective = ObjectiveFunction::default();

    // First problem: the cold fill sweeps one row per distinct personal
    // label.
    let p1 = MatchProblem::new(sc.personal.clone(), repository.clone()).unwrap();
    p1.cost_matrix(&objective);
    let distinct_personal = p1.distinct_personal_labels().len() as u64;
    let cold = repository.store().counters();
    assert_eq!(
        cold.pair_evals,
        distinct_personal * store_labels,
        "cold fill = one kernel sweep per distinct personal label"
    );
    assert_eq!(cold.row_misses, distinct_personal);
    assert_eq!(cold.row_hits + cold.row_misses, cold.row_lookups);

    // Second problem against the same repository: the matrix refills from
    // cached rows — zero pair evaluations, zero profile builds, all hits.
    let p2 = MatchProblem::new(sc.personal.clone(), repository.clone()).unwrap();
    p2.cost_matrix(&objective);
    let warm = repository.store().counters();
    assert_eq!(
        warm.pair_evals, cold.pair_evals,
        "repeat query evaluated pairs"
    );
    assert_eq!(warm.profile_builds, cold.profile_builds);
    assert_eq!(warm.row_hits, cold.row_hits + distinct_personal);
    assert_eq!(warm.row_misses, cold.row_misses);
    assert_eq!(warm.row_hits + warm.row_misses, warm.row_lookups);
    assert_eq!(warm.row_evictions, 0, "unbounded store never evicts");

    // And the reuse is invisible to scores: both problems' matchers
    // produce identical answer sets.
    let registry = MappingRegistry::new();
    let a1 = ExhaustiveMatcher::default().run(&p1, 0.4, &registry);
    let a2 = ExhaustiveMatcher::default().run(&p2, 0.4, &registry);
    assert_eq!(a1, a2);
    assert!(!a1.is_empty());
}

#[test]
fn cleared_rows_recompute_to_identical_values() {
    let sc = scenario();
    let repository = sc.repository;
    let objective = ObjectiveFunction::default();
    let p1 = MatchProblem::new(sc.personal.clone(), repository.clone()).unwrap();
    let warm = p1.cost_matrix(&objective);
    let warm_evals = repository.store().counters().pair_evals;

    repository.clear_score_rows();
    let p2 = MatchProblem::new(sc.personal.clone(), repository.clone()).unwrap();
    let cold = p2.cost_matrix(&objective);
    assert!(
        repository.store().counters().pair_evals > warm_evals,
        "cleared store must re-sweep"
    );
    for (sid, schema) in p2.repository().iter() {
        let (a, b) = (warm.table(sid), cold.table(sid));
        for level in 0..p2.personal_size() {
            for node in 0..schema.len() {
                assert_eq!(a.cost(level, node).to_bits(), b.cost(level, node).to_bits());
            }
        }
    }
}

/// The zero-new-pairs guarantee, adapted for eviction: with the LRU
/// bound below the query vocabulary, a repeat problem *does* re-sweep
/// the evicted rows — but the recomputation is bitwise invisible to
/// answers, and the cache honours its bound throughout.
#[test]
fn bounded_store_recomputes_evicted_rows_without_changing_answers() {
    // Unbounded oracle: same scenario seed ⇒ bitwise-identical twin.
    let sc_oracle = scenario();
    let oracle_problem =
        MatchProblem::new(sc_oracle.personal.clone(), sc_oracle.repository.clone()).unwrap();
    let oracle_registry = MappingRegistry::new();
    let want = ExhaustiveMatcher::default().run(&oracle_problem, 0.4, &oracle_registry);

    let sc = scenario();
    let repository = sc.repository;
    repository.store().set_max_cached_rows(Some(1));
    let distinct_personal = {
        let p = MatchProblem::new(sc.personal.clone(), repository.clone()).unwrap();
        p.distinct_personal_labels().len()
    };
    assert!(
        distinct_personal > 1,
        "scenario must exceed the bound for this test to bite"
    );

    let registry = MappingRegistry::new();
    let p1 = MatchProblem::new(sc.personal.clone(), repository.clone()).unwrap();
    let a1 = ExhaustiveMatcher::default().run(&p1, 0.4, &registry);
    let after_first = repository.store().counters();
    assert!(
        after_first.row_evictions > 0,
        "bound below the vocabulary must evict"
    );

    let p2 = MatchProblem::new(sc.personal.clone(), repository.clone()).unwrap();
    let a2 = ExhaustiveMatcher::default().run(&p2, 0.4, &registry);
    let after_second = repository.store().counters();
    assert!(
        after_second.pair_evals > after_first.pair_evals,
        "the repeat problem must re-sweep evicted rows"
    );
    assert!(repository.store().cached_rows() <= 1);
    assert_eq!(
        after_second.row_hits + after_second.row_misses,
        after_second.row_lookups
    );

    // Eviction is invisible to results: repeat run and unbounded oracle
    // agree (fresh registries intern in the same deterministic order, so
    // even ids align).
    assert_eq!(a1, a2);
    assert_eq!(a1, want);
    assert!(!a1.is_empty());
}

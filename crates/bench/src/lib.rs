//! Shared harness code for the figure-regeneration binaries and the
//! criterion benches.
//!
//! Every evaluation-bearing figure of the paper has one binary under
//! `src/bin/` (see DESIGN.md's experiment index). They all print aligned
//! text tables plus CSV lines, so series can be diffed and re-plotted.

use smx::pipeline::Experiment;
use smx::synth::ScenarioConfig;

/// The default scenario every figure binary uses unless stated otherwise:
/// a 5-element personal schema against 30 repository schemas (18 with a
/// grafted perturbed copy, 12 pure noise), δ_max = 0.45, seed 42.
pub fn standard_config() -> ScenarioConfig {
    ScenarioConfig {
        derived_schemas: 30,
        noise_schemas: 12,
        personal_nodes: 5,
        host_nodes: 10,
        // Strong perturbation spreads the correct mappings' scores across
        // the whole δ range, so recall climbs gradually along the sweep —
        // the regime the paper's Figures 5/11 show.
        perturbation_strength: 0.9,
        seed: 42,
        ..Default::default()
    }
}

/// The δ_max all standard runs search up to.
pub const STANDARD_DELTA_MAX: f64 = 0.25;

/// Number of grid points for measured curves.
pub const GRID_POINTS: usize = 20;

/// Build the standard experiment.
pub fn standard_experiment() -> Experiment {
    Experiment::generate(standard_config(), STANDARD_DELTA_MAX)
}

/// Print a table: a header row then rows of same-width columns, followed
/// by a CSV block for machine consumption.
pub fn print_series(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("== {title} ==");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, String::len))
                .max()
                .unwrap_or(0)
                .max(h.len())
        })
        .collect();
    let fmt_row = |cells: Vec<String>| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(headers.iter().map(|s| s.to_string()).collect())
    );
    for row in rows {
        println!("{}", fmt_row(row.clone()));
    }
    println!("-- csv --");
    println!("{}", headers.join(","));
    for row in rows {
        println!("{}", row.join(","));
    }
    println!();
}

/// Format a float with 4 decimals for table cells.
pub fn f(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_experiment_builds() {
        let exp = standard_experiment();
        assert!(!exp.truth.is_empty());
        assert_eq!(exp.scenario.repository.len(), 42);
    }

    #[test]
    fn print_series_does_not_panic() {
        print_series(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3.5".into(), "x".into()]],
        );
        assert_eq!(f(0.25), "0.2500");
    }
}

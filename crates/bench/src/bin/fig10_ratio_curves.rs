//! Figure 10: measured answer-size-ratio curves Â(δ) for the two real S2
//! improvements.
//!
//! * S2-one — beam search: ratio declines smoothly with δ (the beam keeps
//!   the head of the ranking and loses ever more of the tail);
//! * S2-two — cluster-restricted search: whole score bands disappear, so
//!   the ratio drops to a plateau (the paper: "of the answers with a score
//!   higher than 0.13, only about 25–30% is retained").

use smx::bounds::ratio_curve_between;
use smx_bench::{f, print_series, standard_experiment, GRID_POINTS};

fn main() {
    let exp = standard_experiment();
    let s1 = exp.run_s1();
    let s2_one = exp.run_s2_beam(60);
    let s2_two = exp.run_s2_cluster(0.55, 4);
    let grid = exp.rank_grid(&s1, GRID_POINTS);

    let one = ratio_curve_between(&s2_one, &s1, &grid).expect("beam ⊆ S1");
    let two = ratio_curve_between(&s2_two, &s1, &grid).expect("cluster ⊆ S1");

    println!(
        "S1: {} answers; S2-one (beam): {}; S2-two (cluster): {}",
        s1.len(),
        s2_one.len(),
        s2_two.len()
    );
    let rows: Vec<Vec<String>> = grid
        .iter()
        .map(|&t| {
            vec![
                f(t),
                s1.count_at(t).to_string(),
                s2_one.count_at(t).to_string(),
                f(one.at(t).expect("on grid").get()),
                s2_two.count_at(t).to_string(),
                f(two.at(t).expect("on grid").get()),
            ]
        })
        .collect();
    print_series(
        "Figure 10: answer size ratio vs threshold",
        &[
            "delta",
            "A_s1",
            "A_s2one",
            "ratio_s2one",
            "A_s2two",
            "ratio_s2two",
        ],
        &rows,
    );
    println!(
        "mean ratio S2-one = {}  S2-two = {}",
        f(one.mean()),
        f(two.mean())
    );
}

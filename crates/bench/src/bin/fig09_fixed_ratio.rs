//! Figure 9: best/worst-case P/R envelope for a hypothetical improvement
//! with a fixed answer-size ratio Â = 0.9 at every threshold.
//!
//! The series shows the paper's qualitative shape: the envelope hugs S1's
//! curve (Â is close to 1) and the worst case degrades faster at higher
//! recall.

use smx::bounds::{BoundsEnvelope, SizeRatio};
use smx_bench::{f, print_series, standard_experiment, GRID_POINTS};

fn main() {
    let exp = standard_experiment();
    let s1 = exp.run_s1();
    let s1_curve = exp
        .measured_curve(&s1, GRID_POINTS)
        .expect("non-empty truth and grid");
    let ratio = SizeRatio::new(0.9).expect("0.9 in range");
    let env = BoundsEnvelope::fixed_ratio(&s1_curve, ratio).expect("consistent grid");

    let rows: Vec<Vec<String>> = env
        .points()
        .iter()
        .map(|p| {
            vec![
                f(p.threshold),
                f(p.s1.recall),
                f(p.s1.precision),
                f(p.incremental.best.recall),
                f(p.incremental.best.precision),
                f(p.incremental.worst.recall),
                f(p.incremental.worst.precision),
            ]
        })
        .collect();
    print_series(
        "Figure 9: envelope at fixed ratio 0.9",
        &[
            "delta", "R_s1", "P_s1", "R_best", "P_best", "R_worst", "P_worst",
        ],
        &rows,
    );
    let (dp, dr) = env.max_guaranteed_loss();
    println!(
        "max guaranteed loss vs S1: precision {} recall {}",
        f(dp),
        f(dr)
    );
}

//! Figure 8: the incremental worst-case estimation example, with the
//! paper's literal numbers.
//!
//! S1 (known from "literature"): stable precision 3/8 at both thresholds;
//! 40 answers at δ1 and 72 at δ2 (|H| = 100). The improved S2 produces 32
//! and 48. The naive worst case at δ2 is 1/16; the incremental procedure
//! tightens it to 7/48.

use smx::bounds::incremental_bounds;
use smx::eval::{Counts, PrCurve};
use smx_bench::{f, print_series};

fn main() {
    let s1_curve = PrCurve::from_counts(
        100,
        [(0.1, Counts::new(40, 15)), (0.2, Counts::new(72, 27))],
    )
    .expect("valid literal counts");
    let s2_sizes = [32usize, 48];
    let bounds = incremental_bounds(&s1_curve, &s2_sizes).expect("consistent sizes");

    let rows: Vec<Vec<String>> = bounds
        .points()
        .iter()
        .map(|p| {
            vec![
                f(p.threshold),
                p.s1.answers.to_string(),
                p.s1.correct.to_string(),
                p.a2.to_string(),
                f(p.naive.worst.precision),
                f(p.incremental.worst.precision),
                format!("{}..{}", p.t2_range.0, p.t2_range.1),
            ]
        })
        .collect();
    print_series(
        "Figure 8: naive vs incremental worst-case precision",
        &[
            "delta",
            "A1",
            "T1",
            "A2",
            "naive_worst_P",
            "incremental_worst_P",
            "T2_range",
        ],
        &rows,
    );

    let d1 = bounds.point_at(0.1).expect("on grid");
    let d2 = bounds.point_at(0.2).expect("on grid");
    println!("paper check: P(δ1) worst = 7/32 = {}", f(7.0 / 32.0));
    println!("  computed naive       = {}", f(d1.naive.worst.precision));
    println!("paper check: P(δ2) naive worst = 1/16 = {}", f(1.0 / 16.0));
    println!("  computed naive       = {}", f(d2.naive.worst.precision));
    println!("paper check: P(δ2) incremental = 7/48 = {}", f(7.0 / 48.0));
    println!(
        "  computed incremental = {}",
        f(d2.incremental.worst.precision)
    );
    assert!((d1.naive.worst.precision - 7.0 / 32.0).abs() < 1e-12);
    assert!((d2.naive.worst.precision - 1.0 / 16.0).abs() < 1e-12);
    assert!((d2.incremental.worst.precision - 7.0 / 48.0).abs() < 1e-12);
    println!("all three literal values reproduced exactly.");
}

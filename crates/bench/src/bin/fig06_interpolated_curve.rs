//! Figure 6: the 11-point interpolated P/R curve derived from Figure 5's
//! measured curve (standard max-interpolation at recall 0, 0.1, …, 1).

use smx::eval::InterpolatedCurve;
use smx_bench::{f, print_series, standard_experiment, GRID_POINTS};

fn main() {
    let exp = standard_experiment();
    let s1 = exp.run_s1();
    let measured = exp
        .measured_curve(&s1, GRID_POINTS)
        .expect("non-empty truth and grid");
    let interpolated = InterpolatedCurve::eleven_point(&measured);

    let rows: Vec<Vec<String>> = interpolated
        .points()
        .iter()
        .map(|&(r, p)| vec![f(r), f(p)])
        .collect();
    print_series(
        "Figure 6: S1 interpolated (11-point) P/R curve",
        &["recall_level", "precision"],
        &rows,
    );
    println!(
        "11-point mean average precision: {}",
        f(interpolated.mean_average_precision())
    );
}

//! Figure 12: bounds computed from the *interpolated* S1 curve with a
//! guessed |H| (the paper uses 15000), plus the |H|-sensitivity sweep the
//! paper's §4.1 calls for ("we suspect a rough estimate suffices").

use smx::bounds::{h_sensitivity_sweep, measured_from_interpolated, BoundsEnvelope, SizeRatio};
use smx::eval::InterpolatedCurve;
use smx_bench::{f, print_series, standard_experiment, GRID_POINTS};

fn main() {
    let exp = standard_experiment();
    let s1 = exp.run_s1();
    let measured = exp
        .measured_curve(&s1, GRID_POINTS)
        .expect("non-empty truth and grid");
    let interpolated = InterpolatedCurve::eleven_point(&measured);
    let ratio = SizeRatio::new(0.9).expect("0.9 in range");

    // The paper's headline reconstruction: guess |H| = 15000.
    let assumed_h = 15_000;
    let rebuilt =
        measured_from_interpolated(&interpolated, assumed_h).expect("reconstructible curve");
    let env = BoundsEnvelope::fixed_ratio(&rebuilt, ratio).expect("consistent grid");
    let rows: Vec<Vec<String>> = env
        .points()
        .iter()
        .map(|p| {
            vec![
                f(p.s1.recall),
                f(p.s1.precision),
                f(p.incremental.best.recall),
                f(p.incremental.best.precision),
                f(p.incremental.worst.recall),
                f(p.incremental.worst.precision),
                f(p.random.recall),
                f(p.random.precision),
            ]
        })
        .collect();
    print_series(
        &format!("Figure 12: envelope from interpolated curve, |H| = {assumed_h}, ratio 0.9"),
        &[
            "R_s1", "P_s1", "R_best", "P_best", "R_worst", "P_worst", "R_rand", "P_rand",
        ],
        &rows,
    );

    // Sensitivity: how much do the worst-case bounds move when the |H|
    // guess is off by up to two orders of magnitude?
    let truth = exp.truth.len();
    let guesses = [truth, truth * 10, truth * 100, 15_000, 150_000];
    let sweep = h_sensitivity_sweep(&interpolated, &guesses, ratio).expect("reconstructible");
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|(h, env)| {
            let worst_p: Vec<String> = env
                .points()
                .iter()
                .map(|p| f(p.incremental.worst.precision))
                .collect();
            vec![h.to_string(), env.len().to_string(), worst_p.join(" ")]
        })
        .collect();
    print_series(
        "Figure 12 (sweep): worst-case precision per grid point vs assumed |H|",
        &["assumed_H", "points", "worst_precision_series"],
        &rows,
    );
    println!(
        "true |H| of this scenario = {truth}; the series above drift only \
         by rounding, confirming §4.1's suspicion that a rough |H| suffices."
    );
}

//! Figure 5: the measured P/R curve of the exhaustive system S1.
//!
//! Runs S1 on the standard scenario, sweeps the threshold over a grid of
//! its own score values, and prints `(δ, |A|, |T|, recall, precision)` —
//! the series behind the paper's Figure 5 scatter.

use smx_bench::{f, print_series, standard_experiment, GRID_POINTS};

fn main() {
    let exp = standard_experiment();
    let s1 = exp.run_s1();
    let curve = exp
        .measured_curve(&s1, GRID_POINTS)
        .expect("non-empty truth and grid");

    println!(
        "scenario: |H| = {}, repository = {} schemas, S1 answers at δ_max = {}",
        exp.truth.len(),
        exp.scenario.repository.len(),
        s1.len()
    );
    let rows: Vec<Vec<String>> = curve
        .points()
        .iter()
        .map(|p| {
            vec![
                f(p.threshold),
                p.counts.answers.to_string(),
                p.counts.correct.to_string(),
                f(p.recall),
                f(p.precision),
            ]
        })
        .collect();
    print_series(
        "Figure 5: S1 measured P/R curve",
        &["delta", "answers", "correct", "recall", "precision"],
        &rows,
    );
}

//! Figure 13: sub-increment interpolation boundaries, with the paper's
//! literal numbers — |H| = 100, anchors (δ1: 50 answers / 30 correct) and
//! (δ2: 70 / 36) — sweeping every intermediate answer count 50..=70.
//!
//! Each row is one of the paper's thick bound segments: worst endpoint,
//! best endpoint, and the mid-point (the safest interpolation choice).

use smx::bounds::{midpoint_rule, sub_increment_bounds, sub_increment_sweep};
use smx::eval::Counts;
use smx_bench::{f, print_series};

fn main() {
    let anchor1 = Counts::new(50, 30);
    let anchor2 = Counts::new(70, 36);
    let truth = 100;

    let sweep = sub_increment_sweep(anchor1, anchor2, truth).expect("valid anchors");
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|seg| {
            let mid = seg.midpoint();
            vec![
                seg.answers.to_string(),
                format!("{}..{}", seg.t_range.0, seg.t_range.1),
                f(seg.worst.0),
                f(seg.worst.1),
                f(seg.best.0),
                f(seg.best.1),
                f(mid.0),
                f(mid.1),
            ]
        })
        .collect();
    print_series(
        "Figure 13: sub-increment bound segments (|H|=100, anchors 30/50 and 36/70)",
        &[
            "A'", "T_range", "R_worst", "P_worst", "R_best", "P_best", "R_mid", "P_mid",
        ],
        &rows,
    );

    // The paper's worked δ′ with 54 answers.
    let seg = sub_increment_bounds(anchor1, anchor2, truth, 54).expect("54 within anchors");
    println!("paper check, A' = 54:");
    println!(
        "  worst = ({}, {})  expected (30/100, 30/54) = ({}, {})",
        f(seg.worst.0),
        f(seg.worst.1),
        f(0.30),
        f(30.0 / 54.0)
    );
    println!(
        "  best  = ({}, {})  expected (34/100, 34/54) = ({}, {})",
        f(seg.best.0),
        f(seg.best.1),
        f(0.34),
        f(34.0 / 54.0)
    );
    assert!((seg.worst.1 - 30.0 / 54.0).abs() < 1e-12);
    assert!((seg.best.1 - 34.0 / 54.0).abs() < 1e-12);

    // Mid-point rule vs naive linear interpolation (the paper: "not the
    // same as linear interpolation").
    let mids = midpoint_rule(anchor1, anchor2, truth).expect("valid anchors");
    let lin = |a_prime: f64| {
        let t = (a_prime - 50.0) / 20.0;
        (0.30 + t * 0.06, 0.60 + t * (36.0 / 70.0 - 0.60))
    };
    let rows: Vec<Vec<String>> = mids
        .iter()
        .enumerate()
        .step_by(5)
        .map(|(i, &(r, p))| {
            let (lr, lp) = lin(50.0 + i as f64);
            vec![(50 + i).to_string(), f(r), f(p), f(lr), f(lp)]
        })
        .collect();
    print_series(
        "Figure 13 (rule): mid-point rule vs linear interpolation",
        &["A'", "R_mid", "P_mid", "R_linear", "P_linear"],
        &rows,
    );
    println!("literal segment endpoints reproduced exactly.");
}

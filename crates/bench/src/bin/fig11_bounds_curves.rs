//! Figure 11: best/worst/random P/R envelopes for the two real
//! improvements S2-one (beam) and S2-two (cluster-restricted).
//!
//! Since the scenario generator knows the ground truth, this binary also
//! prints the *actual* P/R of each S2 — which the paper could not know —
//! and verifies it lies inside the computed envelope at every threshold.

use smx::eval::AnswerSet;
use smx::pipeline::Experiment;
use smx_bench::{f, print_series, standard_experiment, GRID_POINTS};

fn report(exp: &Experiment, label: &str, s1_curve: &smx::eval::PrCurve, s2: &AnswerSet) {
    let env = exp.envelope(s1_curve, s2).expect("S2 ⊆ S1");
    let actual = exp
        .curve_on_grid(s2, &s1_curve.thresholds())
        .expect("grid and truth are non-empty");
    let rows: Vec<Vec<String>> = env
        .points()
        .iter()
        .zip(actual.points())
        .map(|(p, a)| {
            vec![
                f(p.threshold),
                f(p.ratio.get()),
                f(p.s1.recall),
                f(p.s1.precision),
                f(p.incremental.best.recall),
                f(p.incremental.best.precision),
                f(p.incremental.worst.recall),
                f(p.incremental.worst.precision),
                f(p.random.recall),
                f(p.random.precision),
                f(a.recall),
                f(a.precision),
            ]
        })
        .collect();
    print_series(
        &format!("Figure 11: envelope for {label}"),
        &[
            "delta", "ratio", "R_s1", "P_s1", "R_best", "P_best", "R_worst", "P_worst", "R_random",
            "P_random", "R_actual", "P_actual",
        ],
        &rows,
    );
    match env.first_violation(&actual, 1e-9) {
        None => println!("containment check: actual P/R inside bounds at every δ ✓"),
        Some(t) => println!("containment VIOLATED at δ = {t} ✗"),
    }
    println!();
}

fn main() {
    let exp = standard_experiment();
    let s1 = exp.run_s1();
    let s1_curve = exp
        .measured_curve(&s1, GRID_POINTS)
        .expect("non-empty truth and grid");
    println!("|H| = {}, S1 answers = {}", exp.truth.len(), s1.len());

    let s2_one = exp.run_s2_beam(60);
    let s2_two = exp.run_s2_cluster(0.55, 4);
    report(&exp, "S2-one (beam width 60)", &s1_curve, &s2_one);
    report(&exp, "S2-two (cluster, 4 fragments)", &s1_curve, &s2_two);
}

//! The efficiency side of the trade-off: wall-clock of S1 vs the
//! non-exhaustive improvements on the same problem. This is the paper's
//! *motivation* — S2 exists because S1 is exponential — so the bench
//! reports both runtimes and answer counts.
//!
//! `s1_exhaustive_direct` is the pre-engine baseline (string similarity
//! recomputed every run, as the seed implementation did);
//! `s1_exhaustive` reads the problem's precomputed `CostMatrix`. Their
//! ratio is the scoring engine's speedup — tracked in
//! `BENCH_matching.json` via `scripts/bench_matching.sh`.
//!
//! The `matrix_fill` group isolates the fill itself from matcher search:
//! `cold` clears the repository's score-row cache every iteration (full
//! row-kernel sweeps), `warm` hits the cache (lookups + type blends
//! only), and `repeat_query` is a complete fresh-`MatchProblem` matcher
//! run against a warm store — the repeated-query path a repository
//! serves in production. `batch` and `sequential32` compare filling 32
//! personal schemas' matrices through the batch subsystem (labels
//! deduped across the batch, one shared sweep) against 32 solo cold
//! fills; `s1_batch_vs_sequential` makes the same comparison for full
//! matcher runs. The `restart` group times coming back up warm: a full
//! schema-replay + row-resweep rebuild vs loading the `smx-persist`
//! snapshot. The `candidate_tier` group extends the repository-size
//! scaling to 64/256/1024 mixed-domain schemas and races the exhaustive
//! matcher against the certified candidate tier (inverted-index
//! pruning, auto budget) on identical cold problems — the headline
//! `relative.candidate_over_exhaustive_1024` ratio comes from it. The
//! `pipeline` group races the composed candidate→beam→exhaustive
//! [`Pipeline`] against the monolithic exhaustive matcher on the same
//! cold 1024-schema repository; the within-run ratio is guarded as
//! `relative.pipeline_over_exhaustive_1024`. The `store_sharded` group
//! races multi-thread warm-hit sweeps over a 16-shard store against an
//! identical single-lock store; its paired ratio is guarded as
//! `relative.sharded_sweep_over_single_lock` on multicore hosts.
//! `SMX_BENCH_XL=1` extends `s1_vs_repository_size` to 10³–10⁵
//! mixed-domain schemas.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smx::matching::{
    BatchMatcher, BatchProblem, BeamMatcher, CandidateGenerator, CertifiedMatcher, ClusterMatcher,
    ExhaustiveMatcher, MappingRegistry, MatchProblem, Matcher, ObjectiveFunction,
    ParallelExhaustiveMatcher, Pipeline, TopKMatcher,
};
use smx::persist::{RecoveryPolicy, Snapshot};
use smx::repo::Repository;
use smx::synth::{Domain, Scenario, ScenarioConfig};
use smx::xml::Schema;
use std::hint::black_box;

fn problem(derived: usize, host_nodes: usize) -> MatchProblem {
    let sc = Scenario::generate(ScenarioConfig {
        derived_schemas: derived,
        noise_schemas: derived / 2,
        personal_nodes: 4,
        host_nodes,
        perturbation_strength: 0.7,
        ..Default::default()
    });
    MatchProblem::new(sc.personal, sc.repository).expect("non-empty personal schema")
}

/// The bulk-serving workload: one repository, `n` same-domain personal
/// schemas with overlapping (but not identical) label vocabularies.
fn batch_workload(n: u64) -> (Vec<Schema>, Repository) {
    let sc = Scenario::generate(ScenarioConfig {
        derived_schemas: 8,
        noise_schemas: 4,
        personal_nodes: 4,
        host_nodes: 9,
        perturbation_strength: 0.7,
        ..Default::default()
    });
    let personals = (0..n)
        .map(|i| {
            Scenario::generate(ScenarioConfig {
                derived_schemas: 1,
                noise_schemas: 0,
                personal_nodes: 4,
                host_nodes: 5,
                perturbation_strength: 0.7,
                seed: 1000 + i,
                ..Default::default()
            })
            .personal
        })
        .collect();
    (personals, sc.repository)
}

fn bench_matchers(c: &mut Criterion) {
    let problem = problem(8, 9);
    let delta_max = 0.3;
    let mut group = c.benchmark_group("matchers");
    group.sample_size(10);
    let matchers: Vec<(&str, Box<dyn Matcher>)> = vec![
        (
            "s1_exhaustive_direct",
            Box::new(ExhaustiveMatcher::direct(ObjectiveFunction::default())),
        ),
        ("s1_exhaustive", Box::new(ExhaustiveMatcher::default())),
        (
            "s1_parallel",
            Box::new(ParallelExhaustiveMatcher::new(
                ObjectiveFunction::default(),
                4,
            )),
        ),
        (
            "s2_beam32",
            Box::new(BeamMatcher::new(ObjectiveFunction::default(), 32)),
        ),
        (
            "s2_cluster4",
            Box::new(ClusterMatcher::new(ObjectiveFunction::default(), 0.55, 4)),
        ),
        (
            "s2_top100",
            Box::new(TopKMatcher::new(ObjectiveFunction::default(), 100)),
        ),
    ];
    for (name, matcher) in &matchers {
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter(|| {
                let registry = MappingRegistry::new();
                black_box(matcher.run(black_box(&problem), delta_max, &registry)).len()
            })
        });
    }
    // Cold-problem variant: the engine cache is per-MatchProblem, so a
    // brand-new problem pays the CostMatrix fill inside the loop. The
    // cloned repository shares its score store, so after the first
    // iteration this measures the production repeat-query shape — fill
    // from cached rows — not the row-kernel sweep itself; matrix_fill/cold
    // below isolates that.
    let personal = problem.personal().clone();
    let repository = problem.repository().clone();
    group.bench_with_input(
        BenchmarkId::from_parameter("s1_exhaustive_cold"),
        &0,
        |b, _| {
            b.iter(|| {
                let cold = MatchProblem::new(personal.clone(), repository.clone())
                    .expect("non-empty personal schema");
                let registry = MappingRegistry::new();
                black_box(ExhaustiveMatcher::default().run(black_box(&cold), delta_max, &registry))
                    .len()
            })
        },
    );
    group.finish();
}

fn bench_matrix_fill(c: &mut Criterion) {
    let base = problem(8, 9);
    let personal = base.personal().clone();
    let repository = base.repository().clone();
    let objective = ObjectiveFunction::default();
    let mut group = c.benchmark_group("matrix_fill");
    group.sample_size(10);
    // Cold: no cached score rows — every iteration pays the full
    // k-row-kernel sweep over the store's label data.
    group.bench_with_input(BenchmarkId::from_parameter("cold"), &0, |b, _| {
        b.iter(|| {
            repository.clear_score_rows();
            let p = MatchProblem::new(personal.clone(), repository.clone())
                .expect("non-empty personal schema");
            black_box(p.cost_matrix(&objective));
        })
    });
    // Warm: rows cached on the shared store — the fill degenerates to
    // row lookups plus type blends.
    group.bench_with_input(BenchmarkId::from_parameter("warm"), &0, |b, _| {
        b.iter(|| {
            let p = MatchProblem::new(personal.clone(), repository.clone())
                .expect("non-empty personal schema");
            black_box(p.cost_matrix(&objective));
        })
    });
    // Repeat query: the production shape — a brand-new MatchProblem
    // (fresh engine cache) served end-to-end against a warm repository.
    group.bench_with_input(BenchmarkId::from_parameter("repeat_query"), &0, |b, _| {
        b.iter(|| {
            let p = MatchProblem::new(personal.clone(), repository.clone())
                .expect("non-empty personal schema");
            let registry = MappingRegistry::new();
            black_box(ExhaustiveMatcher::default().run(black_box(&p), 0.3, &registry)).len()
        })
    });
    // Batch: 32 personal schemas' matrices filled through the batch
    // subsystem from a cold store — distinct labels deduped across the
    // whole batch, missing rows computed by one shared tiled sweep.
    let (personals, batch_repo) = batch_workload(32);
    group.bench_with_input(BenchmarkId::from_parameter("batch"), &0, |b, _| {
        b.iter(|| {
            batch_repo.clear_score_rows();
            let batch = BatchProblem::new(personals.clone(), batch_repo.clone())
                .expect("non-empty personal schemas");
            batch.build_matrices(&objective);
            black_box(batch.len())
        })
    });
    // The same 32 matrices filled as 32 independent *cold* fills — each
    // query arrives with no warm rows (separate processes/replicas, or a
    // row cache bounded to nothing), so shared labels re-sweep per query.
    // This is what the batch's cross-query dedup amortises away.
    group.bench_with_input(BenchmarkId::from_parameter("sequential32"), &0, |b, _| {
        b.iter(|| {
            for personal in &personals {
                batch_repo.clear_score_rows();
                let p = MatchProblem::new(personal.clone(), batch_repo.clone())
                    .expect("non-empty personal schema");
                black_box(p.cost_matrix(&objective));
            }
        })
    });
    // Control: the same solo loop against one shared warm-up cache — the
    // best case for sequential serving, where the store's row cache
    // already amortises repeats across the run. The batch path should
    // stay close to this on one core (its win there is the cold/evicting
    // regime above) and pull ahead with the threaded sweep on multicore.
    group.bench_with_input(
        BenchmarkId::from_parameter("sequential32_shared"),
        &0,
        |b, _| {
            b.iter(|| {
                batch_repo.clear_score_rows();
                for personal in &personals {
                    let p = MatchProblem::new(personal.clone(), batch_repo.clone())
                        .expect("non-empty personal schema");
                    black_box(p.cost_matrix(&objective));
                }
            })
        },
    );
    group.finish();
}

fn bench_batch_matching(c: &mut Criterion) {
    // End-to-end bulk serving: 32 queries matched through the batch
    // dispatcher (one shared sweep, worker count auto-sized to the
    // hardware) vs the solo loop with per-query-cold fills.
    let (personals, repository) = batch_workload(32);
    let delta_max = 0.3;
    let mut group = c.benchmark_group("s1_batch_vs_sequential");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("batch"), &0, |b, _| {
        b.iter(|| {
            repository.clear_score_rows();
            let batch = BatchProblem::new(personals.clone(), repository.clone())
                .expect("non-empty personal schemas");
            let registry = MappingRegistry::new();
            let results = BatchMatcher::with_threads(ExhaustiveMatcher::default(), 0).run_batch(
                black_box(&batch),
                delta_max,
                &registry,
            );
            black_box(results.iter().map(|a| a.len()).sum::<usize>())
        })
    });
    group.bench_with_input(BenchmarkId::from_parameter("sequential"), &0, |b, _| {
        b.iter(|| {
            let registry = MappingRegistry::new();
            let matcher = ExhaustiveMatcher::default();
            let mut total = 0usize;
            for personal in &personals {
                repository.clear_score_rows();
                let p = MatchProblem::new(personal.clone(), repository.clone())
                    .expect("non-empty personal schema");
                total += matcher.run(black_box(&p), delta_max, &registry).len();
            }
            black_box(total)
        })
    });
    group.finish();
}

fn bench_restart(c: &mut Criterion) {
    // Warm restart: a production repository comes back up with the
    // batch workload's vocabulary already warm. `cold_rebuild` is life
    // without persistence — replay every schema ingest (profiles,
    // postings) and re-sweep every warm row; `snapshot_load` decodes
    // the smx-persist snapshot instead (rows come back as stored bits,
    // profiles are rebuilt from label text). The ratio is tracked as
    // `restart.snapshot_speedup_x` in BENCH_matching.json and guarded
    // by scripts/verify.sh.
    let (personals, repository) = batch_workload(32);
    let batch =
        BatchProblem::new(personals, repository.clone()).expect("non-empty personal schemas");
    batch.prefill_rows(); // the warm state a restart wants back
    let snapshot = repository.save_snapshot();
    let schemas: Vec<Schema> = repository.iter().map(|(_, s)| s.clone()).collect();
    let warm_labels: Vec<String> = batch
        .distinct_labels()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut group = c.benchmark_group("restart");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("cold_rebuild"), &0, |b, _| {
        b.iter(|| {
            let mut r = Repository::new();
            for schema in &schemas {
                r.add(schema.clone());
            }
            let refs: Vec<&str> = warm_labels.iter().map(String::as_str).collect();
            r.store().score_rows(&refs);
            black_box(r.store().cached_rows())
        })
    });
    group.bench_with_input(BenchmarkId::from_parameter("snapshot_load"), &0, |b, _| {
        b.iter(|| {
            let r = Repository::load_snapshot(black_box(&snapshot)).expect("snapshot decodes");
            black_box(r.store().cached_rows())
        })
    });
    // The degraded restart: the ROWS section rotted on disk, so the
    // Salvage policy drops the cached rows and rebuilds the rest. This
    // bounds the cost of coming back up from a damaged snapshot —
    // between `snapshot_load` (all warm) and `cold_rebuild` (nothing
    // persisted); the ratio is `restart.salvage_over_load_x`.
    let rotten = {
        let mut bytes = snapshot.clone();
        let table_at = smx::persist::MAGIC.len() + 8;
        let count = u32::from_le_bytes(bytes[table_at - 4..table_at].try_into().unwrap()) as usize;
        for i in 0..count {
            let entry = table_at + i * 28;
            let id = u32::from_le_bytes(bytes[entry..entry + 4].try_into().unwrap());
            if id == smx::persist::section::ROWS {
                let offset = u64::from_le_bytes(bytes[entry + 4..entry + 12].try_into().unwrap());
                bytes[offset as usize] ^= 0x10;
            }
        }
        bytes
    };
    group.bench_with_input(BenchmarkId::from_parameter("salvage_load"), &0, |b, _| {
        b.iter(|| {
            let (r, report) =
                Repository::load_snapshot_report(black_box(&rotten), RecoveryPolicy::Salvage)
                    .expect("salvage decodes");
            assert!(!report.is_clean());
            black_box(r.store().len())
        })
    });
    group.finish();
}

fn bench_row_kernel(c: &mut Criterion) {
    // The vectorised-dispatch split, measured within one run so the
    // ratios are machine-independent: `reference` re-scores every pair
    // through the scalar `NameSimilarity` string path (the bitwise
    // oracle), `scalar` runs the row kernel pinned to the scalar tier
    // (preprocessing amortised, inner loops unvectorised), `active`
    // runs whatever `KernelVariant::active()` dispatched (SWAR or
    // `std::arch`). scripts/bench_matching.sh records
    // reference/active and scalar/active as the `relative` ratios the
    // machine-relative bench guard (SMX_BENCH_GUARD=relative) checks.
    use smx::text::{KernelVariant, LabelProfile, NameSimilarity, RowKernel};
    let base = problem(8, 9);
    let store = base.repository().store();
    let labels: Vec<String> = (0..store.len())
        .map(|id| {
            store
                .interner()
                .resolve(smx::repo::LabelId(id as u32))
                .to_owned()
        })
        .collect();
    let profiles: Vec<LabelProfile> = labels.iter().map(|l| LabelProfile::new(l)).collect();
    // Queries: a slice of stored labels plus unseen perturbations, so
    // both cache-friendly and novel-label shapes are in the mix.
    let queries: Vec<String> = labels
        .iter()
        .take(8)
        .map(|l| format!("{l}Xq"))
        .chain(labels.iter().take(8).cloned())
        .collect();
    let mut group = c.benchmark_group("row_kernel");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("reference"), &0, |b, _| {
        let scalar = NameSimilarity::default();
        b.iter(|| {
            let mut acc = 0.0f64;
            for q in &queries {
                for l in &labels {
                    acc += scalar.distance(q, l);
                }
            }
            black_box(acc)
        })
    });
    for (name, variant) in [
        ("scalar", KernelVariant::Scalar),
        ("active", KernelVariant::active()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &0, |b, _| {
            b.iter(|| {
                let mut out = Vec::new();
                for q in &queries {
                    let kernel = RowKernel::with_variant(q, variant);
                    out.clear();
                    kernel.distances_into(&profiles, &mut out);
                    black_box(out.len());
                }
            })
        });
    }
    group.finish();
}

fn bench_repository_scaling(c: &mut Criterion) {
    // S1 runtime vs repository size — the scalability wall the paper's
    // clustering work attacks.
    let mut group = c.benchmark_group("s1_vs_repository_size");
    group.sample_size(10);
    for schemas in [4usize, 8, 16] {
        let problem = problem(schemas, 9);
        group.bench_with_input(BenchmarkId::from_parameter(schemas), &schemas, |b, _| {
            b.iter(|| {
                let registry = MappingRegistry::new();
                black_box(ExhaustiveMatcher::default().run(black_box(&problem), 0.3, &registry))
                    .len()
            })
        });
    }
    group.finish();
    // XL sweep: `SMX_BENCH_XL=1` extends the scaling curve to 10³–10⁵
    // mixed-domain schemas, the repository sizes the paper's
    // non-exhaustive argument is actually about. Off by default —
    // building and exhaustively matching 10⁵ schemas takes minutes —
    // so these entries never appear in the committed
    // `BENCH_matching.json` and the bench guard ignores them.
    if std::env::var("SMX_BENCH_XL").as_deref() == Ok("1") {
        let mut group = c.benchmark_group("s1_vs_repository_size");
        group.sample_size(2);
        for schemas in [1_000usize, 10_000, 100_000] {
            let (personal, repo) = mixed_repository(schemas);
            let problem = MatchProblem::new(personal, repo).expect("non-empty personal schema");
            group.bench_with_input(BenchmarkId::from_parameter(schemas), &schemas, |b, _| {
                b.iter(|| {
                    let registry = MappingRegistry::new();
                    black_box(ExhaustiveMatcher::default().run(black_box(&problem), 0.3, &registry))
                        .len()
                })
            });
        }
        group.finish();
    }
}

fn bench_store_sharded(c: &mut Criterion) {
    // Multi-thread warm-hit sweep throughput: 16 shards vs one global
    // lock over identical stores. A warm `score_rows` hit takes only
    // its shard's read lock, so the contended cacheline under
    // concurrency is the lock word itself — sharding spreads the
    // sweepers over 16 locks instead of one.
    // scripts/bench_matching.sh records the *paired* ratio
    // `store_sharded/paired_sharded_over_single_lock` (single-lock
    // time over sharded time — the sharded speedup) as
    // `relative.sharded_sweep_over_single_lock`, and
    // scripts/bench_guard.sh floors it at 1.5 on multicore hosts. On a
    // single-core host no concurrency exists and the ratio is
    // meaningless, so the paired line is only emitted when
    // `available_parallelism() >= 2` and the guard skips the floor
    // loudly instead of failing.
    use smx::repo::StoreConfig;
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8);
    let sc = Scenario::generate(ScenarioConfig {
        derived_schemas: 16,
        noise_schemas: 8,
        personal_nodes: 4,
        host_nodes: 9,
        perturbation_strength: 0.7,
        ..Default::default()
    });
    let build = |shards: usize| {
        let mut repo = Repository::with_store_config(StoreConfig {
            shards,
            max_cached_rows: None,
            batch_threads: 1,
        });
        for (_, schema) in sc.repository.iter() {
            repo.add(schema.clone());
        }
        repo
    };
    let sharded = build(16);
    let single = build(1);
    let labels: Vec<String> = (0..sharded.store().len())
        .map(|id| {
            sharded
                .store()
                .interner()
                .resolve(smx::repo::LabelId(id as u32))
                .to_owned()
        })
        .collect();
    let queries: Vec<&str> = labels.iter().map(String::as_str).collect();
    // Warm every row once up front: the measured loops are pure hits.
    let _ = sharded.store().score_rows(&queries);
    let _ = single.store().score_rows(&queries);
    let sweep = |repo: &Repository| {
        std::thread::scope(|scope| {
            for t in 0..threads {
                let queries = &queries;
                let store = repo.store();
                scope.spawn(move || {
                    // Phase-shift each thread's starting chunk so the
                    // sweepers sit on different shards at any instant.
                    let split = (t * 8) % queries.len();
                    for chunk in queries[split..].chunks(8).chain(queries[..split].chunks(8)) {
                        black_box(store.score_rows(chunk));
                    }
                });
            }
        });
    };
    let mut group = c.benchmark_group("store_sharded");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("sharded"), &0, |b, _| {
        b.iter(|| sweep(&sharded))
    });
    group.bench_with_input(BenchmarkId::from_parameter("single_lock"), &0, |b, _| {
        b.iter(|| sweep(&single))
    });
    group.finish();
    if let Ok(path) = std::env::var("SMX_BENCH_JSON") {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .expect("SMX_BENCH_JSON path is writable");
        writeln!(
            f,
            "{{\"bench\":\"store_sharded/threads\",\"value\":{threads}}}"
        )
        .unwrap();
        if threads >= 2 {
            // Paired measurement, same discipline as trace_overhead:
            // alternating sharded/single-lock sweeps inside one loop so
            // frequency drift and cache state hit both sides equally.
            let mut sharded_ns = 0u128;
            let mut single_ns = 0u128;
            for round in 0..24 {
                let t = std::time::Instant::now();
                sweep(&sharded);
                let s_ns = t.elapsed().as_nanos();
                let t = std::time::Instant::now();
                sweep(&single);
                let g_ns = t.elapsed().as_nanos();
                if round >= 4 {
                    // First rounds are warm-up.
                    sharded_ns += s_ns;
                    single_ns += g_ns;
                }
            }
            writeln!(
                f,
                "{{\"bench\":\"store_sharded/paired_sharded_over_single_lock\",\"value\":{}}}",
                single_ns as f64 / sharded_ns as f64
            )
            .unwrap();
        }
    }
}

/// Mixed-domain repository of `total` schemas for the candidate-tier
/// scaling bench: 8 Publications-derived signal schemas (9 host nodes,
/// perturbation 0.7 — the vocabulary the personal schema actually
/// matches) plus cross-domain noise split across Commerce,
/// HumanResources and Travel. Noise schemas are bulkier than the signal
/// (12 host nodes): a shared repository accumulates large schemas from
/// domains unrelated to any one query, and their size is exactly what
/// an exhaustive run pays for and a certified-pruned run does not.
fn mixed_repository(total: usize) -> (Schema, Repository) {
    let signal = Scenario::generate(ScenarioConfig {
        domain: Domain::Publications,
        derived_schemas: 8,
        noise_schemas: 0,
        personal_nodes: 4,
        host_nodes: 9,
        perturbation_strength: 0.7,
        seed: 5,
    });
    let mut repo = signal.repository;
    let noise_total = total - 8;
    let domains = [Domain::Commerce, Domain::HumanResources, Domain::Travel];
    for (i, domain) in domains.iter().enumerate() {
        let n = noise_total / 3 + usize::from(i < noise_total % 3);
        let sc = Scenario::generate(ScenarioConfig {
            domain: *domain,
            derived_schemas: 0,
            noise_schemas: n,
            personal_nodes: 4,
            host_nodes: 12,
            perturbation_strength: 0.7,
            seed: 100 + i as u64,
        });
        for (_, schema) in sc.repository.iter() {
            repo.add(schema.clone());
        }
    }
    (signal.personal, repo)
}

fn bench_candidate_tier(c: &mut Criterion) {
    // Exhaustive vs candidate-tier cold runs as the repository grows —
    // the non-exhaustive trade-off the paper's bounds certify, measured
    // end to end. Every iteration clears the shared score-row cache and
    // builds a fresh MatchProblem, so both sides pay generation (tier
    // only), matrix fill, and search; the tier runs in auto-budget mode
    // (only certified-empty schemas pruned), so its answers are bitwise
    // identical to the exhaustive oracle's and its certificate is
    // recall 1.0 ≥ the 0.95 the headline requires — both are asserted
    // below, outside the timed loops, and recorded as `value` lines in
    // BENCH_matching.json. scripts/bench_guard.sh holds the within-run
    // exhaustive/candidate ratio at 1024 schemas to the documented
    // acceptance floor (≥ 5x).
    let delta_max = 0.1;
    let mut group = c.benchmark_group("candidate_tier");
    group.sample_size(10);
    let mut checks: Vec<(usize, f64, usize)> = Vec::new();
    for total in [64usize, 256, 1024] {
        let (personal, repo) = mixed_repository(total);
        let store_owner =
            MatchProblem::new(personal.clone(), repo.clone()).expect("non-empty personal schema");
        let store = store_owner.repository().store();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("exhaustive_{total}")),
            &total,
            |b, _| {
                b.iter(|| {
                    store.clear_rows();
                    let p = MatchProblem::new(personal.clone(), repo.clone()).unwrap();
                    let registry = MappingRegistry::new();
                    black_box(ExhaustiveMatcher::default().run(&p, delta_max, &registry)).len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("candidate_{total}")),
            &total,
            |b, _| {
                let matcher = CertifiedMatcher::new(
                    ExhaustiveMatcher::default(),
                    CandidateGenerator::auto(ObjectiveFunction::default()),
                );
                b.iter(|| {
                    store.clear_rows();
                    let p = MatchProblem::new(personal.clone(), repo.clone()).unwrap();
                    let registry = MappingRegistry::new();
                    black_box(matcher.run_certified(&p, delta_max, &registry))
                        .answers
                        .len()
                })
            },
        );
        // Certificate checks, outside the timed loops: admissibility
        // (certified never exceeds measured recall) and the headline
        // floor (certified ≥ 0.95 — exactly 1.0 in auto mode).
        let registry = MappingRegistry::new();
        let oracle = ExhaustiveMatcher::default().run(&store_owner, delta_max, &registry);
        let matcher = CertifiedMatcher::new(
            ExhaustiveMatcher::default(),
            CandidateGenerator::auto(ObjectiveFunction::default()),
        );
        let certified = matcher.run_certified(&store_owner, delta_max, &registry);
        let cert = certified.certificate.certified_recall();
        let measured = if oracle.is_empty() {
            1.0
        } else {
            let kept = certified
                .answers
                .ids()
                .filter(|&id| oracle.score_of(id).is_some())
                .count();
            kept as f64 / oracle.len() as f64
        };
        assert!(
            cert <= measured + 1e-12,
            "size {total}: certificate {cert} exceeds measured recall {measured}"
        );
        assert!(
            cert >= 0.95,
            "size {total}: certified recall {cert} below the 0.95 headline floor"
        );
        checks.push((total, cert, certified.certificate.active_schemas()));
    }
    group.finish();
    // Record the (non-timing) certificate facts alongside the ns lines
    // so BENCH_matching.json documents the recall the speedup was
    // bought at.
    if let Ok(path) = std::env::var("SMX_BENCH_JSON") {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .expect("SMX_BENCH_JSON path is writable");
        for (total, cert, active) in checks {
            writeln!(
                f,
                "{{\"bench\":\"candidate_tier/certified_recall_{total}\",\"value\":{cert}}}"
            )
            .unwrap();
            writeln!(
                f,
                "{{\"bench\":\"candidate_tier/active_schemas_{total}\",\"value\":{active}}}"
            )
            .unwrap();
        }
    }
}

fn bench_pipeline(c: &mut Criterion) {
    // The composed filter→refine pipeline (candidate filter → beam
    // filter → exhaustive-on-survivors) racing the monolithic
    // exhaustive matcher on identical cold 1024-schema mixed-domain
    // problems. Both sides run at Δ = 0.2: at that threshold the beam
    // stage answers every surviving schema, so the composed
    // certificate charges nothing and stays at recall 1.0 — the race
    // measures what declarative composition *costs*, not what pruning
    // buys (the candidate tier group measures that). At a tighter Δ
    // the beam drops schemas it cannot answer and their caps — loose
    // per-schema answer-count bounds — collapse the certificate,
    // which is exactly the behaviour the certified-matrix suite pins
    // down. The within-run composed/exhaustive ratio is guarded as
    // `relative.pipeline_over_exhaustive_1024`; admissibility
    // (certified ≤ measured recall vs the oracle) and the ≥ 0.95
    // recall floor are asserted outside the timed loops, and the
    // recall is recorded as a `value` line so BENCH_matching.json
    // documents what the composed speedup was bought at.
    let delta_max = 0.2;
    let total = 1024usize;
    let pipeline = Pipeline::builder(ObjectiveFunction::default())
        .candidate_filter()
        .beam_filter(4)
        .refine(ExhaustiveMatcher::default());
    let (personal, repo) = mixed_repository(total);
    let store_owner =
        MatchProblem::new(personal.clone(), repo.clone()).expect("non-empty personal schema");
    let store = store_owner.repository().store();
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::from_parameter(format!("exhaustive_{total}")),
        &total,
        |b, _| {
            b.iter(|| {
                store.clear_rows();
                let p = MatchProblem::new(personal.clone(), repo.clone()).unwrap();
                let registry = MappingRegistry::new();
                black_box(ExhaustiveMatcher::default().run(&p, delta_max, &registry)).len()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::from_parameter(format!("composed_{total}")),
        &total,
        |b, _| {
            b.iter(|| {
                store.clear_rows();
                let p = MatchProblem::new(personal.clone(), repo.clone()).unwrap();
                let registry = MappingRegistry::new();
                black_box(pipeline.run_certified(&p, delta_max, &registry))
                    .answers
                    .len()
            })
        },
    );
    group.finish();
    let registry = MappingRegistry::new();
    let oracle = ExhaustiveMatcher::default().run(&store_owner, delta_max, &registry);
    let run = pipeline.run_certified(&store_owner, delta_max, &registry);
    run.answers
        .is_subset_of(&oracle)
        .expect("pipeline answers are a subset of the oracle's");
    let cert = run.certificate.certified_recall();
    let measured = if oracle.is_empty() {
        1.0
    } else {
        let kept = run
            .answers
            .ids()
            .filter(|&id| oracle.score_of(id).is_some())
            .count();
        kept as f64 / oracle.len() as f64
    };
    assert!(
        cert <= measured + 1e-12,
        "pipeline certificate {cert} exceeds measured recall {measured}"
    );
    assert!(
        cert >= 0.95,
        "pipeline certified recall {cert} below the 0.95 headline floor"
    );
    if let Ok(path) = std::env::var("SMX_BENCH_JSON") {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .expect("SMX_BENCH_JSON path is writable");
        writeln!(
            f,
            "{{\"bench\":\"pipeline/certified_recall_{total}\",\"value\":{cert}}}"
        )
        .unwrap();
        writeln!(
            f,
            "{{\"bench\":\"pipeline/stages_{total}\",\"value\":{}}}",
            run.certificate.stages().len()
        )
        .unwrap();
    }
}

fn bench_trace_overhead(c: &mut Criterion) {
    // The near-zero-cost-when-disabled claim, measured: `baseline`
    // drives the byte-for-byte pre-instrumentation sweep path
    // (`score_rows_uninstrumented`), `disabled` drives the instrumented
    // wrapper with tracing off (one relaxed atomic load per call), and
    // `enabled` — informational, unguarded — drives it with a live
    // collector installed, drained every iteration.
    // scripts/bench_matching.sh records baseline/disabled as
    // `relative.trace_overhead_disabled`; scripts/bench_guard.sh floors
    // it at 0.95 (instrumentation may cost at most 5% when off).
    let base = problem(8, 9);
    let store = base.repository().store();
    let labels: Vec<String> = (0..store.len())
        .map(|id| {
            store
                .interner()
                .resolve(smx::repo::LabelId(id as u32))
                .to_owned()
        })
        .collect();
    let queries: Vec<&str> = labels.iter().take(16).map(String::as_str).collect();
    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(10);
    smx::obs::set_enabled(false);
    smx::obs::set_recorder(None);
    group.bench_with_input(BenchmarkId::from_parameter("baseline"), &0, |b, _| {
        b.iter(|| {
            store.clear_rows();
            black_box(store.score_rows_uninstrumented(&queries)).len()
        })
    });
    group.bench_with_input(BenchmarkId::from_parameter("disabled"), &0, |b, _| {
        b.iter(|| {
            store.clear_rows();
            black_box(store.score_rows(&queries)).len()
        })
    });
    let collector = smx::obs::install_collector();
    group.bench_with_input(BenchmarkId::from_parameter("enabled"), &0, |b, _| {
        b.iter(|| {
            store.clear_rows();
            let n = black_box(store.score_rows(&queries)).len();
            collector.take();
            n
        })
    });
    smx::obs::set_enabled(false);
    smx::obs::set_recorder(None);
    group.finish();
    // The guarded ratio is measured *paired*: alternating
    // baseline/disabled sweeps inside one loop, so frequency drift,
    // cache state, and allocator history hit both sides equally. The
    // standalone entries above are informational — as separate bench
    // positions their ratio wobbles ±5% run to run, which is exactly
    // the margin the 0.95 floor polices.
    let mut baseline_ns = 0u128;
    let mut disabled_ns = 0u128;
    for round in 0..68 {
        store.clear_rows();
        let t = std::time::Instant::now();
        black_box(store.score_rows_uninstrumented(&queries));
        let b_ns = t.elapsed().as_nanos();
        store.clear_rows();
        let t = std::time::Instant::now();
        black_box(store.score_rows(&queries));
        let d_ns = t.elapsed().as_nanos();
        if round >= 4 {
            // First rounds are warm-up.
            baseline_ns += b_ns;
            disabled_ns += d_ns;
        }
    }
    if let Ok(path) = std::env::var("SMX_BENCH_JSON") {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .expect("SMX_BENCH_JSON path is writable");
        writeln!(
            f,
            "{{\"bench\":\"trace_overhead/paired_baseline_over_disabled\",\"value\":{}}}",
            baseline_ns as f64 / disabled_ns as f64
        )
        .unwrap();
    }
}

criterion_group!(
    benches,
    bench_matchers,
    bench_matrix_fill,
    bench_batch_matching,
    bench_restart,
    bench_row_kernel,
    bench_repository_scaling,
    bench_store_sharded,
    bench_candidate_tier,
    bench_pipeline,
    bench_trace_overhead
);
criterion_main!(benches);

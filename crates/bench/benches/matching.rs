//! The efficiency side of the trade-off: wall-clock of S1 vs the
//! non-exhaustive improvements on the same problem. This is the paper's
//! *motivation* — S2 exists because S1 is exponential — so the bench
//! reports both runtimes and answer counts.
//!
//! `s1_exhaustive_direct` is the pre-engine baseline (string similarity
//! recomputed every run, as the seed implementation did);
//! `s1_exhaustive` reads the problem's precomputed `CostMatrix`. Their
//! ratio is the scoring engine's speedup — tracked in
//! `BENCH_matching.json` via `scripts/bench_matching.sh`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smx::matching::{
    BeamMatcher, ClusterMatcher, ExhaustiveMatcher, MappingRegistry, MatchProblem, Matcher,
    ObjectiveFunction, ParallelExhaustiveMatcher, TopKMatcher,
};
use smx::synth::{Scenario, ScenarioConfig};
use std::hint::black_box;

fn problem(derived: usize, host_nodes: usize) -> MatchProblem {
    let sc = Scenario::generate(ScenarioConfig {
        derived_schemas: derived,
        noise_schemas: derived / 2,
        personal_nodes: 4,
        host_nodes,
        perturbation_strength: 0.7,
        ..Default::default()
    });
    MatchProblem::new(sc.personal, sc.repository).expect("non-empty personal schema")
}

fn bench_matchers(c: &mut Criterion) {
    let problem = problem(8, 9);
    let delta_max = 0.3;
    let mut group = c.benchmark_group("matchers");
    group.sample_size(10);
    let matchers: Vec<(&str, Box<dyn Matcher>)> = vec![
        (
            "s1_exhaustive_direct",
            Box::new(ExhaustiveMatcher::direct(ObjectiveFunction::default())),
        ),
        ("s1_exhaustive", Box::new(ExhaustiveMatcher::default())),
        (
            "s1_parallel",
            Box::new(ParallelExhaustiveMatcher::new(ObjectiveFunction::default(), 4)),
        ),
        ("s2_beam32", Box::new(BeamMatcher::new(ObjectiveFunction::default(), 32))),
        (
            "s2_cluster4",
            Box::new(ClusterMatcher::new(ObjectiveFunction::default(), 0.55, 4)),
        ),
        ("s2_top100", Box::new(TopKMatcher::new(ObjectiveFunction::default(), 100))),
    ];
    for (name, matcher) in &matchers {
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter(|| {
                let registry = MappingRegistry::new();
                black_box(matcher.run(black_box(&problem), delta_max, &registry)).len()
            })
        });
    }
    // Cold-problem variant: the engine cache is per-MatchProblem, so a
    // brand-new problem pays the CostMatrix fill. Timing problem
    // construction + run keeps the headline steady-state number honest.
    let personal = problem.personal().clone();
    let repository = problem.repository().clone();
    group.bench_with_input(
        BenchmarkId::from_parameter("s1_exhaustive_cold"),
        &0,
        |b, _| {
            b.iter(|| {
                let cold = MatchProblem::new(personal.clone(), repository.clone())
                    .expect("non-empty personal schema");
                let registry = MappingRegistry::new();
                black_box(
                    ExhaustiveMatcher::default().run(black_box(&cold), delta_max, &registry),
                )
                .len()
            })
        },
    );
    group.finish();
}

fn bench_repository_scaling(c: &mut Criterion) {
    // S1 runtime vs repository size — the scalability wall the paper's
    // clustering work attacks.
    let mut group = c.benchmark_group("s1_vs_repository_size");
    group.sample_size(10);
    for schemas in [4usize, 8, 16] {
        let problem = problem(schemas, 9);
        group.bench_with_input(BenchmarkId::from_parameter(schemas), &schemas, |b, _| {
            b.iter(|| {
                let registry = MappingRegistry::new();
                black_box(
                    ExhaustiveMatcher::default().run(black_box(&problem), 0.3, &registry),
                )
                .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matchers, bench_repository_scaling);
criterion_main!(benches);

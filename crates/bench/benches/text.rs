//! String-similarity kernel throughput — these run inside the matcher's
//! innermost loop, so they dominate objective-function cost.

use criterion::{criterion_group, criterion_main, Criterion};
use smx::text::{
    jaro_winkler, levenshtein_similarity, monge_elkan, trigram_similarity, NameSimilarity,
    SimilarityCache,
};
use std::hint::black_box;

const PAIRS: [(&str, &str); 5] = [
    ("customerName", "custName"),
    ("orderLineItem", "lineItem"),
    ("publisher", "publicationYear"),
    ("departureDate", "depDate"),
    ("isbn", "issn"),
];

type Kernel = fn(&str, &str) -> f64;

fn bench_kernels(c: &mut Criterion) {
    let kernels: [(&str, Kernel); 4] = [
        ("levenshtein", levenshtein_similarity),
        ("jaro_winkler", jaro_winkler),
        ("trigram", trigram_similarity),
        ("monge_elkan", monge_elkan),
    ];
    for (name, kernel) in kernels {
        c.bench_function(name, |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for (x, y) in PAIRS {
                    acc += kernel(black_box(x), black_box(y));
                }
                black_box(acc)
            })
        });
    }
}

fn bench_combined(c: &mut Criterion) {
    let sim = NameSimilarity::default();
    c.bench_function("name_similarity_default", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (x, y) in PAIRS {
                acc += sim.similarity(black_box(x), black_box(y));
            }
            black_box(acc)
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    let sim = NameSimilarity::default();
    let cache = SimilarityCache::new(move |a: &str, b: &str| sim.similarity(a, b));
    // Warm.
    for (x, y) in PAIRS {
        cache.similarity(x, y);
    }
    c.bench_function("name_similarity_cached_hit", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (x, y) in PAIRS {
                acc += cache.similarity(black_box(x), black_box(y));
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_kernels, bench_combined, bench_cache);
criterion_main!(benches);

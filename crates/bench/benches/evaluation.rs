//! Evaluation-machinery throughput: curve measurement, interpolation,
//! pooling — the per-sweep bookkeeping around the bounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smx::eval::{pool_depth_k, AnswerId, AnswerSet, GroundTruth, InterpolatedCurve, PrCurve};
use std::hint::black_box;

fn fixture(n: usize) -> (AnswerSet, GroundTruth, Vec<f64>) {
    let answers = AnswerSet::new((0..n as u64).map(|i| (AnswerId(i), i as f64 / n as f64)))
        .expect("finite scores");
    let truth = GroundTruth::new((0..n as u64).filter(|i| i % 7 == 0).map(AnswerId));
    let grid: Vec<f64> = (1..=20).map(|i| i as f64 / 20.0).collect();
    (answers, truth, grid)
}

fn bench_measure(c: &mut Criterion) {
    let mut group = c.benchmark_group("pr_curve_measure");
    for n in [1_000usize, 10_000, 100_000] {
        let (answers, truth, grid) = fixture(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(PrCurve::measure(&answers, &truth, &grid)))
        });
    }
    group.finish();
}

fn bench_interpolate(c: &mut Criterion) {
    let (answers, truth, grid) = fixture(10_000);
    let curve = PrCurve::measure(&answers, &truth, &grid).expect("valid fixture");
    c.bench_function("eleven_point_interpolation", |b| {
        b.iter(|| black_box(InterpolatedCurve::eleven_point(black_box(&curve))))
    });
}

fn bench_pooling(c: &mut Criterion) {
    let (a1, truth, _) = fixture(10_000);
    let a2 = a1.filter(|id| id.0 % 2 == 0);
    c.bench_function("pool_depth_100", |b| {
        b.iter(|| black_box(pool_depth_k(&[&a1, &a2], 100, &truth)).pool_size())
    });
}

criterion_group!(benches, bench_measure, bench_interpolate, bench_pooling);
criterion_main!(benches);

//! Throughput of the bounds computations themselves: the paper's use-case
//! (2) is "quick evaluation of many different parameter settings", so the
//! bounds must be cheap. Sweeps the number of curve increments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smx::bounds::{
    incremental_bounds, pointwise_bounds, random_baseline, BoundsEnvelope, SizeRatio,
};
use smx::eval::{Counts, PrCurve};
use std::hint::black_box;

/// A synthetic S1 curve with `n` increments and a plausible composition.
fn synthetic_curve(n: usize) -> (PrCurve, Vec<usize>) {
    let truth = 10 * n;
    let mut answers = 0usize;
    let mut correct = 0usize;
    let mut counts = Vec::with_capacity(n);
    let mut sizes = Vec::with_capacity(n);
    for i in 0..n {
        answers += 20 + 3 * i;
        correct = (correct + 7).min(truth.min(answers));
        counts.push((i as f64 / n as f64, Counts::new(answers, correct)));
        sizes.push((answers as f64 * 0.8) as usize);
    }
    (
        PrCurve::from_counts(truth, counts).expect("valid synthetic curve"),
        sizes,
    )
}

fn bench_pointwise(c: &mut Criterion) {
    let ratio = SizeRatio::new(0.8).expect("in range");
    c.bench_function("pointwise_bounds", |b| {
        b.iter(|| black_box(pointwise_bounds(black_box(0.375), black_box(0.15), ratio)))
    });
}

fn bench_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_bounds");
    for n in [10usize, 100, 1000] {
        let (curve, sizes) = synthetic_curve(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(incremental_bounds(black_box(&curve), black_box(&sizes))))
        });
    }
    group.finish();
}

fn bench_random_baseline(c: &mut Criterion) {
    let (curve, sizes) = synthetic_curve(100);
    c.bench_function("random_baseline_100", |b| {
        b.iter(|| black_box(random_baseline(black_box(&curve), black_box(&sizes))))
    });
}

fn bench_envelope(c: &mut Criterion) {
    let mut group = c.benchmark_group("envelope_from_sizes");
    for n in [10usize, 100] {
        let (curve, sizes) = synthetic_curve(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(BoundsEnvelope::from_sizes(
                    black_box(&curve),
                    black_box(&sizes),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pointwise,
    bench_incremental,
    bench_random_baseline,
    bench_envelope
);
criterion_main!(benches);

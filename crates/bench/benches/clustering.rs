//! Clustering ablation: greedy leader clustering (what a scalable matcher
//! uses) vs average-linkage agglomerative (the quality reference), over
//! repository size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smx::repo::{agglomerative_clustering, greedy_clustering, Repository, TokenIndex};
use smx::synth::{Scenario, ScenarioConfig};
use std::hint::black_box;

fn repository(schemas: usize) -> Repository {
    Scenario::generate(ScenarioConfig {
        derived_schemas: schemas / 2,
        noise_schemas: schemas - schemas / 2,
        host_nodes: 10,
        ..Default::default()
    })
    .repository
}

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_clustering");
    group.sample_size(10);
    for schemas in [8usize, 16, 32] {
        let repo = repository(schemas);
        group.bench_with_input(BenchmarkId::from_parameter(schemas), &schemas, |b, _| {
            b.iter(|| black_box(greedy_clustering(black_box(&repo), 0.55)).len())
        });
    }
    group.finish();
}

fn bench_agglomerative(c: &mut Criterion) {
    let mut group = c.benchmark_group("agglomerative_clustering");
    group.sample_size(10);
    for schemas in [4usize, 8] {
        let repo = repository(schemas);
        group.bench_with_input(BenchmarkId::from_parameter(schemas), &schemas, |b, _| {
            b.iter(|| black_box(agglomerative_clustering(black_box(&repo), 12)).len())
        });
    }
    group.finish();
}

fn bench_token_index(c: &mut Criterion) {
    let repo = repository(32);
    c.bench_function("token_index_build_32", |b| {
        b.iter(|| black_box(TokenIndex::build(black_box(&repo))).vocabulary_size())
    });
}

criterion_group!(
    benches,
    bench_greedy,
    bench_agglomerative,
    bench_token_index
);
criterion_main!(benches);

//! Property tests: random schema generation, roundtrip through the text
//! format, and structural invariants.

use proptest::prelude::*;
use smx_xml::*;

/// Strategy for identifier-ish names (never empty).
fn name() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z][a-zA-Z0-9_]{0,10}").unwrap()
}

fn occurs() -> impl Strategy<Value = Occurs> {
    (0u32..3, proptest::option::of(0u32..5)).prop_map(|(min, max)| Occurs {
        min,
        max: max.map(|m| m.max(min)),
    })
}

fn primitive() -> impl Strategy<Value = PrimitiveType> {
    prop_oneof![
        Just(PrimitiveType::Complex),
        Just(PrimitiveType::String),
        Just(PrimitiveType::Integer),
        Just(PrimitiveType::Decimal),
        Just(PrimitiveType::Date),
        Just(PrimitiveType::Boolean),
        Just(PrimitiveType::Id),
    ]
}

/// A random tree description: per-node (name, type, occurs, parent-index),
/// where parent-index i for node n is drawn from 0..n so it always refers
/// to an earlier node — yielding a valid forest that we root at node 0.
fn tree_spec(
    max_nodes: usize,
) -> impl Strategy<Value = Vec<(String, PrimitiveType, Occurs, usize)>> {
    proptest::collection::vec(
        (name(), primitive(), occurs(), any::<prop::sample::Index>()),
        1..max_nodes,
    )
    .prop_map(|nodes| {
        nodes
            .into_iter()
            .enumerate()
            .map(|(i, (n, t, o, idx))| {
                let parent = if i == 0 { 0 } else { idx.index(i) };
                (n, t, o, parent)
            })
            .collect()
    })
}

fn build_schema(spec: &[(String, PrimitiveType, Occurs, usize)]) -> Schema {
    let mut schema = Schema::new("prop");
    let mut ids: Vec<NodeId> = Vec::with_capacity(spec.len());
    for (i, (name, ty, occurs, parent)) in spec.iter().enumerate() {
        let mut node = Node::element(name.clone());
        node.ty = *ty;
        node.occurs = *occurs;
        let id = if i == 0 {
            schema.add_root(node).unwrap()
        } else {
            schema.add_child(ids[*parent], node).unwrap()
        };
        ids.push(id);
    }
    schema
}

proptest! {
    #[test]
    fn random_schemas_validate(spec in tree_spec(40)) {
        let schema = build_schema(&spec);
        prop_assert!(schema.validate().is_ok());
        prop_assert_eq!(schema.len(), spec.len());
    }

    #[test]
    fn serialize_parse_roundtrip(spec in tree_spec(40)) {
        let schema = build_schema(&spec);
        let text = schema_to_string(&schema);
        let parsed = parse_schema(&text).unwrap();
        // The parser assigns arena ids in document order; the random
        // builder may interleave, so compare structurally and via the
        // canonical serialization.
        prop_assert!(parsed.structural_eq(&schema));
        prop_assert_eq!(schema_to_string(&parsed), text);
    }

    #[test]
    fn preorder_covers_every_node_once(spec in tree_spec(40)) {
        let schema = build_schema(&spec);
        let order = preorder(&schema);
        prop_assert_eq!(order.len(), schema.len());
        let mut sorted = order.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), schema.len());
        // Parents precede children in preorder.
        let pos: std::collections::HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        for id in schema.node_ids() {
            if let Some(p) = schema.node(id).parent {
                prop_assert!(pos[&p] < pos[&id]);
            }
        }
    }

    #[test]
    fn postorder_children_precede_parents(spec in tree_spec(40)) {
        let schema = build_schema(&spec);
        let order = postorder(&schema);
        let pos: std::collections::HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        for id in schema.node_ids() {
            if let Some(p) = schema.node(id).parent {
                prop_assert!(pos[&p] > pos[&id]);
            }
        }
    }

    #[test]
    fn paths_resolve_consistently(spec in tree_spec(30)) {
        let schema = build_schema(&spec);
        for id in schema.node_ids() {
            let path = Path::of(&schema, id);
            prop_assert_eq!(path.len(), schema.depth(id) + 1);
            let resolved = path.resolve(&schema).unwrap();
            // Resolution picks the first node with the same path.
            prop_assert_eq!(Path::of(&schema, resolved), path);
        }
    }

    #[test]
    fn subtree_sizes_sum(spec in tree_spec(30)) {
        let schema = build_schema(&spec);
        let root = schema.root().unwrap();
        prop_assert_eq!(schema.subtree_size(root), schema.len());
        // Root subtree = 1 + sum of child subtrees.
        let sum: usize = schema.node(root).children.iter()
            .map(|&c| schema.subtree_size(c)).sum();
        prop_assert_eq!(schema.subtree_size(root), 1 + sum);
    }

    #[test]
    fn stats_are_consistent(spec in tree_spec(40)) {
        let schema = build_schema(&spec);
        let st = SchemaStats::of(&schema);
        prop_assert_eq!(st.node_count, schema.len());
        prop_assert!(st.leaf_count >= 1);
        prop_assert!(st.leaf_count <= st.node_count);
        prop_assert!(st.max_depth < st.node_count);
        prop_assert!(st.max_fanout < st.node_count.max(1));
    }

    #[test]
    fn occurs_spec_roundtrip(o in occurs()) {
        prop_assert_eq!(Occurs::from_spec(&o.to_string()), Some(o));
    }
}

//! Structural statistics over schemas, used for repository reporting and to
//! sanity-check synthetic generators against target shapes.

use crate::schema::Schema;
use serde::{Deserialize, Serialize};

/// Summary statistics of one schema tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchemaStats {
    /// Total number of nodes.
    pub node_count: usize,
    /// Number of leaves.
    pub leaf_count: usize,
    /// Maximum depth (root = 0); 0 for an empty schema too.
    pub max_depth: usize,
    /// Mean number of children over interior (non-leaf) nodes.
    pub avg_fanout: f64,
    /// Maximum number of children of any node.
    pub max_fanout: usize,
}

impl SchemaStats {
    /// Compute statistics for `schema`.
    pub fn of(schema: &Schema) -> Self {
        let mut leaf_count = 0;
        let mut max_depth = 0;
        let mut interior = 0usize;
        let mut child_total = 0usize;
        let mut max_fanout = 0;
        for id in schema.node_ids() {
            let node = schema.node(id);
            if node.is_leaf() {
                leaf_count += 1;
            } else {
                interior += 1;
                child_total += node.children.len();
                max_fanout = max_fanout.max(node.children.len());
            }
            max_depth = max_depth.max(schema.depth(id));
        }
        SchemaStats {
            node_count: schema.len(),
            leaf_count,
            max_depth,
            avg_fanout: if interior == 0 {
                0.0
            } else {
                child_total as f64 / interior as f64
            },
            max_fanout,
        }
    }
}

impl std::fmt::Display for SchemaStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} nodes ({} leaves), depth {}, fanout avg {:.2} max {}",
            self.node_count, self.leaf_count, self.max_depth, self.avg_fanout, self.max_fanout
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SchemaBuilder;
    use crate::node::PrimitiveType;

    #[test]
    fn stats_of_small_tree() {
        let s = SchemaBuilder::new("t")
            .root("r")
            .child("a", |a| {
                a.leaf("x", PrimitiveType::String)
                    .leaf("y", PrimitiveType::String)
            })
            .leaf("z", PrimitiveType::String)
            .build();
        let st = SchemaStats::of(&s);
        assert_eq!(st.node_count, 5);
        assert_eq!(st.leaf_count, 3);
        assert_eq!(st.max_depth, 2);
        assert_eq!(st.max_fanout, 2);
        // interior nodes: r (2 children), a (2 children) → avg 2.0
        assert!((st.avg_fanout - 2.0).abs() < 1e-12);
        assert!(st.to_string().contains("5 nodes"));
    }

    #[test]
    fn stats_of_empty_and_singleton() {
        let empty = Schema::new("e");
        let st = SchemaStats::of(&empty);
        assert_eq!(st.node_count, 0);
        assert_eq!(st.avg_fanout, 0.0);

        let mut single = Schema::new("s");
        single.add_root(crate::Node::element("only")).unwrap();
        let st = SchemaStats::of(&single);
        assert_eq!(st.node_count, 1);
        assert_eq!(st.leaf_count, 1);
        assert_eq!(st.max_depth, 0);
    }
}

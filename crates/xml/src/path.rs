//! Root-to-element paths.
//!
//! A [`Path`] is the sequence of element names from the schema root down to
//! a node, displayed XPath-style (`/bib/book/title`). Paths are how mapping
//! targets are reported to users and how clustering features describe an
//! element's context.

use crate::node::NodeId;
use crate::schema::Schema;
use serde::{Deserialize, Serialize};

/// A sequence of element names from the root (inclusive) to a node.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct Path {
    segments: Vec<String>,
}

impl Path {
    /// Path from explicit segments.
    pub fn new(segments: impl IntoIterator<Item = impl Into<String>>) -> Self {
        Path {
            segments: segments.into_iter().map(Into::into).collect(),
        }
    }

    /// The path of `id` within `schema`.
    pub fn of(schema: &Schema, id: NodeId) -> Self {
        let mut segments: Vec<String> = schema
            .ancestors(id)
            .into_iter()
            .map(|a| schema.node(a).name.clone())
            .collect();
        segments.reverse();
        segments.push(schema.node(id).name.clone());
        Path { segments }
    }

    /// Parse the `/a/b/c` spelling. Empty string or `/` is the empty path.
    pub fn parse(s: &str) -> Self {
        Path {
            segments: s
                .split('/')
                .filter(|seg| !seg.is_empty())
                .map(str::to_owned)
                .collect(),
        }
    }

    /// The path's segments, root first.
    pub fn segments(&self) -> &[String] {
        &self.segments
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the path has no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// The final segment (the element's own name), if any.
    pub fn leaf(&self) -> Option<&str> {
        self.segments.last().map(String::as_str)
    }

    /// Whether `self` is a (non-strict) prefix of `other`.
    pub fn is_prefix_of(&self, other: &Path) -> bool {
        other.segments.len() >= self.segments.len()
            && other.segments[..self.segments.len()] == self.segments[..]
    }

    /// Resolve this path inside `schema`: follow name-matched children from
    /// the root. Returns the first match in document order.
    pub fn resolve(&self, schema: &Schema) -> Option<NodeId> {
        let root = schema.root()?;
        let mut iter = self.segments.iter();
        let first = iter.next()?;
        if schema.node(root).name != *first {
            return None;
        }
        let mut cur = root;
        for seg in iter {
            cur = *schema
                .node(cur)
                .children
                .iter()
                .find(|&&c| schema.node(c).name == *seg)?;
        }
        Some(cur)
    }
}

impl std::fmt::Display for Path {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.segments.is_empty() {
            return f.write_str("/");
        }
        for seg in &self.segments {
            write!(f, "/{seg}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Node;

    fn schema() -> Schema {
        let mut s = Schema::new("bib");
        let root = s.add_root(Node::element("bib")).unwrap();
        let book = s.add_child(root, Node::element("book")).unwrap();
        s.add_child(book, Node::element("title")).unwrap();
        s.add_child(book, Node::element("author")).unwrap();
        let article = s.add_child(root, Node::element("article")).unwrap();
        s.add_child(article, Node::element("title")).unwrap();
        s
    }

    #[test]
    fn path_of_and_display() {
        let s = schema();
        let title = s.node_ids().nth(2).unwrap();
        let p = Path::of(&s, title);
        assert_eq!(p.to_string(), "/bib/book/title");
        assert_eq!(p.leaf(), Some("title"));
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn parse_display_roundtrip() {
        for text in ["/a", "/a/b/c", "/"] {
            let p = Path::parse(text);
            assert_eq!(p.to_string(), text);
        }
        assert_eq!(Path::parse(""), Path::default());
        assert_eq!(Path::parse("").to_string(), "/");
    }

    #[test]
    fn resolve_follows_names() {
        let s = schema();
        let p = Path::parse("/bib/book/title");
        let id = p.resolve(&s).unwrap();
        assert_eq!(Path::of(&s, id), p);
        // First match in document order: /bib/book/title, not article's.
        assert_eq!(s.depth(id), 2);
        assert!(Path::parse("/bib/journal").resolve(&s).is_none());
        assert!(Path::parse("/wrongroot").resolve(&s).is_none());
        assert!(Path::parse("/").resolve(&s).is_none());
    }

    #[test]
    fn prefix_relation() {
        let a = Path::parse("/bib/book");
        let b = Path::parse("/bib/book/title");
        assert!(a.is_prefix_of(&b));
        assert!(a.is_prefix_of(&a));
        assert!(!b.is_prefix_of(&a));
        assert!(Path::default().is_prefix_of(&a));
        assert!(!Path::parse("/bib/article").is_prefix_of(&b));
    }

    #[test]
    fn every_node_path_resolves_to_itself_or_earlier_sibling() {
        let s = schema();
        for id in s.node_ids() {
            let p = Path::of(&s, id);
            let resolved = p.resolve(&s).unwrap();
            // Same path (duplicate names resolve to first in doc order).
            assert_eq!(Path::of(&s, resolved), p);
        }
    }
}

//! Element declarations: names, kinds, primitive types, occurrence
//! constraints.

use serde::{Deserialize, Serialize};

/// Dense index of a node in a [`Schema`](crate::Schema) arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The arena index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Whether a declaration is an element or an attribute.
///
/// Attributes are modelled as leaf children with `NodeKind::Attribute`,
/// which is how most matchers flatten them anyway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum NodeKind {
    /// An XML element declaration.
    #[default]
    Element,
    /// An XML attribute declaration (always a leaf).
    Attribute,
}

/// The primitive value type of a leaf, or `Complex` for interior nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PrimitiveType {
    /// Interior node with element content.
    #[default]
    Complex,
    /// Character data.
    String,
    /// Integral number.
    Integer,
    /// Decimal number.
    Decimal,
    /// Calendar date.
    Date,
    /// Boolean.
    Boolean,
    /// Identifier / key.
    Id,
}

impl PrimitiveType {
    /// Lower-case name used by the text format.
    pub fn name(self) -> &'static str {
        match self {
            PrimitiveType::Complex => "complex",
            PrimitiveType::String => "string",
            PrimitiveType::Integer => "integer",
            PrimitiveType::Decimal => "decimal",
            PrimitiveType::Date => "date",
            PrimitiveType::Boolean => "boolean",
            PrimitiveType::Id => "id",
        }
    }

    /// Parse a type from its text-format name.
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "complex" => PrimitiveType::Complex,
            "string" => PrimitiveType::String,
            "integer" => PrimitiveType::Integer,
            "decimal" => PrimitiveType::Decimal,
            "date" => PrimitiveType::Date,
            "boolean" => PrimitiveType::Boolean,
            "id" => PrimitiveType::Id,
            _ => return None,
        })
    }

    /// Type-compatibility score in `[0,1]` used by objective functions:
    /// identical types 1.0, numeric-vs-numeric 0.8, anything-vs-string 0.6,
    /// complex-vs-leaf 0.2, otherwise 0.4.
    pub fn compatibility(self, other: Self) -> f64 {
        use PrimitiveType::*;
        if self == other {
            return 1.0;
        }
        match (self, other) {
            (Integer, Decimal) | (Decimal, Integer) => 0.8,
            (String, _) | (_, String) => 0.6,
            (Complex, _) | (_, Complex) => 0.2,
            _ => 0.4,
        }
    }
}

impl std::fmt::Display for PrimitiveType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Occurrence constraint `min..max` where `max = None` means unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Occurs {
    /// Minimum number of occurrences.
    pub min: u32,
    /// Maximum number of occurrences; `None` is unbounded (`*`).
    pub max: Option<u32>,
}

impl Occurs {
    /// Exactly one occurrence (`1..1`).
    pub const ONE: Occurs = Occurs {
        min: 1,
        max: Some(1),
    };
    /// Optional occurrence (`0..1`).
    pub const OPTIONAL: Occurs = Occurs {
        min: 0,
        max: Some(1),
    };
    /// One or more (`1..*`).
    pub const MANY: Occurs = Occurs { min: 1, max: None };
    /// Zero or more (`0..*`).
    pub const ANY: Occurs = Occurs { min: 0, max: None };

    /// Whether the constraint admits `n` occurrences.
    pub fn admits(self, n: u32) -> bool {
        n >= self.min && self.max.is_none_or(|m| n <= m)
    }

    /// Parse the text-format spelling `min..max` or `min..*`.
    pub fn from_spec(s: &str) -> Option<Self> {
        let (lo, hi) = s.split_once("..")?;
        let min: u32 = lo.parse().ok()?;
        let max = if hi == "*" {
            None
        } else {
            Some(hi.parse().ok()?)
        };
        if let Some(m) = max {
            if m < min {
                return None;
            }
        }
        Some(Occurs { min, max })
    }
}

impl Default for Occurs {
    fn default() -> Self {
        Occurs::ONE
    }
}

impl std::fmt::Display for Occurs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.max {
            Some(m) => write!(f, "{}..{}", self.min, m),
            None => write!(f, "{}..*", self.min),
        }
    }
}

/// One element/attribute declaration inside a schema arena.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Element or attribute name (an identifier, e.g. `orderLine`).
    pub name: String,
    /// Element vs attribute.
    pub kind: NodeKind,
    /// Value type (interior nodes are `Complex`).
    pub ty: PrimitiveType,
    /// Occurrence constraint relative to the parent.
    pub occurs: Occurs,
    /// Parent node; `None` only for the root.
    pub parent: Option<NodeId>,
    /// Children in document order.
    pub children: Vec<NodeId>,
}

impl Node {
    /// A fresh element node with the given name and defaults elsewhere.
    pub fn element(name: impl Into<String>) -> Self {
        Node {
            name: name.into(),
            kind: NodeKind::Element,
            ty: PrimitiveType::Complex,
            occurs: Occurs::ONE,
            parent: None,
            children: Vec::new(),
        }
    }

    /// Whether this node has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occurs_spec_roundtrip() {
        for spec in ["1..1", "0..1", "1..*", "0..*", "2..5"] {
            let o = Occurs::from_spec(spec).unwrap();
            assert_eq!(o.to_string(), spec);
        }
        assert_eq!(Occurs::from_spec("5..2"), None);
        assert_eq!(Occurs::from_spec("x..1"), None);
        assert_eq!(Occurs::from_spec("1"), None);
    }

    #[test]
    fn occurs_admits() {
        assert!(Occurs::ONE.admits(1));
        assert!(!Occurs::ONE.admits(0));
        assert!(!Occurs::ONE.admits(2));
        assert!(Occurs::ANY.admits(0));
        assert!(Occurs::ANY.admits(100));
        assert!(Occurs::MANY.admits(3));
        assert!(!Occurs::MANY.admits(0));
    }

    #[test]
    fn primitive_type_names_roundtrip() {
        use PrimitiveType::*;
        for t in [Complex, String, Integer, Decimal, Date, Boolean, Id] {
            assert_eq!(PrimitiveType::from_name(t.name()), Some(t));
        }
        assert_eq!(PrimitiveType::from_name("float"), None);
    }

    #[test]
    fn type_compatibility_ordering() {
        use PrimitiveType::*;
        assert_eq!(Integer.compatibility(Integer), 1.0);
        assert!(Integer.compatibility(Decimal) > Integer.compatibility(Date));
        assert!(String.compatibility(Date) > Complex.compatibility(Date));
        // Symmetric.
        assert_eq!(
            Integer.compatibility(Complex),
            Complex.compatibility(Integer)
        );
    }

    #[test]
    fn node_constructors() {
        let n = Node::element("book");
        assert_eq!(n.name, "book");
        assert!(n.is_leaf());
        assert_eq!(n.occurs, Occurs::ONE);
        assert_eq!(NodeId(4).index(), 4);
        assert_eq!(NodeId(4).to_string(), "n4");
    }
}

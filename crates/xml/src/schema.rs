//! The arena schema tree.

use crate::error::XmlError;
use crate::node::{Node, NodeId};
use serde::{Deserialize, Serialize};

/// An XML schema: a named tree of element declarations stored in an arena.
///
/// Nodes are addressed by dense [`NodeId`]s; the tree shape is kept
/// consistent by construction (children are only added through
/// [`Schema::add_child`]) and checkable after the fact with
/// [`Schema::validate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    name: String,
    nodes: Vec<Node>,
    root: Option<NodeId>,
}

impl Schema {
    /// An empty schema with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Schema {
            name: name.into(),
            nodes: Vec::new(),
            root: None,
        }
    }

    /// The schema's name (unique within a repository).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the schema.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the schema has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The root node id, if a root was added.
    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    /// Install `node` as root. Fails if a root exists already.
    pub fn add_root(&mut self, node: Node) -> Result<NodeId, XmlError> {
        if self.root.is_some() {
            return Err(XmlError::RootAlreadySet);
        }
        let id = NodeId(self.nodes.len() as u32);
        let mut node = node;
        node.parent = None;
        self.nodes.push(node);
        self.root = Some(id);
        Ok(id)
    }

    /// Append `node` as the last child of `parent`.
    pub fn add_child(&mut self, parent: NodeId, node: Node) -> Result<NodeId, XmlError> {
        if parent.index() >= self.nodes.len() {
            return Err(XmlError::UnknownNode(parent.index()));
        }
        let id = NodeId(self.nodes.len() as u32);
        let mut node = node;
        node.parent = Some(parent);
        self.nodes.push(node);
        self.nodes[parent.index()].children.push(id);
        Ok(id)
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Borrow a node mutably. Structural fields (`parent`, `children`)
    /// should not be edited through this; use the construction API.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Borrow a node, returning an error for out-of-range ids.
    pub fn try_node(&self, id: NodeId) -> Result<&Node, XmlError> {
        self.nodes
            .get(id.index())
            .ok_or(XmlError::UnknownNode(id.index()))
    }

    /// All node ids in arena (insertion) order.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Ids of all leaf nodes.
    pub fn leaves(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(|&id| self.node(id).is_leaf())
    }

    /// Depth of `id` (root has depth 0).
    pub fn depth(&self, id: NodeId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.node(cur).parent {
            d += 1;
            cur = p;
        }
        d
    }

    /// The chain of ancestors of `id`, nearest first, excluding `id`.
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = id;
        while let Some(p) = self.node(cur).parent {
            out.push(p);
            cur = p;
        }
        out
    }

    /// Whether `a` is an ancestor of `b` (strictly above it).
    pub fn is_ancestor(&self, a: NodeId, b: NodeId) -> bool {
        let mut cur = b;
        while let Some(p) = self.node(cur).parent {
            if p == a {
                return true;
            }
            cur = p;
        }
        false
    }

    /// Number of nodes in the subtree rooted at `id` (including `id`).
    pub fn subtree_size(&self, id: NodeId) -> usize {
        let mut count = 1;
        for &c in &self.node(id).children {
            count += self.subtree_size(c);
        }
        count
    }

    /// Tree equality that ignores arena id assignment: two schemas are
    /// structurally equal when their names match and their trees match
    /// node-for-node in document order (name, kind, type, occurs).
    pub fn structural_eq(&self, other: &Schema) -> bool {
        fn node_eq(a: &Schema, an: NodeId, b: &Schema, bn: NodeId) -> bool {
            let (x, y) = (a.node(an), b.node(bn));
            x.name == y.name
                && x.kind == y.kind
                && x.ty == y.ty
                && x.occurs == y.occurs
                && x.children.len() == y.children.len()
                && x.children
                    .iter()
                    .zip(y.children.iter())
                    .all(|(&ca, &cb)| node_eq(a, ca, b, cb))
        }
        if self.name != other.name {
            return false;
        }
        match (self.root, other.root) {
            (None, None) => true,
            (Some(a), Some(b)) => node_eq(self, a, other, b),
            _ => false,
        }
    }

    /// Check all structural invariants; returns the first violation.
    pub fn validate(&self) -> Result<(), XmlError> {
        match self.root {
            None => {
                if !self.nodes.is_empty() {
                    return Err(XmlError::Invariant("nodes exist but no root".into()));
                }
                return Ok(());
            }
            Some(r) => {
                if r.index() >= self.nodes.len() {
                    return Err(XmlError::Invariant("root id out of range".into()));
                }
                if self.node(r).parent.is_some() {
                    return Err(XmlError::Invariant("root has a parent".into()));
                }
            }
        }
        let mut seen_as_child = vec![false; self.nodes.len()];
        for id in self.node_ids() {
            for &c in &self.node(id).children {
                if c.index() >= self.nodes.len() {
                    return Err(XmlError::Invariant(format!("child {c} out of range")));
                }
                if self.node(c).parent != Some(id) {
                    return Err(XmlError::Invariant(format!(
                        "child {c} of {id} has mismatched parent pointer"
                    )));
                }
                if seen_as_child[c.index()] {
                    return Err(XmlError::Invariant(format!("{c} appears as child twice")));
                }
                seen_as_child[c.index()] = true;
            }
        }
        for id in self.node_ids() {
            let is_root = Some(id) == self.root;
            if !is_root && !seen_as_child[id.index()] {
                return Err(XmlError::Invariant(format!("{id} unreachable from root")));
            }
            if is_root && seen_as_child[id.index()] {
                return Err(XmlError::Invariant("root appears as a child".into()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Node, Occurs, PrimitiveType};

    fn tiny() -> Schema {
        let mut s = Schema::new("bib");
        let root = s.add_root(Node::element("bib")).unwrap();
        let book = s.add_child(root, Node::element("book")).unwrap();
        let mut title = Node::element("title");
        title.ty = PrimitiveType::String;
        s.add_child(book, title).unwrap();
        let mut year = Node::element("year");
        year.ty = PrimitiveType::Integer;
        year.occurs = Occurs::OPTIONAL;
        s.add_child(book, year).unwrap();
        s
    }

    #[test]
    fn construction_and_lookup() {
        let s = tiny();
        assert_eq!(s.len(), 4);
        assert_eq!(s.name(), "bib");
        let root = s.root().unwrap();
        assert_eq!(s.node(root).name, "bib");
        assert_eq!(s.node(root).children.len(), 1);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn double_root_rejected() {
        let mut s = tiny();
        assert_eq!(
            s.add_root(Node::element("x")),
            Err(XmlError::RootAlreadySet)
        );
    }

    #[test]
    fn child_of_unknown_parent_rejected() {
        let mut s = Schema::new("s");
        assert_eq!(
            s.add_child(NodeId(0), Node::element("x")),
            Err(XmlError::UnknownNode(0))
        );
    }

    #[test]
    fn depth_ancestors_subtree() {
        let s = tiny();
        let ids: Vec<NodeId> = s.node_ids().collect();
        let (root, book, title) = (ids[0], ids[1], ids[2]);
        assert_eq!(s.depth(root), 0);
        assert_eq!(s.depth(book), 1);
        assert_eq!(s.depth(title), 2);
        assert_eq!(s.ancestors(title), vec![book, root]);
        assert!(s.is_ancestor(root, title));
        assert!(s.is_ancestor(book, title));
        assert!(!s.is_ancestor(title, book));
        assert!(!s.is_ancestor(title, title));
        assert_eq!(s.subtree_size(root), 4);
        assert_eq!(s.subtree_size(book), 3);
        assert_eq!(s.subtree_size(title), 1);
    }

    #[test]
    fn leaves_iterator() {
        let s = tiny();
        let leaves: Vec<String> = s.leaves().map(|id| s.node(id).name.clone()).collect();
        assert_eq!(leaves, vec!["title", "year"]);
    }

    #[test]
    fn validate_catches_corruption() {
        let mut s = tiny();
        // Corrupt a parent pointer through node_mut (documented misuse).
        let ids: Vec<NodeId> = s.node_ids().collect();
        s.node_mut(ids[2]).parent = Some(ids[0]);
        assert!(matches!(s.validate(), Err(XmlError::Invariant(_))));
    }

    #[test]
    fn empty_schema_validates() {
        assert!(Schema::new("e").validate().is_ok());
        assert!(Schema::new("e").is_empty());
        assert_eq!(Schema::new("e").root(), None);
    }

    #[test]
    fn try_node_bounds() {
        let s = tiny();
        assert!(s.try_node(NodeId(0)).is_ok());
        assert!(s.try_node(NodeId(99)).is_err());
    }
}

//! Error type shared by the schema model and its text-format parser.

/// Errors produced while building, mutating, or parsing schemas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// A node id does not exist in the arena.
    UnknownNode(usize),
    /// An operation that requires an empty schema found an existing root.
    RootAlreadySet,
    /// An operation that requires a root found none.
    NoRoot,
    /// Parse error with 1-based line and a message.
    Parse {
        /// 1-based input line of the error.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// A schema invariant was violated (message explains which).
    Invariant(String),
}

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XmlError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            XmlError::RootAlreadySet => write!(f, "schema already has a root element"),
            XmlError::NoRoot => write!(f, "schema has no root element"),
            XmlError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            XmlError::Invariant(msg) => write!(f, "schema invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(XmlError::UnknownNode(3).to_string(), "unknown node id 3");
        assert_eq!(XmlError::NoRoot.to_string(), "schema has no root element");
        let p = XmlError::Parse {
            line: 7,
            message: "bad tag".into(),
        };
        assert!(p.to_string().contains("line 7"));
        assert!(p.to_string().contains("bad tag"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<XmlError>();
    }
}

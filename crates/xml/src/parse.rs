//! Recursive-descent parser for the compact XML text format emitted by
//! [`crate::serialize`].
//!
//! The grammar (whitespace-insensitive between tokens):
//!
//! ```text
//! schema   := '<schema' attrs '>' element? '</schema>'
//! element  := '<' tagname attrs ('/>' | '>' element* '</' tagname '>')
//! tagname  := 'element' | 'attribute'
//! attrs    := (name '=' '"' value '"')*
//! ```
//!
//! Errors carry 1-based line numbers.

use crate::error::XmlError;
use crate::node::{Node, NodeId, NodeKind, Occurs, PrimitiveType};
use crate::schema::Schema;
use std::collections::HashMap;

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
}

/// A start tag with its attributes; `self_closing` distinguishes `<x/>`.
#[derive(Debug)]
struct StartTag {
    name: String,
    attrs: HashMap<String, String>,
    self_closing: bool,
}

#[derive(Debug)]
enum Token {
    Start(StartTag),
    End(String),
    Eof,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer {
            chars: input.chars().peekable(),
            line: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> XmlError {
        XmlError::Parse {
            line: self.line,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        if c == Some('\n') {
            self.line += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn read_name(&mut self) -> String {
        let mut name = String::new();
        while matches!(self.chars.peek(), Some(c) if c.is_alphanumeric() || *c == '_' || *c == '-')
        {
            name.push(self.bump().unwrap());
        }
        name
    }

    fn read_quoted(&mut self) -> Result<String, XmlError> {
        if self.bump() != Some('"') {
            return Err(self.err("expected opening quote"));
        }
        let mut value = String::new();
        loop {
            match self.bump() {
                Some('"') => break,
                Some('&') => {
                    let mut entity = String::new();
                    loop {
                        match self.bump() {
                            Some(';') => break,
                            Some(c) => entity.push(c),
                            None => return Err(self.err("unterminated entity")),
                        }
                    }
                    value.push(match entity.as_str() {
                        "amp" => '&',
                        "lt" => '<',
                        "gt" => '>',
                        "quot" => '"',
                        "apos" => '\'',
                        other => return Err(self.err(format!("unknown entity &{other};"))),
                    });
                }
                Some(c) => value.push(c),
                None => return Err(self.err("unterminated attribute value")),
            }
        }
        Ok(value)
    }

    fn next_token(&mut self) -> Result<Token, XmlError> {
        self.skip_ws();
        match self.chars.peek() {
            None => Ok(Token::Eof),
            Some('<') => {
                self.bump();
                if self.chars.peek() == Some(&'/') {
                    self.bump();
                    let name = self.read_name();
                    self.skip_ws();
                    if self.bump() != Some('>') {
                        return Err(self.err("expected '>' after end tag"));
                    }
                    return Ok(Token::End(name));
                }
                let name = self.read_name();
                if name.is_empty() {
                    return Err(self.err("expected tag name after '<'"));
                }
                let mut attrs = HashMap::new();
                loop {
                    self.skip_ws();
                    match self.chars.peek() {
                        Some('>') => {
                            self.bump();
                            return Ok(Token::Start(StartTag {
                                name,
                                attrs,
                                self_closing: false,
                            }));
                        }
                        Some('/') => {
                            self.bump();
                            if self.bump() != Some('>') {
                                return Err(self.err("expected '>' after '/'"));
                            }
                            return Ok(Token::Start(StartTag {
                                name,
                                attrs,
                                self_closing: true,
                            }));
                        }
                        Some(c) if c.is_alphanumeric() || *c == '_' => {
                            let attr_name = self.read_name();
                            self.skip_ws();
                            if self.bump() != Some('=') {
                                return Err(
                                    self.err(format!("expected '=' after attribute {attr_name}"))
                                );
                            }
                            self.skip_ws();
                            let value = self.read_quoted()?;
                            if attrs.insert(attr_name.clone(), value).is_some() {
                                return Err(self.err(format!("duplicate attribute {attr_name}")));
                            }
                        }
                        Some(c) => {
                            let c = *c;
                            return Err(self.err(format!("unexpected character {c:?} in tag")));
                        }
                        None => return Err(self.err("unterminated tag")),
                    }
                }
            }
            Some(c) => {
                let c = *c;
                Err(self.err(format!("unexpected character {c:?}; expected '<'")))
            }
        }
    }
}

fn node_from_tag(lexer: &Lexer<'_>, tag: &StartTag) -> Result<Node, XmlError> {
    let kind = match tag.name.as_str() {
        "element" => NodeKind::Element,
        "attribute" => NodeKind::Attribute,
        other => return Err(lexer.err(format!("unexpected tag <{other}>"))),
    };
    let name = tag
        .attrs
        .get("name")
        .ok_or_else(|| lexer.err("missing name attribute"))?
        .clone();
    let ty = match tag.attrs.get("type") {
        Some(t) => {
            PrimitiveType::from_name(t).ok_or_else(|| lexer.err(format!("unknown type {t:?}")))?
        }
        None => PrimitiveType::Complex,
    };
    let occurs = match tag.attrs.get("occurs") {
        Some(o) => {
            Occurs::from_spec(o).ok_or_else(|| lexer.err(format!("invalid occurs spec {o:?}")))?
        }
        None => Occurs::ONE,
    };
    let mut node = Node::element(name);
    node.kind = kind;
    node.ty = ty;
    node.occurs = occurs;
    Ok(node)
}

/// Parse children of `parent` until the matching end tag for `parent_tag`.
fn parse_children(
    lexer: &mut Lexer<'_>,
    schema: &mut Schema,
    parent: NodeId,
    parent_tag: &str,
) -> Result<(), XmlError> {
    loop {
        match lexer.next_token()? {
            Token::Start(tag) => {
                let node = node_from_tag(lexer, &tag)?;
                let id = schema
                    .add_child(parent, node)
                    .map_err(|e| lexer.err(e.to_string()))?;
                if !tag.self_closing {
                    parse_children(lexer, schema, id, &tag.name)?;
                }
            }
            Token::End(name) if name == parent_tag => return Ok(()),
            Token::End(name) => {
                return Err(lexer.err(format!(
                    "mismatched end tag </{name}>, expected </{parent_tag}>"
                )))
            }
            Token::Eof => return Err(lexer.err(format!("missing end tag </{parent_tag}>"))),
        }
    }
}

/// Parse a schema from the compact text format.
///
/// ```
/// let text = "<schema name=\"bib\">\n  <element name=\"bib\"/>\n</schema>";
/// let schema = smx_xml::parse_schema(text).unwrap();
/// assert_eq!(schema.name(), "bib");
/// assert_eq!(schema.len(), 1);
/// ```
pub fn parse_schema(input: &str) -> Result<Schema, XmlError> {
    let mut lexer = Lexer::new(input);
    let schema_tag = match lexer.next_token()? {
        Token::Start(tag) if tag.name == "schema" => tag,
        Token::Start(tag) => {
            return Err(lexer.err(format!("expected <schema>, found <{}>", tag.name)))
        }
        Token::End(name) => return Err(lexer.err(format!("expected <schema>, found </{name}>"))),
        Token::Eof => return Err(lexer.err("empty input")),
    };
    let name = schema_tag
        .attrs
        .get("name")
        .ok_or_else(|| lexer.err("schema tag missing name attribute"))?
        .clone();
    let mut schema = Schema::new(name);
    if schema_tag.self_closing {
        return match lexer.next_token()? {
            Token::Eof => Ok(schema),
            _ => Err(lexer.err("content after </schema>")),
        };
    }
    // Optional single root element, then </schema>.
    loop {
        match lexer.next_token()? {
            Token::Start(tag) => {
                if schema.root().is_some() {
                    return Err(lexer.err("multiple root elements"));
                }
                let node = node_from_tag(&lexer, &tag)?;
                let root = schema
                    .add_root(node)
                    .map_err(|e| lexer.err(e.to_string()))?;
                if !tag.self_closing {
                    parse_children(&mut lexer, &mut schema, root, &tag.name)?;
                }
            }
            Token::End(name) if name == "schema" => break,
            Token::End(name) => return Err(lexer.err(format!("mismatched end tag </{name}>"))),
            Token::Eof => return Err(lexer.err("missing </schema>")),
        }
    }
    // Trailing garbage check.
    match lexer.next_token()? {
        Token::Eof => Ok(schema),
        _ => Err(lexer.err("content after </schema>")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SchemaBuilder;
    use crate::node::PrimitiveType;
    use crate::serialize::schema_to_string;

    #[test]
    fn roundtrip_nested() {
        let original = SchemaBuilder::new("shop")
            .root("shop")
            .child("order", |o| {
                o.occurs(Occurs::ANY)
                    .attribute("id", PrimitiveType::Id)
                    .leaf("date", PrimitiveType::Date)
                    .child("line", |l| {
                        l.occurs(Occurs::MANY)
                            .leaf("sku", PrimitiveType::String)
                            .leaf("qty", PrimitiveType::Integer)
                    })
            })
            .build();
        let text = schema_to_string(&original);
        let parsed = parse_schema(&text).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn parses_minimal_forms() {
        let s = parse_schema("<schema name=\"e\"></schema>").unwrap();
        assert!(s.is_empty());
        let s = parse_schema("<schema name=\"e\"/>").unwrap();
        assert!(s.is_empty());
        let s = parse_schema("<schema name=\"x\"><element name=\"r\"/></schema>").unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.node(s.root().unwrap()).ty, PrimitiveType::Complex);
    }

    #[test]
    fn entity_unescaping() {
        let s =
            parse_schema("<schema name=\"a&amp;b\"><element name=\"x&lt;y\"/></schema>").unwrap();
        assert_eq!(s.name(), "a&b");
        assert_eq!(s.node(s.root().unwrap()).name, "x<y");
    }

    #[test]
    fn error_cases_carry_lines() {
        let cases = [
            ("", "empty input"),
            ("<schema name=\"x\">", "missing </schema>"),
            ("<bogus name=\"x\"/>", "expected <schema>"),
            ("<schema name=\"x\"><element/></schema>", "missing name"),
            (
                "<schema name=\"x\"><element name=\"a\" type=\"float\"/></schema>",
                "unknown type",
            ),
            (
                "<schema name=\"x\"><element name=\"a\" occurs=\"5..2\"/></schema>",
                "invalid occurs",
            ),
            (
                "<schema name=\"x\"><element name=\"a\"/><element name=\"b\"/></schema>",
                "multiple root",
            ),
            (
                "<schema name=\"x\"><element name=\"a\"></schema>",
                "mismatched end tag",
            ),
            ("<schema name=\"x\"/>junk", "unexpected character"),
            ("<schema name=\"x\"/><element name=\"y\"/>", "content after"),
            ("<schema name=\"x\" name=\"y\"/>", "duplicate attribute"),
        ];
        for (input, needle) in cases {
            let err = parse_schema(input).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains(needle),
                "input {input:?}: {msg:?} missing {needle:?}"
            );
        }
    }

    #[test]
    fn line_numbers_in_errors() {
        let input = "<schema name=\"x\">\n  <element name=\"a\">\n  </wrong>\n</schema>";
        match parse_schema(input).unwrap_err() {
            XmlError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn whitespace_insensitive() {
        let dense =
            "<schema name=\"x\"><element name=\"r\"><element name=\"c\"/></element></schema>";
        let spaced = "<schema  name = \"x\" >\n\n  <element  name=\"r\" >\n    <element name=\"c\" />\n  </element>\n</schema>\n";
        assert_eq!(parse_schema(dense).unwrap(), parse_schema(spaced).unwrap());
    }
}

//! Tree traversal helpers.

use crate::node::NodeId;
use crate::schema::Schema;

/// Node ids in pre-order (parent before children, document order).
///
/// Returns an empty vector for a schema without a root.
pub fn preorder(schema: &Schema) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(schema.len());
    let Some(root) = schema.root() else {
        return out;
    };
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        out.push(id);
        // Push children reversed so the first child is visited first.
        for &c in schema.node(id).children.iter().rev() {
            stack.push(c);
        }
    }
    out
}

/// Node ids in post-order (children before parent).
pub fn postorder(schema: &Schema) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(schema.len());
    let Some(root) = schema.root() else {
        return out;
    };
    fn rec(schema: &Schema, id: NodeId, out: &mut Vec<NodeId>) {
        for &c in &schema.node(id).children {
            rec(schema, c, out);
        }
        out.push(id);
    }
    rec(schema, root, &mut out);
    out
}

/// Ids of all nodes whose name equals `name`.
pub fn find_by_name<'a>(schema: &'a Schema, name: &'a str) -> impl Iterator<Item = NodeId> + 'a {
    schema
        .node_ids()
        .filter(move |&id| schema.node(id).name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SchemaBuilder;
    use crate::node::PrimitiveType;

    fn sample() -> Schema {
        SchemaBuilder::new("t")
            .root("r")
            .child("a", |a| {
                a.leaf("x", PrimitiveType::String)
                    .leaf("y", PrimitiveType::String)
            })
            .child("b", |b| b.leaf("x", PrimitiveType::Integer))
            .build()
    }

    fn names(schema: &Schema, ids: &[NodeId]) -> Vec<String> {
        ids.iter().map(|&id| schema.node(id).name.clone()).collect()
    }

    #[test]
    fn preorder_is_document_order() {
        let s = sample();
        assert_eq!(names(&s, &preorder(&s)), vec!["r", "a", "x", "y", "b", "x"]);
    }

    #[test]
    fn postorder_children_first() {
        let s = sample();
        assert_eq!(
            names(&s, &postorder(&s)),
            vec!["x", "y", "a", "x", "b", "r"]
        );
    }

    #[test]
    fn traversals_cover_all_nodes_once() {
        let s = sample();
        for order in [preorder(&s), postorder(&s)] {
            let mut sorted: Vec<_> = order.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), s.len());
        }
    }

    #[test]
    fn empty_schema_traversals() {
        let s = Schema::new("e");
        assert!(preorder(&s).is_empty());
        assert!(postorder(&s).is_empty());
    }

    #[test]
    fn find_by_name_finds_duplicates() {
        let s = sample();
        assert_eq!(find_by_name(&s, "x").count(), 2);
        assert_eq!(find_by_name(&s, "r").count(), 1);
        assert_eq!(find_by_name(&s, "zz").count(), 0);
    }
}

//! Fluent schema construction.
//!
//! ```
//! use smx_xml::{SchemaBuilder, PrimitiveType, Occurs};
//!
//! let schema = SchemaBuilder::new("bib")
//!     .root("bib")
//!     .child("book", |b| {
//!         b.occurs(Occurs::MANY)
//!             .leaf("title", PrimitiveType::String)
//!             .leaf("year", PrimitiveType::Integer)
//!             .child("author", |a| {
//!                 a.leaf("first", PrimitiveType::String)
//!                     .leaf("last", PrimitiveType::String)
//!             })
//!     })
//!     .build();
//! assert_eq!(schema.len(), 7);
//! assert!(schema.validate().is_ok());
//! ```

use crate::node::{Node, NodeId, NodeKind, Occurs, PrimitiveType};
use crate::schema::Schema;

/// Top-level builder; create with [`SchemaBuilder::new`], set the root with
/// [`root`](Self::root), then add children through the returned scope.
pub struct SchemaBuilder {
    schema: Schema,
}

impl SchemaBuilder {
    /// Start building a schema with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        SchemaBuilder {
            schema: Schema::new(name),
        }
    }

    /// Install the root element and open its scope.
    pub fn root(mut self, name: impl Into<String>) -> NodeScope {
        let root = self
            .schema
            .add_root(Node::element(name))
            .expect("builder installs exactly one root");
        NodeScope {
            schema: self.schema,
            current: root,
        }
    }
}

/// A scope positioned at one node; children are added to it.
pub struct NodeScope {
    schema: Schema,
    current: NodeId,
}

impl NodeScope {
    /// Set the occurrence constraint of the current node.
    pub fn occurs(mut self, occurs: Occurs) -> Self {
        self.schema.node_mut(self.current).occurs = occurs;
        self
    }

    /// Set the primitive type of the current node.
    pub fn ty(mut self, ty: PrimitiveType) -> Self {
        self.schema.node_mut(self.current).ty = ty;
        self
    }

    /// Add a leaf element child with the given type.
    pub fn leaf(mut self, name: impl Into<String>, ty: PrimitiveType) -> Self {
        let mut node = Node::element(name);
        node.ty = ty;
        self.schema
            .add_child(self.current, node)
            .expect("current node exists");
        self
    }

    /// Add an attribute child with the given type.
    pub fn attribute(mut self, name: impl Into<String>, ty: PrimitiveType) -> Self {
        let mut node = Node::element(name);
        node.kind = NodeKind::Attribute;
        node.ty = ty;
        node.occurs = Occurs::OPTIONAL;
        self.schema
            .add_child(self.current, node)
            .expect("current node exists");
        self
    }

    /// Add a complex child and configure it inside `f`.
    pub fn child(
        mut self,
        name: impl Into<String>,
        f: impl FnOnce(NodeScope) -> NodeScope,
    ) -> Self {
        let id = self
            .schema
            .add_child(self.current, Node::element(name))
            .expect("current node exists");
        let inner = f(NodeScope {
            schema: self.schema,
            current: id,
        });
        NodeScope {
            schema: inner.schema,
            current: self.current,
        }
    }

    /// Finish building and return the schema.
    pub fn build(self) -> Schema {
        debug_assert!(self.schema.validate().is_ok());
        self.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::Path;

    #[test]
    fn builds_nested_structure() {
        let s = SchemaBuilder::new("shop")
            .root("shop")
            .child("order", |o| {
                o.occurs(Occurs::ANY)
                    .attribute("id", PrimitiveType::Id)
                    .leaf("date", PrimitiveType::Date)
                    .child("line", |l| {
                        l.occurs(Occurs::MANY)
                            .leaf("sku", PrimitiveType::String)
                            .leaf("qty", PrimitiveType::Integer)
                    })
            })
            .build();
        assert_eq!(s.len(), 7);
        assert!(s.validate().is_ok());
        let line_qty = Path::parse("/shop/order/line/qty").resolve(&s).unwrap();
        assert_eq!(s.node(line_qty).ty, PrimitiveType::Integer);
        let order = Path::parse("/shop/order").resolve(&s).unwrap();
        assert_eq!(s.node(order).occurs, Occurs::ANY);
        let id = Path::parse("/shop/order/id").resolve(&s).unwrap();
        assert_eq!(s.node(id).kind, NodeKind::Attribute);
        assert_eq!(s.node(id).occurs, Occurs::OPTIONAL);
    }

    #[test]
    fn scope_returns_to_parent_after_child() {
        let s = SchemaBuilder::new("t")
            .root("r")
            .child("a", |a| a.leaf("x", PrimitiveType::String))
            .child("b", |b| b)
            .build();
        // Both a and b must be children of the root.
        let root = s.root().unwrap();
        let names: Vec<&str> = s
            .node(root)
            .children
            .iter()
            .map(|&c| s.node(c).name.as_str())
            .collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn root_type_and_occurs_settable() {
        let s = SchemaBuilder::new("t")
            .root("r")
            .ty(PrimitiveType::String)
            .build();
        let root = s.root().unwrap();
        assert_eq!(s.node(root).ty, PrimitiveType::String);
    }
}

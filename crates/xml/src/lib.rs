#![warn(missing_docs)]

//! Arena-based XML schema model.
//!
//! The matching problem of the paper pits a small user-defined *personal
//! schema* against a large repository of XML schemas. This crate provides
//! the schema data model both sides share:
//!
//! * [`schema`] — an arena tree of element declarations ([`Schema`],
//!   [`NodeId`]),
//! * [`node`] — per-element data: name, primitive type, occurrence
//!   constraints,
//! * [`path`] — root-to-element paths and path resolution,
//! * [`builder`] — fluent construction of schemas,
//! * [`parse`] / [`serialize`] — a compact XML text format with a
//!   hand-rolled parser, so repositories can be persisted and inspected,
//! * [`visit`] — pre/post-order traversal and search helpers,
//! * [`stats`] — structural statistics (size, depth, fan-out).
//!
//! Invariants maintained by [`Schema`]: exactly one root; every non-root
//! node has a parent; child lists and parent pointers agree; node ids are
//! dense indices into the arena. `Schema::validate` checks all of them and
//! is exercised by the property tests.

pub mod builder;
pub mod error;
pub mod node;
pub mod parse;
pub mod path;
pub mod schema;
pub mod serialize;
pub mod stats;
pub mod visit;

pub use builder::SchemaBuilder;
pub use error::XmlError;
pub use node::{Node, NodeId, NodeKind, Occurs, PrimitiveType};
pub use parse::parse_schema;
pub use path::Path;
pub use schema::Schema;
pub use serialize::schema_to_string;
pub use stats::SchemaStats;
pub use visit::{postorder, preorder};

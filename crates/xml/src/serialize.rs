//! Writer for the compact XML text format.
//!
//! The format is a strict XML subset, one element per line, two-space
//! indentation:
//!
//! ```xml
//! <schema name="bib">
//!   <element name="book" type="complex" occurs="1..*">
//!     <element name="title" type="string" occurs="1..1"/>
//!   </element>
//! </schema>
//! ```
//!
//! Attribute declarations use the tag `<attribute .../>`. The parser in
//! [`crate::parse`] accepts exactly what this writer emits (plus arbitrary
//! whitespace), and `parse(serialize(s)) == s` is property-tested.

use crate::node::{NodeId, NodeKind};
use crate::schema::Schema;
use std::fmt::Write as _;

/// Escape the five XML special characters in an attribute value.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

fn write_node(schema: &Schema, id: NodeId, depth: usize, out: &mut String) {
    let node = schema.node(id);
    let tag = match node.kind {
        NodeKind::Element => "element",
        NodeKind::Attribute => "attribute",
    };
    let indent = "  ".repeat(depth);
    let _ = write!(
        out,
        "{indent}<{tag} name=\"{}\" type=\"{}\" occurs=\"{}\"",
        escape(&node.name),
        node.ty.name(),
        node.occurs
    );
    if node.children.is_empty() {
        out.push_str("/>\n");
    } else {
        out.push_str(">\n");
        for &c in &node.children {
            write_node(schema, c, depth + 1, out);
        }
        let _ = writeln!(out, "{indent}</{tag}>");
    }
}

/// Serialize a schema to the compact text format.
pub fn schema_to_string(schema: &Schema) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "<schema name=\"{}\">", escape(schema.name()));
    if let Some(root) = schema.root() {
        write_node(schema, root, 1, &mut out);
    }
    out.push_str("</schema>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SchemaBuilder;
    use crate::node::{Occurs, PrimitiveType};

    #[test]
    fn serializes_nested_schema() {
        let s = SchemaBuilder::new("bib")
            .root("bib")
            .child("book", |b| {
                b.occurs(Occurs::MANY).leaf("title", PrimitiveType::String)
            })
            .build();
        let text = schema_to_string(&s);
        assert!(text.contains("<schema name=\"bib\">"));
        assert!(text.contains("<element name=\"book\" type=\"complex\" occurs=\"1..*\">"));
        assert!(text.contains("    <element name=\"title\" type=\"string\" occurs=\"1..1\"/>"));
        assert!(text.ends_with("</schema>\n"));
    }

    #[test]
    fn escapes_special_characters() {
        assert_eq!(escape("a<b&c>\"d'"), "a&lt;b&amp;c&gt;&quot;d&apos;");
        let mut s = crate::Schema::new("we\"ird");
        s.add_root(crate::Node::element("r&d")).unwrap();
        let text = schema_to_string(&s);
        assert!(text.contains("we&quot;ird"));
        assert!(text.contains("r&amp;d"));
    }

    #[test]
    fn empty_schema() {
        let s = crate::Schema::new("empty");
        assert_eq!(schema_to_string(&s), "<schema name=\"empty\">\n</schema>\n");
    }

    #[test]
    fn attribute_nodes_use_attribute_tag() {
        let s = SchemaBuilder::new("t")
            .root("r")
            .attribute("id", PrimitiveType::Id)
            .build();
        assert!(
            schema_to_string(&s).contains("<attribute name=\"id\" type=\"id\" occurs=\"0..1\"/>")
        );
    }
}

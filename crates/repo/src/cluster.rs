//! Element clustering over a repository.
//!
//! Two methods with the same output type:
//!
//! * [`greedy_clustering`] — single-pass leader clustering: each element
//!   joins the first cluster whose centroid is at least `threshold`
//!   similar, else founds a new one. `O(n·c)`; this is the rough-but-fast
//!   method a scalable matcher uses online.
//! * [`agglomerative_clustering`] — average-linkage bottom-up merging to a
//!   target cluster count. `O(n³)` reference implementation for quality
//!   comparisons and the clustering ablation bench.
//!
//! Cluster quality is summarised by [`Clustering::mean_intra_similarity`]
//! (cohesion) and ranked against a query with [`Clustering::rank_against`].

use crate::feature::{element_features, ElementFeatures};
use crate::repository::{ElementRef, Repository};
use serde::{Deserialize, Serialize};

/// One cluster: members plus their centroid feature bag.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Cluster {
    /// The elements in this cluster.
    pub members: Vec<ElementRef>,
    /// Sum of member feature bags (cosine against it acts as an
    /// average-linkage approximation).
    pub centroid: ElementFeatures,
}

impl Cluster {
    fn singleton(eref: ElementRef, features: ElementFeatures) -> Self {
        Cluster {
            members: vec![eref],
            centroid: features,
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the cluster is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// A complete clustering of a repository's elements.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Clustering {
    clusters: Vec<Cluster>,
}

impl Clustering {
    /// The clusters, in construction order.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether there are no clusters.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Total elements across clusters.
    pub fn total_members(&self) -> usize {
        self.clusters.iter().map(Cluster::len).sum()
    }

    /// Mean pairwise member-to-centroid similarity — a cheap cohesion
    /// measure in `[0, 1]` (1 = perfectly tight clusters).
    pub fn mean_intra_similarity(&self, repo: &Repository) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for c in &self.clusters {
            for &m in &c.members {
                total += element_features(repo, m).cosine(&c.centroid);
                count += 1;
            }
        }
        if count == 0 {
            1.0
        } else {
            total / count as f64
        }
    }

    /// Rank cluster indices by centroid similarity to `query`, best first.
    pub fn rank_against(&self, query: &ElementFeatures) -> Vec<(usize, f64)> {
        let mut ranked: Vec<(usize, f64)> = self
            .clusters
            .iter()
            .enumerate()
            .map(|(i, c)| (i, query.cosine(&c.centroid)))
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        ranked
    }
}

/// Single-pass leader clustering at a similarity `threshold` in `[0, 1]`.
pub fn greedy_clustering(repo: &Repository, threshold: f64) -> Clustering {
    let mut clusters: Vec<Cluster> = Vec::new();
    for eref in repo.elements() {
        let features = element_features(repo, eref);
        let mut best: Option<(usize, f64)> = None;
        for (i, c) in clusters.iter().enumerate() {
            let sim = features.cosine(&c.centroid);
            if sim >= threshold && best.is_none_or(|(_, b)| sim > b) {
                best = Some((i, sim));
            }
        }
        match best {
            Some((i, _)) => {
                clusters[i].members.push(eref);
                clusters[i].centroid.merge(&features);
            }
            None => clusters.push(Cluster::singleton(eref, features)),
        }
    }
    Clustering { clusters }
}

/// Average-linkage agglomerative clustering down to `target` clusters.
pub fn agglomerative_clustering(repo: &Repository, target: usize) -> Clustering {
    let elements: Vec<ElementRef> = repo.elements().collect();
    let features: Vec<ElementFeatures> = elements
        .iter()
        .map(|&e| element_features(repo, e))
        .collect();
    let n = elements.len();
    if n == 0 {
        return Clustering::default();
    }
    let target = target.clamp(1, n);
    // Active clusters as member-index lists.
    let mut groups: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    // Pairwise element similarity matrix (upper triangle).
    let sim = |a: usize, b: usize| features[a].cosine(&features[b]);
    let mut matrix = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let s = sim(i, j);
            matrix[i * n + j] = s;
            matrix[j * n + i] = s;
        }
    }
    // Average linkage between groups.
    let linkage = |ga: &[usize], gb: &[usize], matrix: &[f64]| -> f64 {
        let mut total = 0.0;
        for &a in ga {
            for &b in gb {
                total += matrix[a * n + b];
            }
        }
        total / (ga.len() * gb.len()) as f64
    };
    while groups.len() > target {
        let mut best = (0usize, 1usize, f64::NEG_INFINITY);
        for i in 0..groups.len() {
            for j in (i + 1)..groups.len() {
                let l = linkage(&groups[i], &groups[j], &matrix);
                if l > best.2 {
                    best = (i, j, l);
                }
            }
        }
        let (i, j, _) = best;
        let merged = groups.swap_remove(j);
        groups[i].extend(merged);
    }
    let clusters = groups
        .into_iter()
        .map(|g| {
            let mut centroid = ElementFeatures::default();
            let members: Vec<ElementRef> = g
                .iter()
                .map(|&idx| {
                    centroid.merge(&features[idx]);
                    elements[idx]
                })
                .collect();
            Cluster { members, centroid }
        })
        .collect();
    Clustering { clusters }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::query_features;
    use smx_xml::{PrimitiveType, SchemaBuilder};

    /// Two clearly-separated topic groups: book-ish and order-ish names.
    fn repo() -> Repository {
        let mut r = Repository::new();
        r.add(
            SchemaBuilder::new("bib")
                .root("bib")
                .child("book", |b| {
                    b.leaf("bookTitle", PrimitiveType::String)
                        .leaf("bookAuthor", PrimitiveType::String)
                })
                .build(),
        );
        r.add(
            SchemaBuilder::new("shop")
                .root("shop")
                .child("order", |o| {
                    o.leaf("orderDate", PrimitiveType::Date)
                        .leaf("orderTotal", PrimitiveType::Decimal)
                })
                .build(),
        );
        r
    }

    #[test]
    fn greedy_covers_every_element_once() {
        let r = repo();
        let clustering = greedy_clustering(&r, 0.3);
        assert_eq!(clustering.total_members(), r.total_elements());
        // No element in two clusters.
        let mut seen: Vec<ElementRef> = clustering
            .clusters()
            .iter()
            .flat_map(|c| c.members.iter().copied())
            .collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), r.total_elements());
    }

    #[test]
    fn greedy_threshold_extremes() {
        let r = repo();
        // Threshold 0 keeps everything joinable: few clusters.
        let loose = greedy_clustering(&r, 0.0);
        // Threshold just above 1 is unreachable: all singletons.
        let strict = greedy_clustering(&r, 1.01);
        assert_eq!(strict.len(), r.total_elements());
        assert!(loose.len() <= strict.len());
    }

    #[test]
    fn agglomerative_reaches_target() {
        let r = repo();
        for target in [1, 2, 4, 8] {
            let clustering = agglomerative_clustering(&r, target);
            assert_eq!(clustering.len(), target.min(r.total_elements()));
            assert_eq!(clustering.total_members(), r.total_elements());
        }
    }

    #[test]
    fn agglomerative_groups_topics() {
        let r = repo();
        let clustering = agglomerative_clustering(&r, 2);
        // With two clusters, book-ish leaves should not share a cluster
        // with order-ish leaves.
        let find = |name: &str| -> usize {
            clustering
                .clusters()
                .iter()
                .position(|c| c.members.iter().any(|&m| r.element_name(m) == name))
                .unwrap()
        };
        assert_eq!(find("bookTitle"), find("bookAuthor"));
        assert_eq!(find("orderDate"), find("orderTotal"));
        assert_ne!(find("bookTitle"), find("orderDate"));
    }

    #[test]
    fn ranking_prefers_matching_topic() {
        let r = repo();
        let clustering = agglomerative_clustering(&r, 2);
        let q = query_features(&["book", "title", "author"]);
        let ranked = clustering.rank_against(&q);
        let top = &clustering.clusters()[ranked[0].0];
        assert!(top
            .members
            .iter()
            .any(|&m| r.element_name(m) == "bookTitle"));
        assert!(ranked[0].1 > ranked[1].1);
    }

    #[test]
    fn cohesion_improves_with_more_clusters() {
        let r = repo();
        let coarse = agglomerative_clustering(&r, 1);
        let fine = agglomerative_clustering(&r, 4);
        assert!(fine.mean_intra_similarity(&r) >= coarse.mean_intra_similarity(&r) - 1e-9);
    }

    #[test]
    fn empty_repository_clusters() {
        let r = Repository::new();
        assert!(greedy_clustering(&r, 0.5).is_empty());
        assert!(agglomerative_clustering(&r, 3).is_empty());
        assert_eq!(Clustering::default().mean_intra_similarity(&r), 1.0);
    }
}

#![warn(missing_docs)]

//! Schema repository and element clustering.
//!
//! The paper's motivating system matches a small personal schema against a
//! *large repository* of XML schemas and gains efficiency by clustering
//! repository elements, then searching only the most promising clusters
//! (\[16\] in the paper). This crate provides that substrate:
//!
//! * [`repository`] — a collection of named schemas with global
//!   [`ElementRef`] addressing,
//! * [`intern`] — dense [`LabelId`]s for distinct element names, so
//!   scoring engines compare and memoise names by `u32` instead of by
//!   string,
//! * [`feature`] — token-based feature vectors for repository elements
//!   (name, path context, type),
//! * [`cluster`] — greedy leader clustering (the fast method a scalable
//!   matcher would use) and average-linkage agglomerative clustering (the
//!   reference method), plus quality measures,
//! * [`fragment`] — per-schema fragments induced by a cluster selection:
//!   the element sets a cluster-restricted matcher is allowed to target,
//! * [`index`] — a token inverted index, maintained incrementally by
//!   [`Repository::add`],
//! * [`filter_index`] — the candidate-generation tier's filter lanes
//!   and trigram inverted index: admissible per-label upper bounds on
//!   the name-similarity mix, maintained incrementally on ingest and
//!   persisted through the `smx-persist` FILTERS section,
//! * [`store`] — the repository-resident label score store: per-label
//!   row-kernel profiles and cached name-distance rows (full rows plus
//!   coverage-masked partial rows for candidate subsets), updated
//!   incrementally on every ingest, shared by every `MatchProblem`
//!   against the repository.

pub mod cluster;
pub mod feature;
pub mod filter_index;
pub mod fragment;
pub mod index;
pub mod intern;
pub mod repository;
pub mod store;

pub use cluster::{agglomerative_clustering, greedy_clustering, Cluster, Clustering};
pub use feature::{element_features, feature_similarity, query_features, ElementFeatures};
pub use filter_index::{FilterIndex, FilterProfile, FilterProfileData, QueryFilter, BOUND_EPS};
pub use fragment::{fragments_for_clusters, Fragment};
pub use index::TokenIndex;
pub use intern::{LabelId, LabelInterner};
pub use repository::{ElementRef, Repository, SchemaId};
pub use store::{
    EvictionSink, HealthReport, LabelStore, SinkHealth, StoreConfig, StoreCounters, StoreState,
};

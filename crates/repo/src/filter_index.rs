//! Candidate-generation filter index: admissible per-label upper bounds
//! on the default name-similarity mix.
//!
//! The exhaustive matcher ultimately pays a full `k × n` row sweep per
//! distinct personal label. The source paper's framing of
//! non-exhaustive systems is that skipping work is fine *as long as the
//! effectiveness given up is bounded* — which requires a cheap,
//! **admissible** estimate of how similar a stored label could possibly
//! be to a query. This module provides that estimate: per stored label
//! a small structure-of-arrays [`FilterProfile`] (normalised length,
//! first-four-character prefix lane, character-unigram multiset,
//! distinct-token lengths and initials, and the label's trigram
//! [`GramProfile`] lanes shared with the row kernel), plus a trigram
//! inverted index so gram intersections are accumulated sparsely over
//! posting lists instead of per pair.
//!
//! [`FilterIndex::sim_upper_bounds`] returns, for one prepared query
//! ([`QueryFilter`]), a value per stored label that is **never below**
//! the true `NameSimilarity::similarity` of the pair (property-tested
//! against the scalar oracle). The bound reproduces the mix term by
//! term from [`smx_text::default_name_mix`]:
//!
//! * **Trigram** — the *exact* Dice coefficient, assembled from the
//!   inverted index (labels sharing no gram with the query contribute
//!   zero without being touched).
//! * **Jaro–Winkler** — Jaro's match count `m` is at most
//!   `min(|a|, |b|, unigram-multiset overlap)` and its transposition
//!   term is at most `1`, so `(m/|a| + m/|b| + 1)/3` bounds Jaro; the
//!   Winkler prefix is computed exactly from the stored prefix lanes.
//!   Both Jaro–Winkler's boost and the bound are monotone in Jaro, so
//!   the composition stays admissible.
//! * **Token set** — the exact token-set Dice (sorted distinct-token
//!   merge) joined with a Monge–Elkan bound: Monge–Elkan never exceeds
//!   the best token-pair Jaro–Winkler, which is bounded per query token
//!   from its unigram overlap with the label's characters (each token's
//!   characters are a sub-multiset of the label's normalised form), the
//!   stored distinct token lengths, and the token-initials mask (no
//!   shared initial ⇒ no Winkler boost).
//! * **Levenshtein** — edit distance is at least the length difference,
//!   so `1 - |len_a - len_b| / max_len` bounds the similarity from the
//!   length lanes alone.
//!
//! A `BOUND_EPS` margin absorbs ulp-level float wobble between the
//! bound's arithmetic and the oracle's; raw-equal pairs and labels
//! whose normalised form is empty are handled by the oracle's own
//! conventions rather than the per-measure bounds.

use crate::intern::LabelId;
use smx_text::{clamp01, default_name_mix, GramProfile, LabelProfile, SimilarityMeasure};
use std::collections::HashMap;

/// Winkler prefix scaling factor — must match `smx_text::jaro_winkler`.
const WINKLER_SCALING: f64 = 0.1;
/// Winkler prefix cap — must match `smx_text::jaro_winkler`.
const MAX_PREFIX: usize = 4;

/// Additive slack on every composed bound, absorbing ulp-level
/// differences between the bound's float arithmetic and the oracle's.
pub const BOUND_EPS: f64 = 1e-9;

/// Map a character to its token-initials bucket: `a..z` and `0..9` get
/// their own bit, everything else shares a catch-all bit (collisions
/// only ever *allow* a Winkler boost, which keeps the bound admissible).
fn initial_bucket(c: char) -> u32 {
    match c {
        'a'..='z' => c as u32 - 'a' as u32,
        '0'..='9' => 26 + (c as u32 - '0' as u32),
        _ => 36,
    }
}

/// Run-length-encoded character multiset: `(scalar, count)` sorted by
/// scalar ascending.
fn unigram_lanes(chars: impl Iterator<Item = char>) -> Vec<(u32, u32)> {
    let mut scalars: Vec<u32> = chars.map(|c| c as u32).collect();
    scalars.sort_unstable();
    let mut lanes: Vec<(u32, u32)> = Vec::new();
    for s in scalars {
        match lanes.last_mut() {
            Some(l) if l.0 == s => l.1 += 1,
            _ => lanes.push((s, 1)),
        }
    }
    lanes
}

/// Multiset overlap `Σ_c min(count_a(c), count_b(c))` of two sorted
/// unigram lanes, by linear merge.
fn overlap(a: &[(u32, u32)], b: &[(u32, u32)]) -> u32 {
    let (mut i, mut j) = (0usize, 0usize);
    let mut ov = 0u32;
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                ov += a[i].1.min(b[j].1);
                i += 1;
                j += 1;
            }
        }
    }
    ov
}

/// Count of common elements of two sorted deduplicated string slices.
fn sorted_str_intersection(a: &[String], b: &[String]) -> usize {
    let (mut i, mut j) = (0usize, 0usize);
    let mut inter = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    inter
}

/// Per-label filter lanes: everything the admissible bound needs to
/// score "how similar could this label possibly be", without the label
/// text itself.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterProfile {
    /// Normalised-form length in scalar values (the Levenshtein and
    /// Jaro denominators; `0` marks a degenerate label whose
    /// normalised form is empty).
    norm_len: u32,
    /// First four scalar values of the normalised form (`0`-padded; the
    /// pad is never compared because the prefix walk is clipped to
    /// `norm_len`).
    prefix: [u32; 4],
    /// Character-unigram multiset of the normalised form, sorted.
    unigrams: Vec<(u32, u32)>,
    /// Number of distinct identifier tokens.
    token_count: u32,
    /// Distinct token lengths (in chars), sorted ascending.
    token_lens: Vec<u32>,
    /// Token-initials bucket mask (see [`initial_bucket`]).
    initials: u64,
    /// Trigram profile of the normalised form — the same SoA lanes the
    /// row kernel compares, cloned at ingest so the sort happens once.
    grams: GramProfile,
}

impl FilterProfile {
    /// Derive the filter lanes from a label's kernel profile.
    pub fn from_label(p: &LabelProfile) -> Self {
        let mut prefix = [0u32; 4];
        for (i, c) in p.normalized().chars().take(MAX_PREFIX).enumerate() {
            prefix[i] = c as u32;
        }
        let mut token_lens: Vec<u32> = p
            .token_set()
            .iter()
            .map(|t| t.chars().count() as u32)
            .collect();
        token_lens.sort_unstable();
        token_lens.dedup();
        let mut initials = 0u64;
        for t in p.token_set() {
            if let Some(c) = t.chars().next() {
                initials |= 1u64 << initial_bucket(c);
            }
        }
        FilterProfile {
            norm_len: p.scalar_len() as u32,
            prefix,
            unigrams: unigram_lanes(p.normalized().chars()),
            token_count: p.token_set().len() as u32,
            token_lens,
            initials,
            grams: p.grams().clone(),
        }
    }

    /// The stored normalised-form length.
    pub fn norm_len(&self) -> u32 {
        self.norm_len
    }

    /// Flatten into the plain-data form the persistence layer encodes.
    pub fn to_data(&self) -> FilterProfileData {
        FilterProfileData {
            norm_len: self.norm_len,
            prefix: self.prefix,
            unigrams: self.unigrams.clone(),
            token_count: self.token_count,
            token_lens: self.token_lens.clone(),
            initials: self.initials,
            gram_keys: self.grams.keys().to_vec(),
            gram_counts: self.grams.counts().to_vec(),
            gram_total: self.grams.total(),
        }
    }
}

/// [`FilterProfile`] flattened to plain vectors — the form the
/// `smx-persist` FILTERS section serialises so a snapshot load skips
/// re-deriving lanes from label text.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FilterProfileData {
    /// See [`FilterProfile`]'s `norm_len` lane.
    pub norm_len: u32,
    /// First-four-scalar prefix lane.
    pub prefix: [u32; 4],
    /// Sorted `(scalar, count)` unigram multiset.
    pub unigrams: Vec<(u32, u32)>,
    /// Distinct-token count.
    pub token_count: u32,
    /// Sorted distinct token lengths.
    pub token_lens: Vec<u32>,
    /// Token-initials bucket mask.
    pub initials: u64,
    /// Trigram profile keys (sorted ascending, distinct).
    pub gram_keys: Vec<u64>,
    /// Trigram profile counts, parallel to `gram_keys`.
    pub gram_counts: Vec<u32>,
    /// Trigram multiset total.
    pub gram_total: u64,
}

impl FilterProfileData {
    /// Validate the lane invariants and reassemble a [`FilterProfile`].
    /// `None` if any invariant fails (corrupted or foreign data).
    fn try_into_profile(self) -> Option<FilterProfile> {
        if self.gram_keys.len() != self.gram_counts.len() {
            return None;
        }
        if !self.gram_keys.windows(2).all(|w| w[0] < w[1]) {
            return None;
        }
        if self.gram_counts.contains(&0) {
            return None;
        }
        let total: u64 = self.gram_counts.iter().map(|&c| u64::from(c)).sum();
        if total != self.gram_total {
            return None;
        }
        if !self.unigrams.windows(2).all(|w| w[0].0 < w[1].0) {
            return None;
        }
        if self.unigrams.iter().any(|&(_, c)| c == 0) {
            return None;
        }
        if !self.token_lens.windows(2).all(|w| w[0] < w[1]) {
            return None;
        }
        Some(FilterProfile {
            norm_len: self.norm_len,
            prefix: self.prefix,
            unigrams: self.unigrams,
            token_count: self.token_count,
            token_lens: self.token_lens,
            initials: self.initials,
            grams: GramProfile::from_parts(self.gram_keys, self.gram_counts, self.gram_total),
        })
    }
}

/// Per distinct query token: `(char length, initial bucket, unigram lanes)`.
type TokenUnigrams = (u32, u32, Vec<(u32, u32)>);

/// A query prepared for bounding against every stored label: its own
/// kernel profile (normalised form, token set, gram lanes), its filter
/// lanes, and per-distinct-token unigram multisets for the Monge–Elkan
/// bound.
#[derive(Debug, Clone)]
pub struct QueryFilter {
    raw: String,
    profile: LabelProfile,
    lanes: FilterProfile,
    token_unigrams: Vec<TokenUnigrams>,
}

impl QueryFilter {
    /// Prepare `query` for candidate generation.
    pub fn new(query: &str) -> Self {
        let profile = LabelProfile::new(query);
        let lanes = FilterProfile::from_label(&profile);
        let token_unigrams = profile
            .token_set()
            .iter()
            .map(|t| {
                let chars: Vec<char> = t.chars().collect();
                let init = initial_bucket(chars[0]); // tokens are non-empty
                (
                    chars.len() as u32,
                    init,
                    unigram_lanes(chars.iter().copied()),
                )
            })
            .collect();
        QueryFilter {
            raw: query.to_owned(),
            profile,
            lanes,
            token_unigrams,
        }
    }

    /// The query string as given.
    pub fn raw(&self) -> &str {
        &self.raw
    }
}

/// The candidate-generation index over every stored label: filter lanes
/// per label plus a trigram inverted index (`gram key → (label, count)`
/// postings, labels ascending), maintained incrementally as labels are
/// ingested.
#[derive(Debug, Clone, Default)]
pub struct FilterIndex {
    profiles: Vec<FilterProfile>,
    tri_postings: HashMap<u64, Vec<(u32, u32)>>,
}

impl FilterIndex {
    /// An empty index.
    pub fn new() -> Self {
        FilterIndex::default()
    }

    /// Number of indexed labels.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether no label is indexed yet.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Number of distinct gram keys with a posting list.
    pub fn gram_vocabulary(&self) -> usize {
        self.tri_postings.len()
    }

    /// The filter lanes of one label.
    pub fn profile(&self, id: LabelId) -> &FilterProfile {
        &self.profiles[id.index()]
    }

    /// Index the next label (ids are dense and append-only, mirroring
    /// the interner).
    pub fn add_label(&mut self, profile: &LabelProfile) {
        let id = self.profiles.len() as u32;
        let lanes = FilterProfile::from_label(profile);
        for (&key, &count) in lanes.grams.keys().iter().zip(lanes.grams.counts()) {
            self.tri_postings.entry(key).or_default().push((id, count));
        }
        self.profiles.push(lanes);
    }

    /// Rebuild the whole index from kernel profiles (snapshot salvage,
    /// or snapshots predating the FILTERS section).
    pub fn rebuild(profiles: &[LabelProfile]) -> Self {
        let mut index = FilterIndex::new();
        for p in profiles {
            index.add_label(p);
        }
        index
    }

    /// Flatten every label's lanes for persistence.
    pub fn export(&self) -> Vec<FilterProfileData> {
        self.profiles.iter().map(FilterProfile::to_data).collect()
    }

    /// Reassemble an index from persisted lanes, rebuilding the posting
    /// lists. `None` if any entry violates the lane invariants.
    pub fn try_from_data(data: Vec<FilterProfileData>) -> Option<Self> {
        let mut index = FilterIndex {
            profiles: Vec::with_capacity(data.len()),
            tri_postings: HashMap::new(),
        };
        for (id, entry) in data.into_iter().enumerate() {
            let lanes = entry.try_into_profile()?;
            for (&key, &count) in lanes.grams.keys().iter().zip(lanes.grams.counts()) {
                index
                    .tri_postings
                    .entry(key)
                    .or_default()
                    .push((id as u32, count));
            }
            index.profiles.push(lanes);
        }
        Some(index)
    }

    /// Admissible upper bound on `NameSimilarity::similarity(query, l)`
    /// for every stored label `l`, written into `out` (indexed by label
    /// id). `label_profiles` are the store's kernel profiles (for the
    /// exact token-set Dice merge) and `exact` is the label raw-equal
    /// to the query, if interned — that pair scores `1.0` by the
    /// oracle's raw-equality convention.
    pub fn sim_upper_bounds(
        &self,
        query: &QueryFilter,
        label_profiles: &[LabelProfile],
        exact: Option<LabelId>,
        out: &mut Vec<f64>,
    ) {
        let n = self.profiles.len();
        debug_assert_eq!(n, label_profiles.len());
        out.clear();
        out.resize(n, 0.0);
        let q = &query.lanes;
        if q.norm_len == 0 {
            // A normalisation-empty query scores 1.0 against every
            // normalisation-empty label (every measure's both-empty
            // convention) and 0.0 against everything else.
            for (slot, p) in out.iter_mut().zip(&self.profiles) {
                *slot = if p.norm_len == 0 { 1.0 } else { 0.0 };
            }
            if let Some(id) = exact {
                out[id.index()] = 1.0;
            }
            return;
        }
        // Exact trigram intersections, accumulated sparsely: labels
        // sharing no gram with the query keep intersection 0.
        let mut tri = vec![0u32; n];
        for (&key, &qcount) in q.grams.keys().iter().zip(q.grams.counts()) {
            if let Some(postings) = self.tri_postings.get(&key) {
                for &(label, lcount) in postings {
                    tri[label as usize] += qcount.min(lcount);
                }
            }
        }
        for (i, p) in self.profiles.iter().enumerate() {
            out[i] = self.full_bound_inner(query, label_profiles, i, tri[i], p);
        }
        if let Some(id) = exact {
            out[id.index()] = 1.0;
        }
    }

    /// [`sim_upper_bounds`](Self::sim_upper_bounds) with the expensive
    /// token-set lane replaced by its trivial cap `1.0` — every value is
    /// still an admissible upper bound, just a weaker one (never below
    /// the full bound). The exact trigram intersection counts the pass
    /// accumulates are written to `tri` (indexed by label id) so
    /// individual labels can later be promoted to full precision with
    /// [`refine_sim_upper_bound`](Self::refine_sim_upper_bound) without
    /// re-walking the posting lists. Candidate generation runs on this
    /// pass and refines only the labels whose bound actually influences
    /// a prune decision.
    pub fn sim_upper_bounds_cheap(
        &self,
        query: &QueryFilter,
        exact: Option<LabelId>,
        out: &mut Vec<f64>,
        tri: &mut Vec<u32>,
    ) {
        let n = self.profiles.len();
        out.clear();
        out.resize(n, 0.0);
        tri.clear();
        tri.resize(n, 0);
        let q = &query.lanes;
        if q.norm_len == 0 {
            for (slot, p) in out.iter_mut().zip(&self.profiles) {
                *slot = if p.norm_len == 0 { 1.0 } else { 0.0 };
            }
            if let Some(id) = exact {
                out[id.index()] = 1.0;
            }
            return;
        }
        for (&key, &qcount) in q.grams.keys().iter().zip(q.grams.counts()) {
            if let Some(postings) = self.tri_postings.get(&key) {
                for &(label, lcount) in postings {
                    tri[label as usize] += qcount.min(lcount);
                }
            }
        }
        let mix = default_name_mix();
        let total_weight: f64 = mix.iter().map(|&(_, w)| w).sum();
        let sa = q.grams.total();
        // The query's unigram counts as a dense ASCII table: the inner
        // loop then reads label lanes straight through instead of
        // running a sorted merge per label. Non-ASCII query codes (rare
        // in normalised identifiers) fall back to the merge.
        let mut qtab = [0u32; 128];
        let mut q_wide = false;
        for &(c, n) in &q.unigrams {
            match qtab.get_mut(c as usize) {
                Some(slot) => *slot = n,
                None => q_wide = true,
            }
        }
        for (i, p) in self.profiles.iter().enumerate() {
            if p.norm_len == 0 {
                out[i] = 0.0;
                continue;
            }
            let tri_ub = clamp01(2.0 * tri[i] as f64 / (sa + p.grams.total()) as f64);
            let ov = if q_wide {
                overlap(&q.unigrams, &p.unigrams)
            } else {
                // Codes ≥ 128 on the label side cannot match an
                // all-ASCII query, so skipping them preserves equality
                // with the merge.
                p.unigrams
                    .iter()
                    .map(|&(c, n)| match qtab.get(c as usize) {
                        Some(&qc) => n.min(qc),
                        None => 0,
                    })
                    .sum()
            };
            let jw_ub = jw_upper_with(ov, q, p);
            let lev_ub = lev_upper(q.norm_len, p.norm_len);
            let mut score = 0.0;
            for &(measure, weight) in mix {
                let bound = match measure {
                    SimilarityMeasure::Trigram => tri_ub,
                    SimilarityMeasure::JaroWinkler => jw_ub,
                    SimilarityMeasure::TokenSet => 1.0,
                    SimilarityMeasure::Levenshtein => lev_ub,
                };
                score += weight * bound;
            }
            out[i] = (score / total_weight + BOUND_EPS).min(1.0);
        }
        if let Some(id) = exact {
            out[id.index()] = 1.0;
        }
    }

    /// Full-precision upper bound for one label, given the trigram
    /// intersection count the cheap pass recorded for it. Returns
    /// exactly the value [`sim_upper_bounds`](Self::sim_upper_bounds)
    /// would have written at `id` (including the raw-equality
    /// convention when `exact == Some(id)`), so promoting a cheap bound
    /// never changes what a full pass would have decided.
    pub fn refine_sim_upper_bound(
        &self,
        query: &QueryFilter,
        label_profiles: &[LabelProfile],
        exact: Option<LabelId>,
        id: LabelId,
        tri_count: u32,
    ) -> f64 {
        if exact == Some(id) {
            return 1.0;
        }
        let q = &query.lanes;
        let p = &self.profiles[id.index()];
        if q.norm_len == 0 {
            return if p.norm_len == 0 { 1.0 } else { 0.0 };
        }
        self.full_bound_inner(query, label_profiles, id.index(), tri_count, p)
    }

    /// The full four-lane bound of one non-empty-query pair — shared by
    /// the dense pass and per-label refinement so both produce bitwise
    /// identical values.
    fn full_bound_inner(
        &self,
        query: &QueryFilter,
        label_profiles: &[LabelProfile],
        i: usize,
        tri_count: u32,
        p: &FilterProfile,
    ) -> f64 {
        if p.norm_len == 0 {
            // Non-empty query vs empty label: every measure's
            // one-empty convention scores 0 (token sets included —
            // an empty normalised form has no tokens).
            return 0.0;
        }
        let q = &query.lanes;
        let mix = default_name_mix();
        let total_weight: f64 = mix.iter().map(|&(_, w)| w).sum();
        let sa = q.grams.total();
        let tri_ub = clamp01(2.0 * tri_count as f64 / (sa + p.grams.total()) as f64);
        let jw_ub = jw_upper(q, p);
        let ts_ub = token_set_upper(query, p, label_profiles[i].token_set());
        let lev_ub = lev_upper(q.norm_len, p.norm_len);
        let mut score = 0.0;
        for &(measure, weight) in mix {
            let bound = match measure {
                SimilarityMeasure::Trigram => tri_ub,
                SimilarityMeasure::JaroWinkler => jw_ub,
                SimilarityMeasure::TokenSet => ts_ub,
                SimilarityMeasure::Levenshtein => lev_ub,
            };
            score += weight * bound;
        }
        (score / total_weight + BOUND_EPS).min(1.0)
    }
}

/// Upper bound on Jaro–Winkler of two non-empty normalised forms from
/// their length, unigram, and prefix lanes.
fn jw_upper(q: &FilterProfile, p: &FilterProfile) -> f64 {
    jw_upper_with(overlap(&q.unigrams, &p.unigrams), q, p)
}

/// [`jw_upper`] with the raw unigram overlap already computed — the
/// cheap sweep amortises the query side into a dense count table and
/// hands the overlap in, so both entry points stay bitwise identical.
fn jw_upper_with(overlap: u32, q: &FilterProfile, p: &FilterProfile) -> f64 {
    let m = overlap.min(q.norm_len).min(p.norm_len);
    if m == 0 {
        // No shared character ⇒ no Jaro match and no common prefix.
        return 0.0;
    }
    let j = jaro_upper(m, q.norm_len, p.norm_len);
    let limit = MAX_PREFIX.min(q.norm_len as usize).min(p.norm_len as usize);
    let mut prefix = 0usize;
    while prefix < limit && q.prefix[prefix] == p.prefix[prefix] {
        prefix += 1;
    }
    winkler_boost(j, prefix)
}

/// `(m/|a| + m/|b| + 1)/3`, capped at 1 — Jaro with its transposition
/// term replaced by its maximum, monotone in the match count `m`.
fn jaro_upper(m: u32, la: u32, lb: u32) -> f64 {
    let mf = m as f64;
    ((mf / la as f64 + mf / lb as f64 + 1.0) / 3.0).min(1.0)
}

/// The Winkler boost applied to a Jaro bound: monotone in `j` (slope
/// `1 - 0.1·prefix ≥ 0.6`), so boosting an upper bound stays an upper
/// bound.
fn winkler_boost(j: f64, prefix: usize) -> f64 {
    (j + prefix as f64 * WINKLER_SCALING * (1.0 - j)).min(1.0)
}

/// Upper bound on the token-set measure (Dice ⊔ Monge–Elkan): the Dice
/// part is exact (sorted distinct-token merge); Monge–Elkan is bounded
/// by the best token-pair Jaro–Winkler, itself bounded per query token
/// from lane data (a label token's characters are a sub-multiset of the
/// label's normalised form, so the token-vs-label unigram overlap
/// bounds every token-vs-token overlap).
fn token_set_upper(query: &QueryFilter, p: &FilterProfile, label_tokens: &[String]) -> f64 {
    let tq = query.profile.token_set().len();
    let tl = p.token_count as usize;
    debug_assert!(tq > 0 && tl > 0, "degenerate labels handled by caller");
    let inter = sorted_str_intersection(query.profile.token_set(), label_tokens);
    let dice = clamp01(2.0 * inter as f64 / (tq + tl) as f64);
    let mut me = 0.0f64;
    for (lx, init, uni) in &query.token_unigrams {
        let ov = overlap(uni, &p.unigrams);
        if ov == 0 {
            continue; // no shared character with any label token
        }
        let allow_prefix = p.initials & (1u64 << init) != 0;
        for &ly in &p.token_lens {
            let m = ov.min(*lx).min(ly);
            if m == 0 {
                continue;
            }
            let j = jaro_upper(m, *lx, ly);
            let prefix = if allow_prefix {
                MAX_PREFIX.min(*lx as usize).min(ly as usize)
            } else {
                0
            };
            me = me.max(winkler_boost(j, prefix));
        }
    }
    dice.max(me)
}

/// Upper bound on normalised Levenshtein similarity of two non-empty
/// forms from the length lanes alone: `d ≥ |la - lb|`.
fn lev_upper(la: u32, lb: u32) -> f64 {
    1.0 - la.abs_diff(lb) as f64 / la.max(lb) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_text::NameSimilarity;

    fn index_of(labels: &[&str]) -> (FilterIndex, Vec<LabelProfile>) {
        let profiles: Vec<LabelProfile> = labels.iter().map(|l| LabelProfile::new(l)).collect();
        (FilterIndex::rebuild(&profiles), profiles)
    }

    fn check_admissible(queries: &[&str], labels: &[&str]) {
        let (index, profiles) = index_of(labels);
        let oracle = NameSimilarity::default();
        let mut out = Vec::new();
        for q in queries {
            let filter = QueryFilter::new(q);
            let exact = labels
                .iter()
                .position(|l| l == q)
                .map(|i| LabelId(i as u32));
            index.sim_upper_bounds(&filter, &profiles, exact, &mut out);
            for (i, label) in labels.iter().enumerate() {
                let actual = oracle.similarity(q, label);
                assert!(
                    out[i] >= actual,
                    "bound {} < actual {} for ({q:?}, {label:?})",
                    out[i],
                    actual,
                );
                assert!(out[i] <= 1.0);
            }
        }
    }

    #[test]
    fn bound_is_admissible_on_identifier_corpus() {
        let corpus = [
            "title",
            "subtitle",
            "pubYear",
            "publicationYear",
            "year",
            "isbn13",
            "ISBN",
            "custName",
            "customerName",
            "cust_no",
            "orderLineItem",
            "lineOrder",
            "XMLSchema",
            "price",
            "prices",
            "a",
            "zz",
            "i18n",
            "HTTPSPort",
            "__x__",
            "--__--",
            "",
            "éditeur",
            "año2024",
        ];
        check_admissible(&corpus, &corpus);
    }

    #[test]
    fn cheap_pass_dominates_full_pass_and_refine_matches_it() {
        let corpus = [
            "title",
            "subtitle",
            "pubYear",
            "publicationYear",
            "year",
            "customerName",
            "price",
            "a",
            "--__--",
            "",
            "éditeur",
        ];
        let (index, profiles) = index_of(&corpus);
        let oracle = NameSimilarity::default();
        let (mut full, mut cheap, mut tri) = (Vec::new(), Vec::new(), Vec::new());
        for q in corpus.iter().chain(["custName", "isbn", "__"].iter()) {
            let filter = QueryFilter::new(q);
            let exact = corpus
                .iter()
                .position(|l| l == q)
                .map(|i| LabelId(i as u32));
            index.sim_upper_bounds(&filter, &profiles, exact, &mut full);
            index.sim_upper_bounds_cheap(&filter, exact, &mut cheap, &mut tri);
            for (i, label) in corpus.iter().enumerate() {
                // Cheap is admissible and never tighter than full …
                assert!(cheap[i] >= oracle.similarity(q, label) - f64::EPSILON);
                assert!(
                    cheap[i] >= full[i] - f64::EPSILON,
                    "cheap {} < full {} for ({q:?}, {label:?})",
                    cheap[i],
                    full[i],
                );
                // … and refinement reproduces the full pass bitwise.
                let refined = index.refine_sim_upper_bound(
                    &filter,
                    &profiles,
                    exact,
                    LabelId(i as u32),
                    tri[i],
                );
                assert_eq!(refined.to_bits(), full[i].to_bits());
            }
        }
    }

    #[test]
    fn raw_equal_pair_scores_one() {
        let (index, profiles) = index_of(&["--__--", "title"]);
        let mut out = Vec::new();
        let q = QueryFilter::new("--__--");
        index.sim_upper_bounds(&q, &profiles, Some(LabelId(0)), &mut out);
        assert_eq!(out[0], 1.0);
        assert_eq!(out[1], 0.0); // degenerate query vs normal label
    }

    #[test]
    fn degenerate_labels_follow_empty_conventions() {
        // Two distinct punctuation-only names: every base measure hits
        // its both-empty convention, so the oracle scores 1.0.
        let oracle = NameSimilarity::default();
        assert_eq!(oracle.similarity("--", "__"), 1.0);
        let (index, profiles) = index_of(&["--", "title"]);
        let mut out = Vec::new();
        index.sim_upper_bounds(&QueryFilter::new("__"), &profiles, None, &mut out);
        assert_eq!(out[0], 1.0);
        assert_eq!(out[1], 0.0);
    }

    #[test]
    fn disjoint_labels_are_cheaply_bounded() {
        let (index, profiles) = index_of(&["zzz", "qqq"]);
        let mut out = Vec::new();
        index.sim_upper_bounds(&QueryFilter::new("aaa"), &profiles, None, &mut out);
        // No shared grams, chars, or tokens: only the Levenshtein
        // length term (equal lengths → 1.0) survives, at weight 0.1.
        for &b in &out {
            assert!(b <= 0.1 + 2.0 * BOUND_EPS, "bound {b} too loose");
        }
    }

    #[test]
    fn export_import_round_trips() {
        let (index, profiles) = index_of(&["custOrderNo", "title", "__", "isbn13"]);
        let rebuilt = FilterIndex::try_from_data(index.export()).expect("valid lanes");
        assert_eq!(rebuilt.len(), index.len());
        assert_eq!(rebuilt.gram_vocabulary(), index.gram_vocabulary());
        let mut a = Vec::new();
        let mut b = Vec::new();
        for q in ["custNo", "subtitle", ""] {
            let filter = QueryFilter::new(q);
            index.sim_upper_bounds(&filter, &profiles, None, &mut a);
            rebuilt.sim_upper_bounds(&filter, &profiles, None, &mut b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn corrupt_lanes_are_rejected() {
        let (index, _) = index_of(&["title", "year"]);
        let mut data = index.export();
        data[0].gram_total += 1;
        assert!(FilterIndex::try_from_data(data).is_none());
        let mut data = index.export();
        data[1].gram_keys.reverse();
        if data[1].gram_keys.len() > 1 {
            assert!(FilterIndex::try_from_data(data).is_none());
        }
    }
}

//! Label interning: one id per distinct element name.
//!
//! Matching workloads score the same `(personal_name, repo_name)` string
//! pair many times — the same vocabulary word appears across dozens of
//! repository schemas. Interning maps every distinct name to a dense
//! [`LabelId`] once, so downstream scoring engines (the match crate's
//! `CostMatrix`) can memoise per *distinct pair* and compare labels by
//! `u32` instead of re-walking strings.

use smx_xml::Schema;
use std::collections::HashMap;

/// Dense id of one distinct label (element name) in a [`LabelInterner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LabelId(pub u32);

impl LabelId {
    /// The id as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional map between distinct label strings and dense [`LabelId`]s.
#[derive(Debug, Clone, Default)]
pub struct LabelInterner {
    ids: HashMap<String, LabelId>,
    labels: Vec<String>,
}

impl LabelInterner {
    /// An empty interner.
    pub fn new() -> Self {
        LabelInterner::default()
    }

    /// Intern `label`, returning its stable id (allocating only on first
    /// sight of a distinct label).
    pub fn intern(&mut self, label: &str) -> LabelId {
        if let Some(&id) = self.ids.get(label) {
            return id;
        }
        let id = LabelId(self.labels.len() as u32);
        self.labels.push(label.to_owned());
        self.ids.insert(label.to_owned(), id);
        id
    }

    /// The id of `label` if it was interned.
    pub fn get(&self, label: &str) -> Option<LabelId> {
        self.ids.get(label).copied()
    }

    /// The label behind `id`.
    pub fn resolve(&self, id: LabelId) -> &str {
        &self.labels[id.index()]
    }

    /// Number of distinct labels interned.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether nothing was interned yet.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Intern every node name of `schema`, returning per-node label ids in
    /// arena order (`result[node.index()]` is the node's label).
    pub fn intern_schema(&mut self, schema: &Schema) -> Vec<LabelId> {
        schema
            .node_ids()
            .map(|id| self.intern(&schema.node(id).name))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_xml::{PrimitiveType, SchemaBuilder};

    #[test]
    fn interning_dedupes_and_resolves() {
        let mut interner = LabelInterner::new();
        let a = interner.intern("title");
        let b = interner.intern("year");
        let a_again = interner.intern("title");
        assert_eq!(a, a_again);
        assert_ne!(a, b);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.resolve(a), "title");
        assert_eq!(interner.get("year"), Some(b));
        assert_eq!(interner.get("missing"), None);
    }

    #[test]
    fn empty_interner() {
        let interner = LabelInterner::new();
        assert!(interner.is_empty());
        assert_eq!(interner.len(), 0);
    }

    #[test]
    fn schema_labels_in_arena_order() {
        let schema = SchemaBuilder::new("bib")
            .root("book")
            .leaf("title", PrimitiveType::String)
            .leaf("title", PrimitiveType::String) // duplicate name, distinct node
            .build();
        let mut interner = LabelInterner::new();
        let labels = interner.intern_schema(&schema);
        assert_eq!(labels.len(), schema.len());
        assert_eq!(interner.len(), 2); // "book", "title"
        assert_eq!(labels[1], labels[2]); // both "title" nodes share a label
        for (i, id) in schema.node_ids().enumerate() {
            assert_eq!(interner.resolve(labels[i]), schema.node(id).name);
        }
    }
}

//! Token feature vectors for repository elements.
//!
//! An element's cluster identity is determined by its own name tokens
//! (weight 1.0), its parent's and grandparent's name tokens (path context,
//! decayed weights), and a token for its primitive type. Similarity is the
//! cosine over these weighted token bags.

use crate::repository::{ElementRef, Repository};
use serde::{Deserialize, Serialize};
use smx_text::split_identifier;
use std::collections::BTreeMap;

/// Decay applied per ancestor level when collecting context tokens.
const CONTEXT_DECAY: f64 = 0.5;
/// How many ancestor levels contribute context tokens.
const CONTEXT_LEVELS: usize = 2;
/// Weight of the type token.
const TYPE_WEIGHT: f64 = 0.25;

/// A weighted bag of tokens describing one element.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ElementFeatures {
    weights: BTreeMap<String, f64>,
    norm: f64,
}

impl ElementFeatures {
    /// Build from explicit `(token, weight)` pairs (weights accumulate).
    pub fn from_weights(pairs: impl IntoIterator<Item = (String, f64)>) -> Self {
        let mut weights: BTreeMap<String, f64> = BTreeMap::new();
        for (token, w) in pairs {
            if w > 0.0 {
                *weights.entry(token).or_insert(0.0) += w;
            }
        }
        let norm = weights.values().map(|w| w * w).sum::<f64>().sqrt();
        ElementFeatures { weights, norm }
    }

    /// The token weights.
    pub fn weights(&self) -> &BTreeMap<String, f64> {
        &self.weights
    }

    /// Whether the bag is empty.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Merge another feature bag into this one (used for centroids).
    pub fn merge(&mut self, other: &ElementFeatures) {
        for (t, w) in &other.weights {
            *self.weights.entry(t.clone()).or_insert(0.0) += w;
        }
        self.norm = self.weights.values().map(|w| w * w).sum::<f64>().sqrt();
    }

    /// Cosine similarity with another bag, in `[0, 1]`.
    pub fn cosine(&self, other: &ElementFeatures) -> f64 {
        if self.norm == 0.0 || other.norm == 0.0 {
            return if self.is_empty() && other.is_empty() {
                1.0
            } else {
                0.0
            };
        }
        // Iterate the smaller map.
        let (small, large) = if self.weights.len() <= other.weights.len() {
            (&self.weights, &other.weights)
        } else {
            (&other.weights, &self.weights)
        };
        let dot: f64 = small
            .iter()
            .filter_map(|(t, w)| large.get(t).map(|v| w * v))
            .sum();
        (dot / (self.norm * other.norm)).clamp(0.0, 1.0)
    }
}

/// Extract features for one repository element.
pub fn element_features(repo: &Repository, eref: ElementRef) -> ElementFeatures {
    let schema = repo.schema(eref.schema);
    let node = schema.node(eref.node);
    let mut pairs: Vec<(String, f64)> = split_identifier(&node.name)
        .into_iter()
        .map(|t| (t.0, 1.0))
        .collect();
    let mut weight = CONTEXT_DECAY;
    for ancestor in schema.ancestors(eref.node).into_iter().take(CONTEXT_LEVELS) {
        for t in split_identifier(&schema.node(ancestor).name) {
            pairs.push((t.0, weight));
        }
        weight *= CONTEXT_DECAY;
    }
    pairs.push((format!("ty:{}", node.ty.name()), TYPE_WEIGHT));
    ElementFeatures::from_weights(pairs)
}

/// Similarity between two elements' features.
pub fn feature_similarity(repo: &Repository, a: ElementRef, b: ElementRef) -> f64 {
    element_features(repo, a).cosine(&element_features(repo, b))
}

/// Features of a free-standing query token bag (e.g. the whole personal
/// schema), for ranking clusters against a query.
pub fn query_features(names: &[&str]) -> ElementFeatures {
    ElementFeatures::from_weights(
        names
            .iter()
            .flat_map(|n| split_identifier(n))
            .map(|t| (t.0, 1.0)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::SchemaId;
    use smx_xml::{NodeId, PrimitiveType, SchemaBuilder};

    fn repo() -> Repository {
        let mut r = Repository::new();
        r.add(
            SchemaBuilder::new("shop")
                .root("shop")
                .child("customerOrder", |o| {
                    o.leaf("orderDate", PrimitiveType::Date)
                        .leaf("customerName", PrimitiveType::String)
                })
                .child("stock", |s| s.leaf("itemName", PrimitiveType::String))
                .build(),
        );
        r
    }

    fn eref(node: u32) -> ElementRef {
        ElementRef {
            schema: SchemaId(0),
            node: NodeId(node),
        }
    }

    #[test]
    fn features_include_context_and_type() {
        let r = repo();
        // Node 2 = orderDate under customerOrder under shop.
        let f = element_features(&r, eref(2));
        assert!(f.weights().contains_key("order"));
        assert!(f.weights().contains_key("date"));
        assert!(f.weights().contains_key("customer")); // parent context
        assert!(f.weights().contains_key("shop")); // grandparent context
        assert!(f.weights().contains_key("ty:date"));
        // Own tokens outweigh context tokens.
        assert!(f.weights()["date"] > f.weights()["shop"]);
    }

    #[test]
    fn cosine_identity_and_range() {
        let r = repo();
        let f = element_features(&r, eref(3));
        assert!((f.cosine(&f) - 1.0).abs() < 1e-12);
        for a in 0..5u32 {
            for b in 0..5u32 {
                let s = feature_similarity(&r, eref(a), eref(b));
                assert!((0.0..=1.0 + 1e-12).contains(&s));
                let sym = feature_similarity(&r, eref(b), eref(a));
                assert!((s - sym).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn related_names_score_higher() {
        let r = repo();
        // customerName (3) vs itemName (5): share "name".
        let related = feature_similarity(&r, eref(3), eref(5));
        // orderDate (2) vs itemName (5): nothing shared but context.
        let unrelated = feature_similarity(&r, eref(2), eref(5));
        assert!(related > unrelated, "{related} vs {unrelated}");
    }

    #[test]
    fn merge_builds_centroids() {
        let r = repo();
        let mut centroid = element_features(&r, eref(2));
        centroid.merge(&element_features(&r, eref(3)));
        assert!(centroid.weights().contains_key("date"));
        assert!(centroid.weights().contains_key("name"));
        // Centroid is similar to both members.
        assert!(centroid.cosine(&element_features(&r, eref(2))) > 0.5);
        assert!(centroid.cosine(&element_features(&r, eref(3))) > 0.5);
    }

    #[test]
    fn empty_bags() {
        let empty = ElementFeatures::default();
        assert!(empty.is_empty());
        assert_eq!(empty.cosine(&empty), 1.0);
        let f = query_features(&["order"]);
        assert_eq!(empty.cosine(&f), 0.0);
    }

    #[test]
    fn query_features_tokenize() {
        let q = query_features(&["custOrder", "price"]);
        assert!(q.weights().contains_key("cust"));
        assert!(q.weights().contains_key("order"));
        assert!(q.weights().contains_key("price"));
    }
}

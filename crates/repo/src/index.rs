//! Token inverted index over repository elements.
//!
//! Maps each name token to the elements whose (tokenised) name contains
//! it. Used to seed cluster ranking and by the top-k matcher to find
//! promising schemas without scanning everything.

use crate::repository::{ElementRef, Repository, SchemaId};
use serde::{Deserialize, Serialize};
use smx_text::split_identifier;
use smx_xml::Schema;
use std::collections::BTreeMap;

/// Inverted index `token → sorted element list`.
///
/// The index is **incremental**: [`TokenIndex::add_schema`] appends one
/// schema's postings, and [`Repository::add`](crate::Repository::add)
/// calls it on every ingest — so a live repository never pays a full
/// [`TokenIndex::build`] rebuild. Because schemas are ingested in id
/// order and elements walked in arena order, appending yields postings
/// lists identical to a from-scratch build (asserted by the
/// `incremental_add_equals_rebuild` test).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TokenIndex {
    postings: BTreeMap<String, Vec<ElementRef>>,
}

impl TokenIndex {
    /// Build the index over every element of `repo`.
    pub fn build(repo: &Repository) -> Self {
        let mut index = TokenIndex::default();
        for (sid, schema) in repo.iter() {
            index.add_schema(sid, schema);
        }
        index
    }

    /// Append the postings of one schema — the incremental path
    /// [`Repository::add`](crate::Repository::add) uses. `sid` must be
    /// the id the schema holds (or will hold) in its repository.
    pub fn add_schema(&mut self, sid: SchemaId, schema: &Schema) {
        for node in schema.node_ids() {
            let eref = ElementRef { schema: sid, node };
            for token in split_identifier(&schema.node(node).name) {
                self.postings.entry(token.0).or_default().push(eref);
            }
        }
    }

    /// Remove one schema's postings — the incremental path
    /// [`Repository::remove_schema`](crate::Repository::remove_schema)
    /// uses. Targeted: only the posting lists of the removed schema's
    /// own tokens are touched (emptied entries are dropped from the
    /// vocabulary), nothing is rebuilt. `schema` must be the schema the
    /// repository held at `sid`.
    pub fn remove_schema(&mut self, sid: SchemaId, schema: &Schema) {
        for node in schema.node_ids() {
            for token in split_identifier(&schema.node(node).name) {
                if let Some(postings) = self.postings.get_mut(&token.0) {
                    postings.retain(|e| e.schema != sid);
                    if postings.is_empty() {
                        self.postings.remove(&token.0);
                    }
                }
            }
        }
    }

    /// Insert one schema's postings at their sorted positions — the
    /// replace path
    /// ([`Repository::replace_schema`](crate::Repository::replace_schema)),
    /// where `sid` is *smaller* than already-indexed ids so a plain
    /// append would break the posting-order contract. Posting lists
    /// stay sorted by `(schema, node)` — exactly what a from-scratch
    /// [`build`](Self::build) over the updated repository produces
    /// (asserted by the mutation differential tests).
    pub fn insert_schema_sorted(&mut self, sid: SchemaId, schema: &Schema) {
        for node in schema.node_ids() {
            let eref = ElementRef { schema: sid, node };
            for token in split_identifier(&schema.node(node).name) {
                let postings = self.postings.entry(token.0).or_default();
                let pos = postings.partition_point(|e| e < &eref);
                postings.insert(pos, eref);
            }
        }
    }

    /// Elements whose name contains `token` (exact token match).
    pub fn lookup(&self, token: &str) -> &[ElementRef] {
        self.postings.get(token).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct tokens.
    pub fn vocabulary_size(&self) -> usize {
        self.postings.len()
    }

    /// All distinct tokens in sorted order.
    pub fn tokens(&self) -> impl Iterator<Item = &str> {
        self.postings.keys().map(String::as_str)
    }

    /// All `(token, postings)` entries in sorted token order — the
    /// persistence export (`LabelStore::export_state`) walks this.
    pub fn postings(&self) -> impl Iterator<Item = (&str, &[ElementRef])> {
        self.postings
            .iter()
            .map(|(token, elements)| (token.as_str(), elements.as_slice()))
    }

    /// Rebuild an index from exported `(token, postings)` pairs — the
    /// persistence import path. Posting lists are taken verbatim (their
    /// element order is part of the index contract); duplicate tokens
    /// keep the last entry.
    pub fn from_postings(postings: Vec<(String, Vec<ElementRef>)>) -> Self {
        TokenIndex {
            postings: postings.into_iter().collect(),
        }
    }

    /// Schemas ranked by how many query tokens they contain (hit count,
    /// ties by id). The cheap pre-filter of the top-k matcher.
    pub fn rank_schemas(&self, query_tokens: &[&str]) -> Vec<(SchemaId, usize)> {
        let mut hits: BTreeMap<SchemaId, usize> = BTreeMap::new();
        for &tok in query_tokens {
            for t in split_identifier(tok) {
                for eref in self.lookup(t.as_str()) {
                    *hits.entry(eref.schema).or_insert(0) += 1;
                }
            }
        }
        let mut ranked: Vec<(SchemaId, usize)> = hits.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_xml::{PrimitiveType, SchemaBuilder};

    fn repo() -> Repository {
        let mut r = Repository::new();
        r.add(
            SchemaBuilder::new("bib")
                .root("bib")
                .child("book", |b| b.leaf("bookTitle", PrimitiveType::String))
                .build(),
        );
        r.add(
            SchemaBuilder::new("library")
                .root("library")
                .leaf("title", PrimitiveType::String)
                .build(),
        );
        r
    }

    #[test]
    fn lookup_tokenised_names() {
        let idx = TokenIndex::build(&repo());
        // "bookTitle" contributes tokens "book" and "title".
        assert_eq!(idx.lookup("title").len(), 2);
        assert_eq!(idx.lookup("book").len(), 2); // element `book` + bookTitle
        assert!(idx.lookup("zzz").is_empty());
        assert!(idx.vocabulary_size() >= 4);
    }

    #[test]
    fn rank_schemas_by_hits() {
        let idx = TokenIndex::build(&repo());
        let ranked = idx.rank_schemas(&["bookTitle"]);
        // Schema 0 has both "book" (twice) and "title"; schema 1 only "title".
        assert_eq!(ranked[0].0, SchemaId(0));
        assert!(ranked[0].1 > ranked[1].1);
    }

    #[test]
    fn empty_inputs() {
        let idx = TokenIndex::build(&Repository::new());
        assert_eq!(idx.vocabulary_size(), 0);
        assert!(idx.rank_schemas(&["anything"]).is_empty());
        let idx = TokenIndex::build(&repo());
        assert!(idx.rank_schemas(&[]).is_empty());
    }

    /// Independent from-scratch construction (the pre-incremental
    /// `build` body): one flat walk over `repo.elements()`. The
    /// incremental path is compared against *this*, not against
    /// `TokenIndex::build` (which now loops `add_schema` itself).
    fn reference_index(repo: &Repository) -> TokenIndex {
        let mut postings: BTreeMap<String, Vec<ElementRef>> = BTreeMap::new();
        for eref in repo.elements() {
            for token in split_identifier(repo.element_name(eref)) {
                postings.entry(token.0).or_default().push(eref);
            }
        }
        TokenIndex { postings }
    }

    #[test]
    fn incremental_add_equals_rebuild() {
        // Appending schema by schema must reproduce a from-scratch build
        // exactly: same vocabulary, same postings, same order.
        let repos = [repo(), Repository::new(), {
            let mut r = Repository::new();
            // Duplicate names across schemas exercise posting appends to
            // existing token entries.
            r.add(
                SchemaBuilder::new("a")
                    .root("order")
                    .leaf("orderLine", PrimitiveType::String)
                    .build(),
            );
            r.add(
                SchemaBuilder::new("b")
                    .root("order")
                    .leaf("line_item", PrimitiveType::String)
                    .build(),
            );
            r
        }];
        for r in &repos {
            let mut incremental = TokenIndex::default();
            for (sid, schema) in r.iter() {
                incremental.add_schema(sid, schema);
            }
            let expected = reference_index(r);
            assert_eq!(incremental, expected);
            assert_eq!(TokenIndex::build(r), expected);
            for tok in expected.tokens() {
                assert_eq!(incremental.lookup(tok), expected.lookup(tok), "{tok}");
            }
        }
    }

    #[test]
    fn tokens_sorted() {
        let idx = TokenIndex::build(&repo());
        let toks: Vec<&str> = idx.tokens().collect();
        let mut sorted = toks.clone();
        sorted.sort();
        assert_eq!(toks, sorted);
    }
}

//! Schema fragments induced by a cluster selection.
//!
//! A cluster-restricted matcher only targets elements of the chosen
//! clusters. Grouped per schema and closed under ancestors (so paths stay
//! resolvable), those elements form a [`Fragment`] — the unit of
//! non-exhaustive search in the paper's reference \[16\].

use crate::cluster::Clustering;
use crate::repository::{ElementRef, Repository, SchemaId};
use serde::{Deserialize, Serialize};
use smx_xml::NodeId;
use std::collections::BTreeSet;

/// The searchable part of one schema under a cluster selection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fragment {
    /// The schema this fragment belongs to.
    pub schema: SchemaId,
    /// Cluster members in this schema (the *allowed mapping targets*).
    pub members: BTreeSet<NodeId>,
    /// Members plus all their ancestors (the connected cover).
    pub cover: BTreeSet<NodeId>,
}

impl Fragment {
    /// Whether `node` is an allowed mapping target.
    pub fn allows(&self, node: NodeId) -> bool {
        self.members.contains(&node)
    }

    /// Fraction of the schema's elements inside the cover.
    pub fn coverage(&self, repo: &Repository) -> f64 {
        let total = repo.schema(self.schema).len();
        if total == 0 {
            0.0
        } else {
            self.cover.len() as f64 / total as f64
        }
    }
}

/// Build per-schema fragments from the `selected` cluster indices of a
/// clustering. Schemas with no selected member produce no fragment — the
/// matcher skips them entirely (that is where the efficiency comes from).
pub fn fragments_for_clusters(
    repo: &Repository,
    clustering: &Clustering,
    selected: &[usize],
) -> Vec<Fragment> {
    let mut per_schema: std::collections::BTreeMap<SchemaId, BTreeSet<NodeId>> =
        std::collections::BTreeMap::new();
    for &idx in selected {
        let Some(cluster) = clustering.clusters().get(idx) else {
            continue;
        };
        for &ElementRef { schema, node } in &cluster.members {
            per_schema.entry(schema).or_default().insert(node);
        }
    }
    per_schema
        .into_iter()
        .map(|(schema, members)| {
            let s = repo.schema(schema);
            let mut cover = members.clone();
            for &m in &members {
                cover.extend(s.ancestors(m));
            }
            Fragment {
                schema,
                members,
                cover,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::greedy_clustering;
    use smx_xml::{PrimitiveType, SchemaBuilder};

    fn repo() -> Repository {
        let mut r = Repository::new();
        r.add(
            SchemaBuilder::new("bib")
                .root("bib")
                .child("book", |b| {
                    b.leaf("bookTitle", PrimitiveType::String)
                        .leaf("bookAuthor", PrimitiveType::String)
                })
                .child("journal", |j| j.leaf("issn", PrimitiveType::Id))
                .build(),
        );
        r.add(
            SchemaBuilder::new("shop")
                .root("shop")
                .leaf("orderTotal", PrimitiveType::Decimal)
                .build(),
        );
        r
    }

    #[test]
    fn fragments_cover_ancestors() {
        let r = repo();
        // All-singleton clustering so we can select precisely.
        let clustering = greedy_clustering(&r, 1.01);
        // Find the cluster holding bookTitle.
        let idx = clustering
            .clusters()
            .iter()
            .position(|c| c.members.iter().any(|&m| r.element_name(m) == "bookTitle"))
            .unwrap();
        let frags = fragments_for_clusters(&r, &clustering, &[idx]);
        assert_eq!(frags.len(), 1);
        let f = &frags[0];
        assert_eq!(f.members.len(), 1);
        // Cover = bookTitle + book + bib.
        assert_eq!(f.cover.len(), 3);
        assert!(f.allows(*f.members.iter().next().unwrap()));
        let coverage = f.coverage(&r);
        assert!((coverage - 3.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn unselected_schemas_produce_no_fragment() {
        let r = repo();
        let clustering = greedy_clustering(&r, 1.01);
        let bib_only: Vec<usize> = clustering
            .clusters()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.members[0].schema == SchemaId(0))
            .map(|(i, _)| i)
            .collect();
        let frags = fragments_for_clusters(&r, &clustering, &bib_only);
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0].schema, SchemaId(0));
        assert_eq!(frags[0].members.len(), 6);
    }

    #[test]
    fn empty_selection_and_bogus_indices() {
        let r = repo();
        let clustering = greedy_clustering(&r, 0.5);
        assert!(fragments_for_clusters(&r, &clustering, &[]).is_empty());
        assert!(fragments_for_clusters(&r, &clustering, &[999]).is_empty());
    }
}

//! A repository of XML schemas with global element addressing.
//!
//! Every [`Repository::add`] also feeds the repository's
//! [`LabelStore`] — interner, per-label row-kernel profiles, token
//! index, and cached score rows — **incrementally**: ingest appends, it
//! never rebuilds. The store sits behind an `Arc`, so cloning a
//! repository (e.g. to construct a `MatchProblem`) shares all
//! label-level preprocessing and every score row computed so far.

use crate::store::{LabelStore, StoreConfig};
use serde::{Deserialize, Serialize};
use smx_xml::{NodeId, Schema};
use std::sync::Arc;

/// Dense index of a schema within a [`Repository`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SchemaId(pub u32);

impl SchemaId {
    /// The index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for SchemaId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A globally addressed repository element: `(schema, node)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ElementRef {
    /// The schema containing the element.
    pub schema: SchemaId,
    /// The element inside that schema.
    pub node: NodeId,
}

impl std::fmt::Display for ElementRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.schema, self.node)
    }
}

/// An ordered collection of schemas with an incrementally maintained
/// [`LabelStore`].
///
/// Cloning is cheap: both the schema list and the derived store sit
/// behind `Arc`s (copy-on-write via `Arc::make_mut` on mutation), so a
/// `MatchProblem` — or a whole batch of them — can own a repository
/// clone without duplicating any schema data.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Repository {
    /// The schemas, `Arc`-shared across clones; `Arc::make_mut`
    /// detaches on the rare mutate-after-clone.
    schemas: Arc<Vec<Schema>>,
    /// Derived, append-only state (interner, profiles, token index,
    /// score rows). `Arc` so clones share it; `Arc::make_mut` detaches
    /// on the rare mutate-after-clone.
    ///
    /// Serde note: the workspace's vendored serde derives are no-ops
    /// (nothing serialises at runtime). When the real crates are swapped
    /// in (ROADMAP open item), this field must be `#[serde(skip)]` *and*
    /// rebuilt from `schemas` on deserialize — a skipped-but-empty store
    /// would desync from the schema list and break `schema_labels`
    /// indexing.
    store: Arc<LabelStore>,
}

/// Equality is over the schemas; the store is derived state.
impl PartialEq for Repository {
    fn eq(&self, other: &Self) -> bool {
        self.schemas == other.schemas
    }
}

impl Repository {
    /// An empty repository.
    pub fn new() -> Self {
        Repository::default()
    }

    /// An empty repository whose label store uses `config` — e.g. a
    /// production deployment bounding the score-row cache
    /// (`max_cached_rows`) or pinning the batched-sweep worker count.
    pub fn with_store_config(config: StoreConfig) -> Self {
        Repository {
            schemas: Arc::new(Vec::new()),
            store: Arc::new(LabelStore::with_config(config)),
        }
    }

    /// Reassemble a repository from a schema list and an already
    /// imported label store — the warm-restart path `smx-persist`'s
    /// snapshot loader uses instead of replaying [`add`](Self::add)
    /// (which would rebuild profiles, postings, and score rows from
    /// scratch).
    ///
    /// The store must describe exactly these schemas (one column map per
    /// schema, labels resolving to the schemas' node names); the
    /// snapshot decoder validates that before calling this.
    pub fn from_parts(schemas: Vec<Schema>, store: LabelStore) -> Self {
        debug_assert!(
            schemas
                .iter()
                .enumerate()
                .all(|(i, s)| { store.schema_labels(SchemaId(i as u32)).len() == s.len() }),
            "store column maps must match the schema list"
        );
        Repository {
            schemas: Arc::new(schemas),
            store: Arc::new(store),
        }
    }

    /// Add a schema, returning its id. Updates the label store
    /// incrementally: new distinct labels are profiled, token postings
    /// appended — nothing is rebuilt.
    pub fn add(&mut self, schema: Schema) -> SchemaId {
        let id = SchemaId(self.schemas.len() as u32);
        Arc::make_mut(&mut self.store).add_schema(id, &schema);
        Arc::make_mut(&mut self.schemas).push(schema);
        id
    }

    /// Remove a schema, leaving a tombstone at its slot so every other
    /// [`SchemaId`] stays valid. Returns `false` if `sid` is out of
    /// range or already removed.
    ///
    /// Maintenance is **incremental and targeted**: the removed
    /// schema's token postings and store column map are stripped, its
    /// slot is replaced by an empty placeholder schema (every matcher
    /// skips empty schemas), and its generation stamp is bumped.
    /// Label-level derived state — interned labels, row-kernel
    /// profiles, cached score rows — is append-only and **never
    /// invalidated**: a cached row is a pure function of its query
    /// string and the label vocabulary, which only grows. Labels no
    /// schema references anymore are merely orphaned
    /// ([`LabelStore::orphaned_labels`]); their row entries stay
    /// bitwise valid.
    pub fn remove_schema(&mut self, sid: SchemaId) -> bool {
        if sid.index() >= self.schemas.len() || self.store.is_removed(sid) {
            return false;
        }
        let old = {
            let schemas = Arc::make_mut(&mut self.schemas);
            std::mem::replace(&mut schemas[sid.index()], Schema::new(""))
        };
        Arc::make_mut(&mut self.store).remove_schema(sid, &old);
        true
    }

    /// Replace the schema at `sid` with a new version, in place —
    /// remove-then-reingest under the same id, bumping the slot's
    /// generation twice (once per step; a replace of a live slot is
    /// observable as `generation += 2`). The slot may currently be a
    /// tombstone (replace doubles as re-add). Returns `false` only if
    /// `sid` is out of range.
    ///
    /// Like [`add`](Self::add), ingest is incremental: new distinct
    /// labels are profiled and token postings spliced in at their
    /// sorted positions — nothing is rebuilt, no cached score row is
    /// invalidated.
    pub fn replace_schema(&mut self, sid: SchemaId, schema: Schema) -> bool {
        if sid.index() >= self.schemas.len() {
            return false;
        }
        if !self.store.is_removed(sid) {
            let old = {
                let schemas = Arc::make_mut(&mut self.schemas);
                std::mem::replace(&mut schemas[sid.index()], Schema::new(""))
            };
            Arc::make_mut(&mut self.store).remove_schema(sid, &old);
        }
        Arc::make_mut(&mut self.store).reingest_schema(sid, &schema);
        Arc::make_mut(&mut self.schemas)[sid.index()] = schema;
        true
    }

    /// Whether `sid`'s slot is a tombstone left by
    /// [`remove_schema`](Self::remove_schema). Out-of-range ids report
    /// `false`.
    pub fn is_removed(&self, sid: SchemaId) -> bool {
        self.store.is_removed(sid)
    }

    /// Number of live (non-tombstoned) schemas — `len()` minus
    /// tombstones.
    pub fn live_schemas(&self) -> usize {
        self.store.live_schema_count()
    }

    /// The repository's label store: interner, row-kernel profiles,
    /// token index, and cached score rows, all maintained by
    /// [`add`](Self::add).
    pub fn store(&self) -> &LabelStore {
        &self.store
    }

    /// The incremental token inverted index (shortcut into the store).
    pub fn token_index(&self) -> &crate::TokenIndex {
        self.store.token_index()
    }

    /// Drop the store's cached score rows — benches use this to time a
    /// genuinely cold cost-matrix fill. Affects every clone sharing the
    /// store.
    pub fn clear_score_rows(&self) {
        self.store.clear_rows();
    }

    /// Number of schemas.
    pub fn len(&self) -> usize {
        self.schemas.len()
    }

    /// Whether the repository holds no schemas.
    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty()
    }

    /// Borrow a schema.
    pub fn schema(&self, id: SchemaId) -> &Schema {
        &self.schemas[id.index()]
    }

    /// Iterate over `(id, schema)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SchemaId, &Schema)> {
        self.schemas
            .iter()
            .enumerate()
            .map(|(i, s)| (SchemaId(i as u32), s))
    }

    /// All schema ids.
    pub fn schema_ids(&self) -> impl ExactSizeIterator<Item = SchemaId> {
        (0..self.schemas.len() as u32).map(SchemaId)
    }

    /// Total number of elements across all schemas.
    pub fn total_elements(&self) -> usize {
        self.schemas.iter().map(Schema::len).sum()
    }

    /// Iterate over every element in the repository.
    pub fn elements(&self) -> impl Iterator<Item = ElementRef> + '_ {
        self.iter().flat_map(|(sid, schema)| {
            schema
                .node_ids()
                .map(move |node| ElementRef { schema: sid, node })
        })
    }

    /// The name of the element `eref` points at.
    pub fn element_name(&self, eref: ElementRef) -> &str {
        &self.schema(eref.schema).node(eref.node).name
    }

    /// Find schemas by name.
    pub fn find_schema(&self, name: &str) -> Option<SchemaId> {
        self.iter()
            .find(|(_, s)| s.name() == name)
            .map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_xml::{PrimitiveType, SchemaBuilder};

    fn repo() -> Repository {
        let mut r = Repository::new();
        r.add(
            SchemaBuilder::new("bib")
                .root("bib")
                .child("book", |b| b.leaf("title", PrimitiveType::String))
                .build(),
        );
        r.add(
            SchemaBuilder::new("shop")
                .root("shop")
                .leaf("order", PrimitiveType::String)
                .build(),
        );
        r
    }

    #[test]
    fn add_and_lookup() {
        let r = repo();
        assert_eq!(r.len(), 2);
        assert_eq!(r.total_elements(), 5);
        assert_eq!(r.schema(SchemaId(0)).name(), "bib");
        assert_eq!(r.find_schema("shop"), Some(SchemaId(1)));
        assert_eq!(r.find_schema("nope"), None);
    }

    #[test]
    fn element_iteration_and_names() {
        let r = repo();
        let elements: Vec<ElementRef> = r.elements().collect();
        assert_eq!(elements.len(), 5);
        let names: Vec<&str> = elements.iter().map(|&e| r.element_name(e)).collect();
        assert_eq!(names, vec!["bib", "book", "title", "shop", "order"]);
        assert_eq!(elements[2].to_string(), "s0:n2");
    }

    #[test]
    fn empty_repository() {
        let r = Repository::new();
        assert!(r.is_empty());
        assert_eq!(r.total_elements(), 0);
        assert_eq!(r.elements().count(), 0);
    }
}

//! A repository of XML schemas with global element addressing.

use serde::{Deserialize, Serialize};
use smx_xml::{NodeId, Schema};

/// Dense index of a schema within a [`Repository`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SchemaId(pub u32);

impl SchemaId {
    /// The index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for SchemaId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A globally addressed repository element: `(schema, node)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ElementRef {
    /// The schema containing the element.
    pub schema: SchemaId,
    /// The element inside that schema.
    pub node: NodeId,
}

impl std::fmt::Display for ElementRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.schema, self.node)
    }
}

/// An ordered collection of schemas.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Repository {
    schemas: Vec<Schema>,
}

impl Repository {
    /// An empty repository.
    pub fn new() -> Self {
        Repository::default()
    }

    /// Add a schema, returning its id.
    pub fn add(&mut self, schema: Schema) -> SchemaId {
        let id = SchemaId(self.schemas.len() as u32);
        self.schemas.push(schema);
        id
    }

    /// Number of schemas.
    pub fn len(&self) -> usize {
        self.schemas.len()
    }

    /// Whether the repository holds no schemas.
    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty()
    }

    /// Borrow a schema.
    pub fn schema(&self, id: SchemaId) -> &Schema {
        &self.schemas[id.index()]
    }

    /// Iterate over `(id, schema)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SchemaId, &Schema)> {
        self.schemas
            .iter()
            .enumerate()
            .map(|(i, s)| (SchemaId(i as u32), s))
    }

    /// All schema ids.
    pub fn schema_ids(&self) -> impl ExactSizeIterator<Item = SchemaId> {
        (0..self.schemas.len() as u32).map(SchemaId)
    }

    /// Total number of elements across all schemas.
    pub fn total_elements(&self) -> usize {
        self.schemas.iter().map(Schema::len).sum()
    }

    /// Iterate over every element in the repository.
    pub fn elements(&self) -> impl Iterator<Item = ElementRef> + '_ {
        self.iter().flat_map(|(sid, schema)| {
            schema.node_ids().map(move |node| ElementRef { schema: sid, node })
        })
    }

    /// The name of the element `eref` points at.
    pub fn element_name(&self, eref: ElementRef) -> &str {
        &self.schema(eref.schema).node(eref.node).name
    }

    /// Find schemas by name.
    pub fn find_schema(&self, name: &str) -> Option<SchemaId> {
        self.iter().find(|(_, s)| s.name() == name).map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smx_xml::{PrimitiveType, SchemaBuilder};

    fn repo() -> Repository {
        let mut r = Repository::new();
        r.add(
            SchemaBuilder::new("bib")
                .root("bib")
                .child("book", |b| b.leaf("title", PrimitiveType::String))
                .build(),
        );
        r.add(
            SchemaBuilder::new("shop")
                .root("shop")
                .leaf("order", PrimitiveType::String)
                .build(),
        );
        r
    }

    #[test]
    fn add_and_lookup() {
        let r = repo();
        assert_eq!(r.len(), 2);
        assert_eq!(r.total_elements(), 5);
        assert_eq!(r.schema(SchemaId(0)).name(), "bib");
        assert_eq!(r.find_schema("shop"), Some(SchemaId(1)));
        assert_eq!(r.find_schema("nope"), None);
    }

    #[test]
    fn element_iteration_and_names() {
        let r = repo();
        let elements: Vec<ElementRef> = r.elements().collect();
        assert_eq!(elements.len(), 5);
        let names: Vec<&str> = elements.iter().map(|&e| r.element_name(e)).collect();
        assert_eq!(names, vec!["bib", "book", "title", "shop", "order"]);
        assert_eq!(elements[2].to_string(), "s0:n2");
    }

    #[test]
    fn empty_repository() {
        let r = Repository::new();
        assert!(r.is_empty());
        assert_eq!(r.total_elements(), 0);
        assert_eq!(r.elements().count(), 0);
    }
}

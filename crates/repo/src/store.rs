//! The repository-resident label score store.
//!
//! A production repository answers many matching queries; per-query work
//! should touch only what is new about the query. The store keeps, *on
//! the repository itself* and maintained **incrementally on every
//! [`Repository::add`](crate::Repository::add)**:
//!
//! * the [`LabelInterner`] over every distinct element name,
//! * one [`LabelProfile`] per distinct label — the row kernel's
//!   pair-independent preprocessing (normalised form, token profiles,
//!   Myers pattern table, flat trigram profile), built exactly once, at
//!   ingest,
//! * per-schema label ids in arena order (the cost-matrix column map),
//! * the incremental [`TokenIndex`],
//! * a **score-row cache**: for each query label already seen, the dense
//!   vector of name *distances* to every stored label, computed by one
//!   [`RowKernel`] sweep and reused by every later query.
//!
//! Adding a schema appends: new distinct labels get profiles, postings
//! are appended, and cached score rows stay valid — they simply cover a
//! prefix of the grown label list and are *extended* (only the new
//! columns are evaluated) the next time they are requested. Nothing is
//! ever rebuilt from scratch.
//!
//! # Bounded cache (LRU)
//!
//! Unbounded, the row cache grows with the distinct query vocabulary —
//! fine for experiments, not for a long-lived deployment. [`StoreConfig`]
//! puts a lid on it: with `max_cached_rows` set, the cache evicts the
//! least-recently-used row whenever it would exceed the bound. Evicted
//! rows are simply recomputed (bitwise identically) on next sight, so
//! the bound trades pair evaluations for memory and never affects
//! results. Hits, misses, and evictions are counted and surfaced through
//! the [`StoreCounters`] snapshot, so warm-path behaviour under memory
//! pressure stays measurable.
//!
//! # Batched queries
//!
//! [`LabelStore::score_rows`] serves many query labels in one call: the
//! missing rows are computed by a single **profile-major sweep** — one
//! pass over the stored [`LabelProfile`]s, evaluating every pending
//! query kernel per profile — instead of one full pass per query, and
//! the pass is chunked across `std::thread::scope` workers when the
//! pending work is large enough to pay for them. Per-pair values are
//! independent, so the batched sweep is bitwise identical to serving
//! each query alone.
//!
//! # Score-identity contract
//!
//! [`LabelStore::score_row`] values are bitwise identical to
//! `NameSimilarity::default().distance(query, label)` — the row kernel
//! guarantees it (see `smx_text::kernel`). The matching crate's
//! `CostMatrix` fills from these rows and stays bitwise equal to direct
//! objective evaluation, which is what `tests/score_identity.rs` in
//! `smx-match` gates on.

use crate::index::TokenIndex;
use crate::intern::{LabelId, LabelInterner};
use crate::repository::SchemaId;
use parking_lot::RwLock;
use smx_text::{LabelProfile, RowKernel};
use smx_xml::Schema;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::Arc;

/// Pending batched sweeps smaller than this many (query, label) pairs
/// stay single-threaded — scoped workers cost more than they save.
const PARALLEL_SWEEP_MIN_PAIRS: usize = 1024;

/// Sentinel for "no bound" in the atomic `max_cached_rows` cell.
const UNBOUNDED: usize = usize::MAX;

/// Configuration of a [`LabelStore`]'s score-row cache and batch sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreConfig {
    /// Upper bound on cached score rows. When the cache would exceed it,
    /// least-recently-used rows are evicted (and recomputed, bitwise
    /// identically, if queried again). `None` means unbounded — the
    /// cache grows with the distinct query vocabulary.
    pub max_cached_rows: Option<usize>,
    /// Worker threads for batched row sweeps ([`LabelStore::score_rows`]);
    /// `0` means auto (available parallelism). Small sweeps stay
    /// single-threaded regardless.
    pub batch_threads: usize,
}

/// A consistent snapshot of a [`LabelStore`]'s work counters.
///
/// All row-path counter updates happen while the row-cache lock is held,
/// and [`LabelStore::counters`] reads them under the exclusive lock — so
/// a snapshot is internally consistent even while parallel matchers are
/// filling rows: `row_hits + row_misses == row_lookups` always holds, a
/// guarantee individual relaxed atomic loads could not give.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreCounters {
    /// Label profiles ever built (label-level work; once per distinct
    /// label, at ingest).
    pub profile_builds: u64,
    /// (query, label) kernel evaluations ever run (pair-level work).
    /// Cached repeats must not move this.
    pub pair_evals: u64,
    /// Row lookups served from the cache (including batch-internal
    /// duplicates served from an in-flight row).
    pub row_hits: u64,
    /// Row lookups that had to sweep (absent rows and stale prefixes).
    pub row_misses: u64,
    /// Total row lookups; equals `row_hits + row_misses`.
    pub row_lookups: u64,
    /// Rows evicted by the LRU bound.
    pub row_evictions: u64,
}

/// One cached score row plus its recency stamp. The stamp is atomic so
/// cache hits can refresh it under the shared read lock.
struct CachedRow {
    row: Arc<Vec<f64>>,
    last_used: AtomicU64,
}

impl Clone for CachedRow {
    fn clone(&self) -> Self {
        CachedRow {
            row: Arc::clone(&self.row),
            last_used: AtomicU64::new(self.last_used.load(Relaxed)),
        }
    }
}

/// Interner, per-label profiles, token index, and cached score rows for
/// one repository. Obtained via
/// [`Repository::store`](crate::Repository::store).
pub struct LabelStore {
    interner: LabelInterner,
    /// `profiles[id.index()]` is the profile of `interner.resolve(id)`.
    profiles: Vec<LabelProfile>,
    /// Per schema (by id), the label of each node in arena order.
    schema_labels: Vec<Vec<LabelId>>,
    index: TokenIndex,
    /// Query label → distances to the first `row.len()` stored labels.
    /// Rows are append-consistent: label ids are stable, so a short row
    /// is a valid prefix and only its tail needs computing after adds.
    rows: RwLock<HashMap<String, CachedRow>>,
    /// Monotonic recency clock for the LRU stamps.
    clock: AtomicU64,
    /// LRU bound on `rows` (`UNBOUNDED` = no bound). Atomic so tests and
    /// deployments can tighten it on a live, shared store.
    max_cached_rows: AtomicUsize,
    /// Worker threads for batched sweeps (0 = auto).
    batch_threads: usize,
    /// How many label profiles were ever built (label-level work).
    profile_builds: AtomicU64,
    /// How many (query, label) kernel evaluations were ever run
    /// (pair-level work). Repeated queries must not move this.
    pair_evals: AtomicU64,
    row_hits: AtomicU64,
    row_misses: AtomicU64,
    row_lookups: AtomicU64,
    row_evictions: AtomicU64,
}

/// A query the current `score_rows` call must sweep: its first-seen text,
/// the reusable cached prefix (stale rows), and every output slot that
/// asked for it.
struct PendingRow<'q> {
    query: &'q str,
    prefix: Option<Arc<Vec<f64>>>,
    slots: Vec<usize>,
}

impl LabelStore {
    /// An empty store with the default (unbounded) configuration.
    pub fn new() -> Self {
        LabelStore::with_config(StoreConfig::default())
    }

    /// An empty store with an explicit cache bound / sweep configuration.
    pub fn with_config(config: StoreConfig) -> Self {
        LabelStore {
            interner: LabelInterner::new(),
            profiles: Vec::new(),
            schema_labels: Vec::new(),
            index: TokenIndex::default(),
            rows: RwLock::new(HashMap::new()),
            clock: AtomicU64::new(0),
            max_cached_rows: AtomicUsize::new(config.max_cached_rows.unwrap_or(UNBOUNDED)),
            batch_threads: config.batch_threads,
            profile_builds: AtomicU64::new(0),
            pair_evals: AtomicU64::new(0),
            row_hits: AtomicU64::new(0),
            row_misses: AtomicU64::new(0),
            row_lookups: AtomicU64::new(0),
            row_evictions: AtomicU64::new(0),
        }
    }

    /// The store's current configuration.
    pub fn config(&self) -> StoreConfig {
        let cap = self.max_cached_rows.load(Relaxed);
        StoreConfig {
            max_cached_rows: (cap != UNBOUNDED).then_some(cap),
            batch_threads: self.batch_threads,
        }
    }

    /// Change the LRU bound on a live store, evicting immediately if the
    /// cache already exceeds the new bound. `None` removes the bound.
    pub fn set_max_cached_rows(&self, max: Option<usize>) {
        self.max_cached_rows.store(max.unwrap_or(UNBOUNDED), Relaxed);
        let mut cache = self.rows.write();
        self.evict_over_cap(&mut cache);
    }

    /// Ingest one schema: intern its labels (building profiles only for
    /// labels never seen before), record its column map, append its
    /// token postings. Called by `Repository::add` with the id the
    /// schema gets; ids must arrive densely in order.
    pub(crate) fn add_schema(&mut self, sid: SchemaId, schema: &Schema) {
        debug_assert_eq!(sid.index(), self.schema_labels.len());
        let known = self.interner.len();
        let labels = self.interner.intern_schema(schema);
        for id in known..self.interner.len() {
            self.profiles.push(LabelProfile::new(self.interner.resolve(LabelId(id as u32))));
        }
        self.profile_builds.fetch_add((self.interner.len() - known) as u64, Relaxed);
        self.schema_labels.push(labels);
        self.index.add_schema(sid, schema);
    }

    /// The interner over every distinct label in the repository.
    pub fn interner(&self) -> &LabelInterner {
        &self.interner
    }

    /// Number of distinct labels stored.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether no labels are stored.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The profile of one stored label.
    pub fn profile(&self, id: LabelId) -> &LabelProfile {
        &self.profiles[id.index()]
    }

    /// Per-node label ids of `sid`, arena order — the column map a cost
    /// matrix indexes score rows with.
    pub fn schema_labels(&self, sid: SchemaId) -> &[LabelId] {
        &self.schema_labels[sid.index()]
    }

    /// The incremental token inverted index.
    pub fn token_index(&self) -> &TokenIndex {
        &self.index
    }

    /// The dense distance row of `query` against every stored label:
    /// `row[id.index()] == NameSimilarity::default().distance(query,
    /// label)`, bitwise (computed by a [`RowKernel`] sweep).
    ///
    /// Rows are cached per distinct query label (up to the configured
    /// LRU bound). A repeated query — the same personal label in a later
    /// `MatchProblem` against this repository — returns the cached row
    /// without evaluating a single pair. After new schemas were added, a
    /// cached row is extended: only distances to the *new* labels are
    /// computed.
    pub fn score_row(&self, query: &str) -> Arc<Vec<f64>> {
        self.score_rows(&[query]).pop().expect("one row per query")
    }

    /// [`score_row`](Self::score_row) for a whole batch of query labels
    /// in one call: `result[i]` is the row of `queries[i]`.
    ///
    /// Cached rows are served as usual; all *missing* rows (duplicates
    /// deduplicated first) are computed by one profile-major sweep over
    /// the stored label profiles — each profile is visited once and
    /// every pending query kernel evaluated against it — chunked across
    /// scoped worker threads when the pending work is large. Every pair
    /// value is independent, so the result is bitwise identical to
    /// calling `score_row` per query, in any order.
    ///
    /// Concurrent callers may sweep the same query redundantly; they
    /// compute identical values, so last-write-wins is fine.
    pub fn score_rows(&self, queries: &[&str]) -> Vec<Arc<Vec<f64>>> {
        let n = self.profiles.len();
        let mut out: Vec<Option<Arc<Vec<f64>>>> = vec![None; queries.len()];
        let mut pending: Vec<PendingRow<'_>> = Vec::new();
        let mut pending_of: HashMap<&str, usize> = HashMap::new();
        {
            let cache = self.rows.read();
            for (i, &q) in queries.iter().enumerate() {
                if let Some(&pi) = pending_of.get(q) {
                    pending[pi].slots.push(i);
                    continue;
                }
                match cache.get(q) {
                    Some(entry) if entry.row.len() == n => {
                        entry.last_used.store(self.tick(), Relaxed);
                        self.row_lookups.fetch_add(1, Relaxed);
                        self.row_hits.fetch_add(1, Relaxed);
                        out[i] = Some(Arc::clone(&entry.row));
                    }
                    stale => {
                        let prefix = stale.map(|entry| Arc::clone(&entry.row));
                        pending_of.insert(q, pending.len());
                        pending.push(PendingRow { query: q, prefix, slots: vec![i] });
                    }
                }
            }
        }
        if !pending.is_empty() {
            self.fill_pending(&mut out, &pending, n);
        }
        out.into_iter().map(|row| row.expect("every slot filled")).collect()
    }

    /// Sweep all pending rows and install them under one write lock,
    /// updating counters and evicting past the LRU bound.
    fn fill_pending(&self, out: &mut [Option<Arc<Vec<f64>>>], pending: &[PendingRow<'_>], n: usize) {
        let kernels: Vec<(RowKernel, usize)> = pending
            .iter()
            .map(|p| {
                (RowKernel::new(p.query), p.prefix.as_ref().map_or(0, |prefix| prefix.len()))
            })
            .collect();
        let tails = self.sweep(&kernels, n);
        let computed: u64 = kernels.iter().map(|&(_, start)| (n - start) as u64).sum();
        let mut cache = self.rows.write();
        self.pair_evals.fetch_add(computed, Relaxed);
        for (p, tail) in pending.iter().zip(tails) {
            // One miss per swept row; batch-internal duplicates were
            // served from the in-flight row and count as hits.
            self.row_lookups.fetch_add(p.slots.len() as u64, Relaxed);
            self.row_misses.fetch_add(1, Relaxed);
            self.row_hits.fetch_add(p.slots.len() as u64 - 1, Relaxed);
            let mut row = Vec::with_capacity(n);
            if let Some(prefix) = &p.prefix {
                row.extend_from_slice(prefix);
            }
            row.extend(tail);
            let row = Arc::new(row);
            for &slot in &p.slots {
                out[slot] = Some(Arc::clone(&row));
            }
            cache.insert(
                p.query.to_owned(),
                CachedRow { row, last_used: AtomicU64::new(self.tick()) },
            );
        }
        self.evict_over_cap(&mut cache);
    }

    /// Compute each kernel's missing row tail (`start..n`) by one tiled
    /// pass over the stored profiles: the column axis is cut into
    /// contiguous chunks, and within a chunk every pending kernel
    /// streams the same cache-resident profiles through its tight pair
    /// loop — profile loads are amortised across the whole batch instead
    /// of repeated per query. Chunks go to scoped workers when the
    /// pending work is large enough to pay for them.
    fn sweep(&self, kernels: &[(RowKernel, usize)], n: usize) -> Vec<Vec<f64>> {
        let threads = self.sweep_threads(kernels, n);
        if threads <= 1 {
            return Self::sweep_chunk(kernels, &self.profiles, 0);
        }
        // Chunk only the columns some kernel actually covers — when every
        // pending row is a stale-prefix extension (tails starting deep
        // into the label list), chunking from 0 would hand most workers
        // empty ranges.
        let base = kernels.iter().map(|&(_, start)| start).min().unwrap_or(0);
        let chunk = (n - base).div_ceil(threads);
        let mut parts: Vec<Vec<Vec<f64>>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            let mut lo = base;
            while lo < n {
                let hi = (lo + chunk).min(n);
                let profiles = &self.profiles[lo..hi];
                handles.push(scope.spawn(move || Self::sweep_chunk(kernels, profiles, lo)));
                lo = hi;
            }
            parts = handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect();
        });
        // Stitch the chunks back in column order; per-pair values are
        // independent, so this equals the single-threaded pass bitwise.
        let mut rows: Vec<Vec<f64>> =
            kernels.iter().map(|&(_, start)| Vec::with_capacity(n - start)).collect();
        for part in parts {
            for (row, chunk_row) in rows.iter_mut().zip(part) {
                row.extend(chunk_row);
            }
        }
        rows
    }

    /// One tile of the sweep: every kernel's distances over the columns
    /// `offset..offset + profiles.len()` (clipped to each kernel's own
    /// `start`), computed by the kernel's streaming row loop.
    fn sweep_chunk(
        kernels: &[(RowKernel, usize)],
        profiles: &[LabelProfile],
        offset: usize,
    ) -> Vec<Vec<f64>> {
        kernels
            .iter()
            .map(|(kernel, start)| {
                let skip = start.saturating_sub(offset);
                let mut row = Vec::new();
                if skip < profiles.len() {
                    kernel.distances_into(&profiles[skip..], &mut row);
                }
                row
            })
            .collect()
    }

    /// Worker count for a pending sweep: 1 unless the pair count clears
    /// [`PARALLEL_SWEEP_MIN_PAIRS`], else the configured/auto thread
    /// count — capped so every worker keeps at least that many pairs
    /// (and by the column count).
    fn sweep_threads(&self, kernels: &[(RowKernel, usize)], n: usize) -> usize {
        let work: usize = kernels.iter().map(|&(_, start)| n - start).sum();
        if work < PARALLEL_SWEEP_MIN_PAIRS {
            return 1;
        }
        let configured = if self.batch_threads == 0 {
            std::thread::available_parallelism().map_or(1, |t| t.get())
        } else {
            self.batch_threads
        };
        configured.max(1).min(work / PARALLEL_SWEEP_MIN_PAIRS).max(1).min(n.max(1))
    }

    /// Next recency-clock value.
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Relaxed) + 1
    }

    /// Evict least-recently-used rows until the cache respects the
    /// configured bound. Called with the write lock held. One stamp
    /// scan + one partial sort of the victims, so tightening the bound
    /// on a large live cache stays `O(len log len)`, not `O(len²)`.
    fn evict_over_cap(&self, cache: &mut HashMap<String, CachedRow>) {
        let cap = self.max_cached_rows.load(Relaxed);
        let Some(excess) = cache.len().checked_sub(cap).filter(|&e| e > 0) else {
            return;
        };
        let mut stamps: Vec<(u64, String)> = cache
            .iter()
            .map(|(key, entry)| (entry.last_used.load(Relaxed), key.clone()))
            .collect();
        stamps.select_nth_unstable(excess - 1);
        for (_, key) in &stamps[..excess] {
            cache.remove(key);
        }
        self.row_evictions.fetch_add(excess as u64, Relaxed);
    }

    /// Number of query labels with a cached score row.
    pub fn cached_rows(&self) -> usize {
        self.rows.read().len()
    }

    /// Whether `query` currently has a cached (possibly stale-prefix)
    /// row. Read-only: does not refresh LRU recency or count a lookup.
    pub fn has_cached_row(&self, query: &str) -> bool {
        self.rows.read().contains_key(query)
    }

    /// Drop every cached score row (profiles and index stay). Benches
    /// use this to measure a genuinely cold fill.
    pub fn clear_rows(&self) {
        self.rows.write().clear();
    }

    /// A consistent snapshot of every work counter.
    ///
    /// Taken under the row cache's exclusive lock, and all row-path
    /// counter updates happen while that lock is held (shared for hits,
    /// exclusive for sweeps) — so the snapshot can never observe a
    /// lookup whose hit/miss classification is still in flight, even
    /// while parallel matchers are filling rows. Tests should assert on
    /// this snapshot rather than on individual counter loads.
    pub fn counters(&self) -> StoreCounters {
        let _guard = self.rows.write();
        StoreCounters {
            profile_builds: self.profile_builds.load(Relaxed),
            pair_evals: self.pair_evals.load(Relaxed),
            row_hits: self.row_hits.load(Relaxed),
            row_misses: self.row_misses.load(Relaxed),
            row_lookups: self.row_lookups.load(Relaxed),
            row_evictions: self.row_evictions.load(Relaxed),
        }
    }

    /// Total label profiles ever built — the label-level work counter.
    pub fn profile_builds(&self) -> u64 {
        self.profile_builds.load(Relaxed)
    }

    /// Total (query, label) kernel evaluations ever run — the pair-level
    /// work counter the store-reuse tests assert on.
    pub fn pair_evals(&self) -> u64 {
        self.pair_evals.load(Relaxed)
    }
}

impl Default for LabelStore {
    fn default() -> Self {
        LabelStore::new()
    }
}

impl Clone for LabelStore {
    fn clone(&self) -> Self {
        // Hold the exclusive lock while snapshotting rows *and*
        // counters: hit-path counter updates happen under the shared
        // lock, so a read-lock clone could freeze `row_lookups` between
        // a peer's paired increments and break the counters invariant.
        let rows = self.rows.write();
        LabelStore {
            interner: self.interner.clone(),
            profiles: self.profiles.clone(),
            schema_labels: self.schema_labels.clone(),
            index: self.index.clone(),
            rows: RwLock::new((*rows).clone()),
            clock: AtomicU64::new(self.clock.load(Relaxed)),
            max_cached_rows: AtomicUsize::new(self.max_cached_rows.load(Relaxed)),
            batch_threads: self.batch_threads,
            profile_builds: AtomicU64::new(self.profile_builds.load(Relaxed)),
            pair_evals: AtomicU64::new(self.pair_evals.load(Relaxed)),
            row_hits: AtomicU64::new(self.row_hits.load(Relaxed)),
            row_misses: AtomicU64::new(self.row_misses.load(Relaxed)),
            row_lookups: AtomicU64::new(self.row_lookups.load(Relaxed)),
            row_evictions: AtomicU64::new(self.row_evictions.load(Relaxed)),
        }
    }
}

impl std::fmt::Debug for LabelStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LabelStore")
            .field("labels", &self.profiles.len())
            .field("schemas", &self.schema_labels.len())
            .field("cached_rows", &self.cached_rows())
            .field("config", &self.config())
            .field("counters", &self.counters())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::Repository;
    use smx_text::NameSimilarity;
    use smx_xml::{PrimitiveType, SchemaBuilder};

    fn repo() -> Repository {
        let mut r = Repository::new();
        r.add(
            SchemaBuilder::new("bib")
                .root("bib")
                .child("book", |b| b.leaf("title", PrimitiveType::String))
                .build(),
        );
        r.add(
            SchemaBuilder::new("shop")
                .root("shop")
                .leaf("title", PrimitiveType::String) // duplicate label
                .build(),
        );
        r
    }

    #[test]
    fn ingest_builds_profiles_once_per_distinct_label() {
        let r = repo();
        let store = r.store();
        // bib, book, title, shop — "title" recurs but is built once.
        assert_eq!(store.len(), 4);
        assert_eq!(store.profile_builds(), 4);
        assert_eq!(store.schema_labels(SchemaId(0)).len(), 3);
        assert_eq!(store.schema_labels(SchemaId(1)).len(), 2);
        // Column map resolves to node names.
        let labels = store.schema_labels(SchemaId(1));
        assert_eq!(store.interner().resolve(labels[1]), "title");
        assert_eq!(store.profile(labels[1]).raw(), "title");
    }

    #[test]
    fn score_rows_match_scalar_distance_bitwise() {
        let r = repo();
        let store = r.store();
        let scalar = NameSimilarity::default();
        for query in ["title", "bookTitle", "", "shop"] {
            let row = store.score_row(query);
            assert_eq!(row.len(), store.len());
            for id in 0..store.len() {
                let label = store.interner().resolve(LabelId(id as u32));
                assert_eq!(
                    row[id].to_bits(),
                    scalar.distance(query, label).to_bits(),
                    "{query:?} vs {label:?}"
                );
            }
        }
    }

    #[test]
    fn repeated_queries_reuse_cached_rows() {
        let r = repo();
        let store = r.store();
        let first = store.score_row("orderTitle");
        let evals = store.pair_evals();
        assert_eq!(evals, store.len() as u64);
        let second = store.score_row("orderTitle");
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(store.pair_evals(), evals, "repeat query re-evaluated pairs");
        assert_eq!(store.cached_rows(), 1);
        let c = store.counters();
        assert_eq!(c.row_hits, 1);
        assert_eq!(c.row_misses, 1);
        assert_eq!(c.row_lookups, 2);
        assert_eq!(c.row_evictions, 0);
    }

    #[test]
    fn rows_extend_incrementally_after_add() {
        let mut r = repo();
        let stale = r.store().score_row("title");
        let evals_before = r.store().pair_evals();
        r.add(
            SchemaBuilder::new("extra")
                .root("warehouse")
                .leaf("isbn", PrimitiveType::String)
                .build(),
        );
        let store = r.store();
        assert_eq!(store.len(), 6);
        let extended = store.score_row("title");
        // Only the two new labels were evaluated...
        assert_eq!(store.pair_evals(), evals_before + 2);
        // ...and the extended row equals a from-scratch sweep.
        store.clear_rows();
        let fresh = store.score_row("title");
        assert_eq!(extended.len(), fresh.len());
        for (a, b) in extended.iter().zip(fresh.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(&extended[..stale.len()], &stale[..]);
    }

    #[test]
    fn clone_detaches_counters_but_shares_values() {
        let r = repo();
        r.store().score_row("title");
        let cloned = r.clone();
        // The clone shares the Arc'd store, so the cached row survives.
        assert_eq!(cloned.store().cached_rows(), 1);
        // Mutating the clone (add) detaches it via make_mut; the original
        // keeps its own counters.
        let mut cloned = cloned;
        cloned.add(SchemaBuilder::new("x").root("y").build());
        assert_eq!(cloned.store().len(), r.store().len() + 1);
        assert_eq!(r.store().cached_rows(), 1);
    }

    #[test]
    fn batched_rows_equal_individual_rows_bitwise() {
        let batched = repo();
        let individual = repo();
        let queries = ["title", "orderNo", "title", "bookTitle", "", "shop", "orderNo"];
        let rows = batched.store().score_rows(&queries);
        assert_eq!(rows.len(), queries.len());
        for (&q, row) in queries.iter().zip(&rows) {
            let alone = individual.store().score_row(q);
            assert_eq!(row.len(), alone.len(), "{q:?}");
            for (a, b) in row.iter().zip(alone.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{q:?}");
            }
        }
        // Duplicates in the batch share one sweep: 5 distinct queries.
        assert_eq!(batched.store().pair_evals(), 5 * batched.store().len() as u64);
        let c = batched.store().counters();
        assert_eq!(c.row_misses, 5);
        assert_eq!(c.row_hits, 2, "duplicate batch entries count as hits");
        assert_eq!(c.row_lookups, 7);
        assert_eq!(c.row_hits + c.row_misses, c.row_lookups);
    }

    #[test]
    fn parallel_sweep_equals_sequential_sweep_bitwise() {
        // Enough labels and queries to clear PARALLEL_SWEEP_MIN_PAIRS.
        let build = |threads: usize| {
            let mut r = Repository::with_store_config(StoreConfig {
                max_cached_rows: None,
                batch_threads: threads,
            });
            let mut b = SchemaBuilder::new("wide").root("container");
            for i in 0..300 {
                b = b.leaf(format!("field_{i}_{}", "x".repeat(i % 17)), PrimitiveType::String);
            }
            r.add(b.build());
            r
        };
        let seq = build(1);
        let par = build(4);
        let queries: Vec<String> = (0..8).map(|i| format!("queryLabel{i}")).collect();
        let refs: Vec<&str> = queries.iter().map(String::as_str).collect();
        assert!(refs.len() * seq.store().len() >= PARALLEL_SWEEP_MIN_PAIRS);
        let a = seq.store().score_rows(&refs);
        let b = par.store().score_rows(&refs);
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.len(), rb.len());
            for (x, y) in ra.iter().zip(rb.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert_eq!(seq.store().pair_evals(), par.store().pair_evals());
    }

    #[test]
    fn lru_bound_evicts_least_recently_used() {
        let r = repo();
        let store = r.store();
        store.set_max_cached_rows(Some(2));
        store.score_row("alpha");
        store.score_row("beta");
        // Touch alpha so beta becomes the oldest.
        store.score_row("alpha");
        store.score_row("gamma");
        assert_eq!(store.cached_rows(), 2);
        assert!(store.has_cached_row("alpha"));
        assert!(store.has_cached_row("gamma"));
        assert!(!store.has_cached_row("beta"), "LRU must evict the oldest row");
        let c = store.counters();
        assert_eq!(c.row_evictions, 1);
        // Evicted rows recompute to bitwise-identical values.
        let scalar = NameSimilarity::default();
        let again = store.score_row("beta");
        for (id, d) in again.iter().enumerate() {
            let label = store.interner().resolve(LabelId(id as u32));
            assert_eq!(d.to_bits(), scalar.distance("beta", label).to_bits());
        }
    }

    #[test]
    fn tightening_the_bound_evicts_immediately() {
        let r = repo();
        let store = r.store();
        for q in ["a", "b", "c", "d"] {
            store.score_row(q);
        }
        assert_eq!(store.cached_rows(), 4);
        store.set_max_cached_rows(Some(1));
        assert_eq!(store.cached_rows(), 1);
        assert_eq!(store.counters().row_evictions, 3);
        assert!(store.has_cached_row("d"), "most recent row survives");
        // Removing the bound lets the cache grow again.
        store.set_max_cached_rows(None);
        store.score_row("e");
        store.score_row("f");
        assert_eq!(store.cached_rows(), 3);
        assert_eq!(store.config(), StoreConfig::default());
    }

    #[test]
    fn zero_capacity_store_still_answers_correctly() {
        let r = repo();
        let store = r.store();
        store.set_max_cached_rows(Some(0));
        let scalar = NameSimilarity::default();
        for _ in 0..2 {
            let row = store.score_row("title");
            assert_eq!(store.cached_rows(), 0);
            for (id, d) in row.iter().enumerate() {
                let label = store.interner().resolve(LabelId(id as u32));
                assert_eq!(d.to_bits(), scalar.distance("title", label).to_bits());
            }
        }
        // Every lookup misses and every insert is immediately evicted.
        let c = store.counters();
        assert_eq!(c.row_misses, 2);
        assert_eq!(c.row_evictions, 2);
        assert_eq!(c.pair_evals, 2 * store.len() as u64);
    }
}
